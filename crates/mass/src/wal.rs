//! Logical write-ahead log for durable updates.
//!
//! Every structural mutation of a [`crate::store::MassStore`] is recorded
//! here *before* it touches a data page. Records are **keyed and
//! idempotent**: they carry the FLEX keys the mutation was planned with,
//! so replay after a crash converges on any partially-written page state
//! (an insert whose key is already present is skipped; a subtree delete
//! of absent keys is a no-op). Pages are written through the buffer pool
//! only after the operation's records are committed to the log, so the
//! page file can trail the log but never lead it — recovery is pure redo.
//!
//! ## Frame format
//!
//! The log file starts with a 13-byte header (`b"VWAL1"` magic + the
//! `u64` LSN the first frame will carry), followed by frames:
//!
//! ```text
//! [len: u32 LE] [lsn: u64 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc` is CRC-32 (IEEE) over `lsn || payload`. LSNs are assigned
//! sequentially; a gap, CRC mismatch, or short frame marks the torn tail.
//! Operations end with a [`WalRecord::Commit`] marker frame: on open,
//! everything after the **last** commit marker — torn bytes *and* intact
//! but uncommitted frames — is discarded and truncated away, giving
//! exact committed-prefix semantics at operation granularity.
//!
//! ## Group commit
//!
//! [`FsyncPolicy`] controls when the backend is fsynced: `Always` (one
//! fsync per commit), `EveryN(n)` (one fsync per `n` commits — group
//! commit), or `Never` (tests, or callers content with OS-crash-only
//! durability).

use crate::error::Result;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use vamana_flex::FlexKey;

/// Magic prefix of a WAL file.
const MAGIC: &[u8; 5] = b"VWAL1";
/// Header: magic + start LSN.
const HEADER_LEN: usize = 5 + 8;
/// Frame prefix: len + lsn + crc.
const FRAME_HEADER: usize = 4 + 8 + 4;

/// Size of the `[len][lsn][crc]` prefix of every frame — shared with the
/// replication feed, which ships WAL frames byte-identically on the wire.
pub const FRAME_HEADER_LEN: usize = FRAME_HEADER;

/// Encodes one frame exactly as it is laid out in the log file:
/// `[len: u32 LE][lsn: u64 LE][crc: u32 LE][payload]`, with the CRC over
/// `lsn || payload`. The replication feed reuses this encoding on the
/// wire so followers persist received frames without re-framing.
pub fn encode_frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&lsn.to_le_bytes());
    let mut checked = Vec::with_capacity(8 + payload.len());
    checked.extend_from_slice(&lsn.to_le_bytes());
    checked.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(&checked).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Verifies a received frame's CRC (over `lsn || payload`).
pub fn verify_frame(lsn: u64, payload: &[u8], crc: u32) -> bool {
    let mut checked = Vec::with_capacity(8 + payload.len());
    checked.extend_from_slice(&lsn.to_le_bytes());
    checked.extend_from_slice(payload);
    crc32(&checked) == crc
}

/// When the log backend is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync on every commit marker (full durability).
    Always,
    /// Fsync every `n` commits — group commit: up to `n - 1` acknowledged
    /// operations may be lost on power failure, none on process crash.
    EveryN(u32),
    /// Never fsync (tests; durability limited to OS page-cache flushes).
    Never,
}

/// Counters describing the log's activity and current depth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Data records appended since this handle opened the log.
    pub records: u64,
    /// Commit markers appended since open.
    pub commits: u64,
    /// Fsyncs issued since open.
    pub fsyncs: u64,
    /// Data records currently in the log (since the last checkpoint).
    pub depth: u64,
    /// LSN of the most recent frame (0 when the log is empty).
    pub last_lsn: u64,
    /// LSN of the last record replayed at open (0 if none).
    pub replayed_lsn: u64,
    /// Number of records replayed at open.
    pub replayed_records: u64,
    /// LSN the log's first frame carries (the header LSN): everything
    /// below it has been folded into the page file by a checkpoint.
    pub start_lsn: u64,
}

/// One logical update record. Inserts carry the FLEX key assigned at
/// plan time plus the *name string* (not the interned id): replay
/// re-interns in LSN order, reproducing the exact id sequence on top of
/// the checkpointed catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A new element record at `key`.
    InsertElement {
        /// Assigned FLEX key.
        key: FlexKey,
        /// Element name (interned on apply).
        name: String,
    },
    /// A new text record at `key`.
    InsertText {
        /// Assigned FLEX key.
        key: FlexKey,
        /// Text content.
        value: String,
    },
    /// A new attribute record at `key`.
    InsertAttribute {
        /// Assigned FLEX key.
        key: FlexKey,
        /// Attribute name (interned on apply).
        name: String,
        /// Attribute value.
        value: String,
    },
    /// Removal of the whole subtree rooted at `key`.
    DeleteSubtree {
        /// Subtree root key.
        key: FlexKey,
    },
    /// Commit marker: all frames since the previous marker form one
    /// atomic operation.
    Commit,
    /// A whole-document bulk load, carried as serialized XML. The loader
    /// assigns FLEX keys deterministically from document structure and
    /// ordinal, so replaying the text reproduces the exact key sequence;
    /// replay skips the record when a document of this name already
    /// exists. Durable stores log this *before* the bulk page writes so
    /// loads enter the replication stream (live loads still checkpoint
    /// immediately afterwards, truncating the record from the local log).
    LoadDocument {
        /// Registry name of the document.
        name: String,
        /// Compact-serialized XML text of the document.
        xml: String,
    },
}

impl WalRecord {
    /// Serializes the record to its log payload (also the wire payload
    /// of the replication feed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::InsertElement { key, name } => {
                out.push(1);
                put_bytes(&mut out, key.as_flat());
                put_bytes(&mut out, name.as_bytes());
            }
            WalRecord::InsertText { key, value } => {
                out.push(2);
                put_bytes(&mut out, key.as_flat());
                put_bytes(&mut out, value.as_bytes());
            }
            WalRecord::InsertAttribute { key, name, value } => {
                out.push(3);
                put_bytes(&mut out, key.as_flat());
                put_bytes(&mut out, name.as_bytes());
                put_bytes(&mut out, value.as_bytes());
            }
            WalRecord::DeleteSubtree { key } => {
                out.push(4);
                put_bytes(&mut out, key.as_flat());
            }
            WalRecord::Commit => out.push(5),
            WalRecord::LoadDocument { name, xml } => {
                out.push(6);
                put_bytes(&mut out, name.as_bytes());
                put_bytes(&mut out, xml.as_bytes());
            }
        }
        out
    }

    /// Parses a log payload back into a record (`None` on corruption).
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, mut rest) = payload.split_first()?;
        let rec = match tag {
            1 => WalRecord::InsertElement {
                key: FlexKey::from_flat(take_bytes(&mut rest)?),
                name: take_string(&mut rest)?,
            },
            2 => WalRecord::InsertText {
                key: FlexKey::from_flat(take_bytes(&mut rest)?),
                value: take_string(&mut rest)?,
            },
            3 => WalRecord::InsertAttribute {
                key: FlexKey::from_flat(take_bytes(&mut rest)?),
                name: take_string(&mut rest)?,
                value: take_string(&mut rest)?,
            },
            4 => WalRecord::DeleteSubtree {
                key: FlexKey::from_flat(take_bytes(&mut rest)?),
            },
            5 => WalRecord::Commit,
            6 => WalRecord::LoadDocument {
                name: take_string(&mut rest)?,
                xml: take_string(&mut rest)?,
            },
            _ => return None,
        };
        if rest.is_empty() {
            Some(rec)
        } else {
            None
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn take_bytes(rest: &mut &[u8]) -> Option<Vec<u8>> {
    if rest.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
    if rest.len() < 4 + len {
        return None;
    }
    let out = rest[4..4 + len].to_vec();
    *rest = &rest[4 + len..];
    Some(out)
}

fn take_string(rest: &mut &[u8]) -> Option<String> {
    String::from_utf8(take_bytes(rest)?).ok()
}

/// CRC-32 (IEEE 802.3), bitwise — log frames are small and appends are
/// dominated by the fsync, so a table-free implementation suffices.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Byte storage under the log: a growable, truncatable, syncable tape.
pub trait WalBackend: Send + Sync {
    /// Reads the whole log image.
    fn read_all(&mut self) -> Result<Vec<u8>>;
    /// Appends bytes at the end.
    fn append(&mut self, bytes: &[u8]) -> Result<()>;
    /// Flushes appended bytes to durable storage.
    fn sync(&mut self) -> Result<()>;
    /// Truncates the log to `len` bytes.
    fn truncate(&mut self, len: u64) -> Result<()>;
}

/// File-backed log storage.
#[derive(Debug)]
pub struct FileWalBackend {
    file: std::fs::File,
    len: u64,
}

impl FileWalBackend {
    /// Creates (truncating) a log file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileWalBackend { file, len: 0 })
    }

    /// Opens (or creates empty) a log file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileWalBackend { file, len })
    }
}

impl WalBackend for FileWalBackend {
    fn read_all(&mut self) -> Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut out = Vec::new();
        self.file.read_to_end(&mut out)?;
        Ok(out)
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        self.len = len;
        Ok(())
    }
}

/// In-memory log storage over a shared buffer; clones share the same
/// bytes, so a test can "crash" a store (drop it) and reopen from the
/// surviving log image.
#[derive(Debug, Clone, Default)]
pub struct MemWalBackend(Arc<Mutex<Vec<u8>>>);

impl MemWalBackend {
    /// A fresh empty shared log buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length of the shared image (test introspection).
    pub fn len(&self) -> usize {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl WalBackend for MemWalBackend {
    fn read_all(&mut self) -> Result<Vec<u8>> {
        Ok(self.0.lock().unwrap_or_else(|p| p.into_inner()).clone())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .truncate(len as usize);
        Ok(())
    }
}

/// The write-ahead log: append/commit on the hot path, parse/repair on
/// open, truncate on checkpoint.
pub struct Wal {
    backend: Box<dyn WalBackend>,
    policy: FsyncPolicy,
    /// LSN the next appended frame will carry.
    next_lsn: u64,
    /// `next_lsn` as of the last durable commit marker (rollback target).
    committed_next_lsn: u64,
    /// Current byte length of the log.
    len: u64,
    /// Byte length of the committed prefix (end of the last commit frame).
    committed_len: u64,
    stats: WalStats,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("next_lsn", &self.next_lsn)
            .field("depth", &self.stats.depth)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

fn header_bytes(start_lsn: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&start_lsn.to_le_bytes());
    h
}

impl Wal {
    /// Initializes an empty log on `backend` (truncates any content).
    pub fn create(mut backend: Box<dyn WalBackend>, policy: FsyncPolicy) -> Result<Wal> {
        backend.truncate(0)?;
        backend.append(&header_bytes(1))?;
        backend.sync()?;
        Ok(Wal {
            backend,
            policy,
            next_lsn: 1,
            committed_next_lsn: 1,
            len: HEADER_LEN as u64,
            committed_len: HEADER_LEN as u64,
            stats: WalStats {
                start_lsn: 1,
                ..WalStats::default()
            },
        })
    }

    /// Opens an existing log, parses the committed prefix, truncates
    /// everything after the last commit marker (torn bytes and intact but
    /// uncommitted frames alike), and returns the committed records for
    /// replay. `lsn_floor` is the checkpoint LSN recorded in the catalog:
    /// the next assigned LSN never falls below it, keeping LSNs monotonic
    /// even when the log header was lost mid-checkpoint.
    pub fn open(
        mut backend: Box<dyn WalBackend>,
        policy: FsyncPolicy,
        lsn_floor: u64,
    ) -> Result<(Wal, Vec<(u64, WalRecord)>)> {
        let bytes = backend.read_all()?;
        if bytes.len() < HEADER_LEN || &bytes[..MAGIC.len()] != MAGIC {
            // Empty or torn header (crash mid-checkpoint-truncation): the
            // checkpoint that was truncating already folded every record
            // into the pages, so resetting to an empty log is exact.
            let start = lsn_floor.max(1);
            backend.truncate(0)?;
            backend.append(&header_bytes(start))?;
            backend.sync()?;
            let wal = Wal {
                backend,
                policy,
                next_lsn: start,
                committed_next_lsn: start,
                len: HEADER_LEN as u64,
                committed_len: HEADER_LEN as u64,
                stats: WalStats {
                    start_lsn: start,
                    ..WalStats::default()
                },
            };
            return Ok((wal, Vec::new()));
        }
        let header_lsn = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes")).max(1);
        let mut expected = header_lsn;
        let mut at = HEADER_LEN;
        let mut committed: Vec<(u64, WalRecord)> = Vec::new();
        let mut pending: Vec<(u64, WalRecord)> = Vec::new();
        let mut committed_end = HEADER_LEN;
        let mut committed_next = header_lsn;
        while at + FRAME_HEADER <= bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4")) as usize;
            let end = at + FRAME_HEADER + len;
            if end > bytes.len() {
                break; // torn tail: frame extends past the file
            }
            let lsn = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8"));
            let crc = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().expect("4"));
            let payload = &bytes[at + FRAME_HEADER..end];
            if lsn != expected {
                break; // LSN discontinuity: corruption
            }
            let mut checked = Vec::with_capacity(8 + payload.len());
            checked.extend_from_slice(&lsn.to_le_bytes());
            checked.extend_from_slice(payload);
            if crc32(&checked) != crc {
                break; // torn or corrupt frame
            }
            let Some(rec) = WalRecord::decode(payload) else {
                break;
            };
            expected += 1;
            at = end;
            if matches!(rec, WalRecord::Commit) {
                committed.append(&mut pending);
                committed_end = at;
                committed_next = expected;
            } else {
                pending.push((lsn, rec));
            }
        }
        if (committed_end as u64) < bytes.len() as u64 {
            backend.truncate(committed_end as u64)?;
            backend.sync()?;
        }
        // The next LSN continues after the last *surviving* frame (the
        // final commit marker), not after frames the truncation just
        // discarded. A replica depends on this: its resume handshake
        // sends `last_committed_lsn()`, and the primary re-streams the
        // interrupted batch under the very LSNs that were torn away, so
        // the contiguity check in `append_external` must expect them.
        let next_lsn = committed_next.max(lsn_floor).max(header_lsn);
        let depth = committed.len() as u64;
        let last_lsn = committed.last().map(|(l, _)| *l).unwrap_or(0);
        let wal = Wal {
            backend,
            policy,
            next_lsn,
            committed_next_lsn: next_lsn,
            len: committed_end as u64,
            committed_len: committed_end as u64,
            stats: WalStats {
                depth,
                last_lsn,
                start_lsn: header_lsn,
                ..WalStats::default()
            },
        };
        Ok((wal, committed))
    }

    fn append_frame(&mut self, rec: &WalRecord) -> Result<u64> {
        let lsn = self.next_lsn;
        let frame = encode_frame(lsn, &rec.encode());
        self.backend.append(&frame)?;
        self.next_lsn += 1;
        self.len += frame.len() as u64;
        self.stats.last_lsn = lsn;
        Ok(lsn)
    }

    /// Appends one data record (unsynced, uncommitted).
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64> {
        debug_assert!(!matches!(rec, WalRecord::Commit), "use commit()");
        let lsn = self.append_frame(rec)?;
        self.stats.records += 1;
        self.stats.depth += 1;
        Ok(lsn)
    }

    /// Appends a commit marker and fsyncs per policy, sealing every
    /// record since the previous marker into one atomic operation.
    /// Returns the marker's LSN.
    pub fn commit(&mut self) -> Result<u64> {
        let lsn = self.append_frame(&WalRecord::Commit)?;
        self.seal_commit()?;
        Ok(lsn)
    }

    /// Commit bookkeeping shared by [`Wal::commit`] and
    /// [`Wal::append_external`]: fsync per policy, advance the durable
    /// prefix markers.
    fn seal_commit(&mut self) -> Result<()> {
        self.stats.commits += 1;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => n != 0 && self.stats.commits.is_multiple_of(n as u64),
            FsyncPolicy::Never => false,
        };
        if due {
            self.backend.sync()?;
            self.stats.fsyncs += 1;
        }
        self.committed_len = self.len;
        self.committed_next_lsn = self.next_lsn;
        Ok(())
    }

    /// Appends a record that carries an *externally assigned* LSN — the
    /// replication path, where a follower mirrors the primary's frames
    /// into its own log under the primary's numbering. The LSN must be
    /// exactly the next one this log expects; a gap means frames were
    /// lost in transit and the caller must resync. Commit markers seal
    /// the batch with the usual fsync policy.
    pub fn append_external(&mut self, lsn: u64, rec: &WalRecord) -> Result<u64> {
        if lsn != self.next_lsn {
            return Err(crate::error::MassError::InvalidUpdate(format!(
                "replication LSN gap: log expects {}, stream carries {}",
                self.next_lsn, lsn
            )));
        }
        let got = self.append_frame(rec)?;
        if matches!(rec, WalRecord::Commit) {
            self.seal_commit()?;
        } else {
            self.stats.records += 1;
            self.stats.depth += 1;
        }
        Ok(got)
    }

    /// Re-bases an *empty* log to start at `lsn` — a follower installing
    /// a snapshot taken at `lsn - 1` points its log here so subsequent
    /// [`Wal::append_external`] calls accept the primary's numbering.
    pub fn set_next_lsn(&mut self, lsn: u64) -> Result<()> {
        if self.len != HEADER_LEN as u64 {
            return Err(crate::error::MassError::InvalidUpdate(
                "set_next_lsn requires an empty log (checkpoint first)".into(),
            ));
        }
        self.backend.truncate(0)?;
        self.backend.append(&header_bytes(lsn))?;
        self.backend.sync()?;
        self.next_lsn = lsn;
        self.committed_next_lsn = lsn;
        self.stats.start_lsn = lsn;
        self.stats.last_lsn = 0;
        Ok(())
    }

    /// Discards uncommitted frames after a failed append/commit, so a
    /// later commit marker cannot accidentally seal them.
    pub fn rollback(&mut self) -> Result<()> {
        if self.len > self.committed_len {
            self.backend.truncate(self.committed_len)?;
            self.len = self.committed_len;
            self.next_lsn = self.committed_next_lsn;
        }
        Ok(())
    }

    /// Empties the log after a checkpoint folded it into the page store;
    /// the fresh header carries the next LSN so numbering stays monotonic.
    pub fn truncate_for_checkpoint(&mut self) -> Result<()> {
        self.backend.truncate(0)?;
        self.backend.append(&header_bytes(self.next_lsn))?;
        self.backend.sync()?;
        self.len = HEADER_LEN as u64;
        self.committed_len = self.len;
        self.committed_next_lsn = self.next_lsn;
        self.stats.depth = 0;
        self.stats.start_lsn = self.next_lsn;
        Ok(())
    }

    /// The LSN the next frame will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// LSN of the last durably committed frame (0 when none yet).
    pub fn last_committed_lsn(&self) -> u64 {
        self.committed_next_lsn.saturating_sub(1)
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Records replay results at open (set by the store after it applies
    /// the committed records this handle returned).
    pub(crate) fn note_replayed(&mut self, last_lsn: u64, records: u64) {
        self.stats.replayed_lsn = last_lsn;
        self.stats.replayed_records = records;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> WalRecord {
        WalRecord::InsertElement {
            key: FlexKey::root().child(&vamana_flex::seq_label(i)),
            name: format!("n{i}"),
        }
    }

    fn mem_pair() -> (MemWalBackend, Box<dyn WalBackend>) {
        let shared = MemWalBackend::new();
        let handle: Box<dyn WalBackend> = Box::new(shared.clone());
        (shared, handle)
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_codec_round_trips() {
        let recs = [
            rec(0),
            WalRecord::InsertText {
                key: FlexKey::root().child(&vamana_flex::seq_label(1)),
                value: "hello".into(),
            },
            WalRecord::InsertAttribute {
                key: FlexKey::root().child(&vamana_flex::attr_label(0)),
                name: "id".into(),
                value: "p0".into(),
            },
            WalRecord::DeleteSubtree {
                key: FlexKey::root().child(&vamana_flex::seq_label(2)),
            },
            WalRecord::Commit,
            WalRecord::LoadDocument {
                name: "doc".into(),
                xml: "<r><a>1</a></r>".into(),
            },
        ];
        for r in &recs {
            assert_eq!(WalRecord::decode(&r.encode()).as_ref(), Some(r));
        }
        assert_eq!(WalRecord::decode(&[9, 0]), None);
        assert_eq!(WalRecord::decode(&[]), None);
    }

    #[test]
    fn append_commit_reopen_replays_committed() {
        let (shared, handle) = mem_pair();
        {
            let mut wal = Wal::create(handle, FsyncPolicy::Never).unwrap();
            wal.append(&rec(0)).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.commit().unwrap();
            wal.append(&rec(2)).unwrap();
            // no commit for rec(2)
        }
        let (wal, records) = Wal::open(Box::new(shared.clone()), FsyncPolicy::Never, 0).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].1, rec(0));
        assert_eq!(records[1].1, rec(1));
        // The uncommitted frame was truncated away.
        assert_eq!(wal.stats().depth, 2);
        let (_, records2) = Wal::open(Box::new(shared), FsyncPolicy::Never, 0).unwrap();
        assert_eq!(records2.len(), 2, "open is idempotent");
    }

    #[test]
    fn lsns_are_monotonic_and_sequential() {
        let (_, handle) = mem_pair();
        let mut wal = Wal::create(handle, FsyncPolicy::Never).unwrap();
        let a = wal.append(&rec(0)).unwrap();
        let c1 = wal.commit().unwrap();
        let b = wal.append(&rec(1)).unwrap();
        let c2 = wal.commit().unwrap();
        assert_eq!((a, c1, b, c2), (1, 2, 3, 4));
        assert_eq!(wal.next_lsn(), 5);
    }

    #[test]
    fn byte_level_truncation_discards_torn_tail() {
        let (shared, handle) = mem_pair();
        {
            let mut wal = Wal::create(handle, FsyncPolicy::Never).unwrap();
            wal.append(&rec(0)).unwrap();
            wal.commit().unwrap();
            wal.append(&rec(1)).unwrap();
            wal.commit().unwrap();
        }
        let full = shared.len();
        // Truncate at every byte boundary: the committed prefix must
        // always parse to 0, 1, or 2 records without error.
        for cut in 0..=full {
            let copy = MemWalBackend::new();
            let bytes = shared.clone().read_all().unwrap();
            copy.clone().append(&bytes[..cut]).unwrap();
            let (_, records) = Wal::open(Box::new(copy), FsyncPolicy::Never, 0).unwrap();
            assert!(records.len() <= 2, "cut at {cut}");
        }
        // Untouched log yields both records.
        let (_, records) = Wal::open(Box::new(shared), FsyncPolicy::Never, 0).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn crc_corruption_truncates_from_bad_frame() {
        let (shared, handle) = mem_pair();
        {
            let mut wal = Wal::create(handle, FsyncPolicy::Never).unwrap();
            wal.append(&rec(0)).unwrap();
            wal.commit().unwrap();
            let first_commit_end = shared.len();
            wal.append(&rec(1)).unwrap();
            wal.commit().unwrap();
            // Flip a payload byte in the second operation's first frame.
            let mut bytes = shared.clone().read_all().unwrap();
            bytes[first_commit_end + FRAME_HEADER] ^= 0xFF;
            shared.clone().truncate(0).unwrap();
            shared.clone().append(&bytes).unwrap();
        }
        let (_, records) = Wal::open(Box::new(shared), FsyncPolicy::Never, 0).unwrap();
        assert_eq!(records.len(), 1, "corrupt second op discarded");
        assert_eq!(records[0].1, rec(0));
    }

    #[test]
    fn fsync_policy_counts() {
        let (_, h1) = mem_pair();
        let mut always = Wal::create(h1, FsyncPolicy::Always).unwrap();
        let (_, h2) = mem_pair();
        let mut every3 = Wal::create(h2, FsyncPolicy::EveryN(3)).unwrap();
        let (_, h3) = mem_pair();
        let mut never = Wal::create(h3, FsyncPolicy::Never).unwrap();
        for i in 0..6 {
            for w in [&mut always, &mut every3, &mut never] {
                w.append(&rec(i)).unwrap();
                w.commit().unwrap();
            }
        }
        assert_eq!(always.stats().fsyncs, 6);
        assert_eq!(every3.stats().fsyncs, 2);
        assert_eq!(never.stats().fsyncs, 0);
    }

    #[test]
    fn rollback_discards_uncommitted_and_reuses_lsns() {
        let (shared, handle) = mem_pair();
        let mut wal = Wal::create(handle, FsyncPolicy::Never).unwrap();
        wal.append(&rec(0)).unwrap();
        wal.commit().unwrap();
        let committed = shared.len();
        wal.append(&rec(1)).unwrap();
        wal.rollback().unwrap();
        assert_eq!(shared.len(), committed);
        // The rolled-back LSN is reused, keeping on-disk LSNs contiguous.
        let lsn = wal.append(&rec(2)).unwrap();
        wal.commit().unwrap();
        assert_eq!(lsn, 3);
        let (_, records) = Wal::open(Box::new(shared), FsyncPolicy::Never, 0).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].1, rec(2));
    }

    #[test]
    fn checkpoint_truncation_keeps_lsns_monotonic() {
        let (shared, handle) = mem_pair();
        let mut wal = Wal::create(handle, FsyncPolicy::Never).unwrap();
        wal.append(&rec(0)).unwrap();
        wal.commit().unwrap();
        wal.truncate_for_checkpoint().unwrap();
        assert_eq!(wal.stats().depth, 0);
        let lsn = wal.append(&rec(1)).unwrap();
        assert!(lsn > 2, "LSNs continue after checkpoint, got {lsn}");
        wal.commit().unwrap();
        let (reopened, records) = Wal::open(Box::new(shared), FsyncPolicy::Never, 0).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0, lsn);
        assert!(reopened.next_lsn() > lsn);
    }

    #[test]
    fn external_appends_mirror_primary_lsns() {
        let (shared, handle) = mem_pair();
        {
            let mut wal = Wal::create(handle, FsyncPolicy::Never).unwrap();
            wal.set_next_lsn(41).unwrap();
            wal.append_external(41, &rec(0)).unwrap();
            wal.append_external(42, &WalRecord::Commit).unwrap();
            // A gap is rejected without touching the log.
            assert!(wal.append_external(50, &rec(1)).is_err());
            assert_eq!(wal.next_lsn(), 43);
            assert_eq!(wal.last_committed_lsn(), 42);
            // Re-basing a non-empty log is rejected.
            assert!(wal.set_next_lsn(99).is_err());
        }
        let (reopened, records) = Wal::open(Box::new(shared), FsyncPolicy::Never, 0).unwrap();
        assert_eq!(records, vec![(41, rec(0))]);
        assert_eq!(reopened.next_lsn(), 43);
        assert_eq!(reopened.stats().start_lsn, 41);
    }

    #[test]
    fn wire_frames_match_log_frames() {
        let (shared, handle) = mem_pair();
        let mut wal = Wal::create(handle, FsyncPolicy::Never).unwrap();
        wal.append(&rec(7)).unwrap();
        let bytes = shared.clone().read_all().unwrap();
        let on_disk = &bytes[HEADER_LEN..];
        assert_eq!(on_disk, encode_frame(1, &rec(7).encode()).as_slice());
        // And the CRC checks out through the wire-side verifier.
        let payload = &on_disk[FRAME_HEADER..];
        let crc = u32::from_le_bytes(on_disk[12..16].try_into().unwrap());
        assert!(verify_frame(1, payload, crc));
        assert!(!verify_frame(2, payload, crc));
    }

    #[test]
    fn torn_header_resets_with_lsn_floor() {
        let shared = MemWalBackend::new();
        shared.clone().append(b"VW").unwrap(); // torn header
        let (wal, records) = Wal::open(Box::new(shared), FsyncPolicy::Never, 42).unwrap();
        assert!(records.is_empty());
        assert_eq!(wal.next_lsn(), 42);
    }
}
