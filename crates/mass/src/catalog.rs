//! Durable catalog and crash-free recovery.
//!
//! MASS keeps its secondary structures (sparse page index, name index,
//! value index) in memory; the data pages plus a small *catalog* — the
//! name table and document registry — are sufficient to rebuild them.
//! [`MassStore::checkpoint`] persists the catalog through the pager;
//! [`MassStore::open_file`] reads it back and reconstructs every index
//! with one sequential scan over the pages.

use crate::compress::StoreFormat;
use crate::error::{MassError, Result};
use crate::store::{DocInfo, MassStore};
use vamana_flex::FlexKey;

const MAGIC: &[u8; 5] = b"VCAT1";

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < self.at + n {
            return Err(MassError::CorruptRecord("catalog truncated".into()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn string(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| MassError::CorruptRecord("non-UTF8 catalog string".into()))
    }
}

impl MassStore {
    /// Serializes the catalog (name table + document registry + the WAL
    /// LSN as of this checkpoint).
    fn encode_catalog(&self, checkpoint_lsn: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for i in 0..self.names.len() {
            put_bytes(
                &mut out,
                self.names
                    .resolve(crate::names::NameId(i as u32))
                    .as_bytes(),
            );
        }
        out.extend_from_slice(&(self.docs.len() as u32).to_le_bytes());
        for d in &self.docs {
            put_bytes(&mut out, d.name.as_bytes());
            put_bytes(&mut out, d.doc_key.as_flat());
        }
        out.extend_from_slice(&checkpoint_lsn.to_le_bytes());
        // Compressed-tier trailer (absent in older catalogs, which are
        // read as v1 stores with an empty dictionary): the store format
        // plus the value dictionary in id order.
        out.push(match self.format {
            StoreFormat::V1 => 1,
            StoreFormat::V2 => 2,
        });
        out.extend_from_slice(&(self.dict.len() as u32).to_le_bytes());
        for v in self.dict.iter() {
            put_bytes(&mut out, v.as_bytes());
        }
        out
    }

    /// Persists the catalog through the pager. Data pages are written
    /// through on every mutation, so `checkpoint` + the page file is a
    /// complete, reopenable image of the store.
    ///
    /// For durable stores this folds the log into the page file: pages and
    /// blobs are fsynced, the catalog records the current WAL position,
    /// and the log is truncated. A crash anywhere in that sequence is
    /// safe — replaying an already-folded log is idempotent, and a torn
    /// log header after the truncation resets to the catalog's LSN.
    pub fn checkpoint(&mut self) -> Result<()> {
        let lsn = match &self.wal {
            Some(w) => {
                self.pool.sync()?;
                w.next_lsn()
            }
            None => 0,
        };
        self.pool.write_catalog(&self.encode_catalog(lsn))?;
        if let Some(w) = self.wal.as_mut() {
            w.truncate_for_checkpoint()?;
        }
        Ok(())
    }

    /// Reopens a file-backed store created with
    /// [`MassStore::create_file`], rebuilding every in-memory index from
    /// the catalog and one sequential page scan.
    pub fn open_file<P: AsRef<std::path::Path>>(path: P, capacity: usize) -> Result<Self> {
        let pager = crate::pager::FilePager::open(path)?;
        let mut store = MassStore::with_pager(Box::new(pager), capacity);
        store.recover()?;
        Ok(store)
    }

    /// Rebuilds the in-memory state from the pager's catalog and pages.
    pub(crate) fn recover(&mut self) -> Result<()> {
        // 1. Catalog: names and documents.
        let catalog = self.pool.read_catalog()?;
        if catalog.is_empty() {
            if self.pool.page_count() == 0 {
                return Ok(()); // brand-new store
            }
            return Err(MassError::CorruptRecord(
                "store has pages but no catalog — was checkpoint() called?".into(),
            ));
        }
        let mut r = Reader {
            buf: &catalog,
            at: 0,
        };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(MassError::CorruptRecord("bad catalog magic".into()));
        }
        let name_count = r.u32()?;
        for _ in 0..name_count {
            let name = r.string()?;
            self.names.intern(&name);
        }
        let doc_count = r.u32()?;
        for _ in 0..doc_count {
            let name = r.string()?;
            let key = FlexKey::from_flat(r.bytes()?.to_vec());
            self.docs.push(DocInfo {
                name: name.into(),
                doc_key: key,
            });
        }
        self.doc_gens = vec![0; self.docs.len()];
        // Checkpoint LSN trailer (absent in catalogs written before the
        // WAL existed): floors LSN assignment if the log header was lost.
        if r.buf.len() >= r.at + 8 {
            self.checkpoint_lsn_floor = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
        }
        // Compressed-tier trailer: store format + value dictionary. Must
        // be restored *before* the page scan below — rebuilding the
        // secondary indexes resolves [`crate::record::ValueRef::Dict`]
        // refs through the dictionary.
        if r.buf.len() > r.at {
            self.format = match r.take(1)?[0] {
                1 => StoreFormat::V1,
                2 => StoreFormat::V2,
                other => {
                    return Err(MassError::CorruptRecord(format!(
                        "bad store format byte {other}"
                    )))
                }
            };
            let dict_count = r.u32()?;
            for _ in 0..dict_count {
                let v = r.string()?;
                self.dict.intern(&v);
            }
        }

        // 2. Page scan: sparse index first (pages are not in key order
        //    after splits), then the secondary indexes in key order so
        //    the cheap ordered inserts apply.
        let mut entries: Vec<(Vec<u8>, u32)> = Vec::new();
        for page_id in 0..self.pool.page_count() {
            let page = self.pool.get(page_id)?;
            if let Some(first) = page.first_key() {
                entries.push((first.to_vec(), page_id));
                self.page_formats.insert(page_id, page.format());
            } else {
                // Emptied by an earlier delete, or allocated by a split
                // that crashed before its first write: reusable.
                self.free_pages.push(page_id);
            }
        }
        entries.sort();
        self.index = entries;

        // 2a. Torn-load trim: bulk loads bypass the WAL (the page file +
        //     catalog written by the load's checkpoint are its durable
        //     image), so a crash mid-load leaves records whose document
        //     was never registered. Drop them — that load never
        //     committed. Pages emptied by the trim join the free list.
        let mut pos = 0;
        while pos < self.index.len() {
            let page_id = self.index[pos].1;
            let has_orphans = self
                .pool
                .get(page_id)?
                .records()
                .iter()
                .any(|rec| self.document_of(&rec.key).is_none());
            if !has_orphans {
                pos += 1;
                continue;
            }
            let mut page = (*self.pool.get(page_id)?).clone();
            let mut i = 0;
            while i < page.len() {
                if self.document_of(&page.records()[i].key).is_none() {
                    page.remove(i);
                } else {
                    i += 1;
                }
            }
            if page.is_empty() {
                self.index.remove(pos);
                self.release_page(page_id);
                self.pool.put(page_id, page)?;
            } else {
                self.index[pos].0 = page.first_key().expect("non-empty").to_vec();
                // Trimming can overflow a v2 page (a survivor's
                // front-coding lengthens when its predecessor is
                // removed); split before write-out.
                let added = self.put_page_at(pos, page)?;
                pos += 1 + added;
            }
        }
        // Re-sort: trimming can change a page's first key.
        self.index.sort();

        // 2b. Overlap repair: a crash between a split's two page writes
        //     (new upper page first, then the shrunk lower page) leaves
        //     the lower page still holding records that were copied to
        //     the upper one. Trim any record that belongs to a following
        //     page before indexing, so nothing is double-counted.
        for pos in 0..self.index.len().saturating_sub(1) {
            let next_first = self.index[pos + 1].0.clone();
            let page_id = self.index[pos].1;
            let overlaps = self
                .pool
                .get(page_id)?
                .last_key()
                .is_some_and(|k| k >= next_first.as_slice());
            if !overlaps {
                continue;
            }
            let mut page = (*self.pool.get(page_id)?).clone();
            while page.last_key().is_some_and(|k| k >= next_first.as_slice()) {
                // Tail removals never lengthen anything (no successor),
                // so the page cannot overflow here.
                page.remove(page.len() - 1);
            }
            self.put_data_page(page_id, page)?;
        }

        for pos in 0..self.index.len() {
            let page = self.pool.get(self.index[pos].1)?;
            // Clone the records out so the page borrow ends before the
            // mutable index updates.
            let records: Vec<_> = page.records().to_vec();
            drop(page);
            for rec in &records {
                let value = self.resolve_value(rec)?;
                self.index_record(rec, value.as_deref(), true);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vamana_flex::KeyRange;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vamana-cat-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("store.mass")
    }

    #[test]
    fn checkpoint_and_reopen_round_trip() {
        let path = temp_path("roundtrip");
        {
            let mut s = MassStore::create_file(&path, 64).unwrap();
            s.load_xml("a", "<site><person id='p0'><name>Yung Flach</name></person><person id='p1'><name>Ann</name></person></site>")
                .unwrap();
            s.checkpoint().unwrap();
        }
        let s = MassStore::open_file(&path, 64).unwrap();
        assert_eq!(s.documents().len(), 1);
        let person = s.name_id("person").unwrap();
        assert_eq!(s.count_elements(person), 2);
        assert_eq!(s.text_count("Yung Flach"), 1);
        // doc node + site + 2 × (person + @id + name + text) = 10 tuples.
        assert_eq!(s.stats().tuples, 10);
        // Point lookups work (sparse index rebuilt).
        let flat = s
            .name_index()
            .elements(person)
            .iter()
            .next()
            .unwrap()
            .to_vec();
        let key = FlexKey::from_flat(flat);
        assert!(s.get(&key).unwrap().is_some());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn reopen_after_updates_sees_fresh_data() {
        let path = temp_path("updates");
        {
            let mut s = MassStore::create_file(&path, 64).unwrap();
            s.load_xml("a", "<r><a/><b/></r>").unwrap();
            let a = {
                let id = s.name_id("a").unwrap();
                FlexKey::from_flat(s.name_index().elements(id).iter().next().unwrap().to_vec())
            };
            s.insert_element_after(&a, "mid").unwrap();
            s.checkpoint().unwrap();
        }
        let s = MassStore::open_file(&path, 64).unwrap();
        let mid = s.name_id("mid").unwrap();
        assert_eq!(s.count_elements(mid), 1);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn reopen_without_checkpoint_is_detected() {
        let path = temp_path("nocat");
        {
            let mut s = MassStore::create_file(&path, 64).unwrap();
            s.load_xml("a", "<r><a/></r>").unwrap();
            // no checkpoint
        }
        assert!(MassStore::open_file(&path, 64).is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn empty_store_reopens_cleanly() {
        let path = temp_path("empty");
        {
            let mut s = MassStore::create_file(&path, 64).unwrap();
            s.checkpoint().unwrap();
        }
        let s = MassStore::open_file(&path, 64).unwrap();
        assert_eq!(s.stats().tuples, 0);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn recovered_store_answers_range_counts() {
        let path = temp_path("counts");
        {
            let mut s = MassStore::create_file(&path, 64).unwrap();
            let mut xml = String::from("<r>");
            for i in 0..500 {
                xml.push_str(&format!("<e v='{i}'><t>{}</t></e>", i % 7));
            }
            xml.push_str("</r>");
            s.load_xml("big", &xml).unwrap();
            s.checkpoint().unwrap();
        }
        let s = MassStore::open_file(&path, 64).unwrap();
        let e = s.name_id("e").unwrap();
        assert_eq!(s.count_elements(e), 500);
        // texts are i%7: values 0..2 appear 72 times, 3..6 appear 71;
        // attributes are 0..499 once each.
        assert_eq!(s.text_count("3"), 71 + 1); // 71 texts + attribute v='3'
        assert_eq!(
            s.numeric_count_in(crate::value_index::RangeOp::Lt, 3.0, &KeyRange::all()),
            3 * 72 + 3 // texts 0,1,2 plus attributes 0,1,2
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}

#[cfg(test)]
mod free_list_tests {
    use super::*;
    use vamana_flex::KeyRange;

    #[test]
    fn freed_pages_are_reused_by_later_inserts() {
        let mut s = MassStore::open_memory();
        // Two documents; deleting the first frees its pages.
        let mut xml = String::from("<a>");
        for i in 0..2000 {
            xml.push_str(&format!("<x>{i}</x>"));
        }
        xml.push_str("</a>");
        s.load_xml("a", &xml).unwrap();
        s.load_xml("b", "<b><keep/></b>").unwrap();
        let pages_before = s.pool.page_count();

        let a_doc = s.documents()[0].doc_key.clone();
        s.delete_subtree(&a_doc).unwrap();
        let freed = s.free_pages.len();
        assert!(
            freed > 5,
            "deleting a whole document should free pages, freed {freed}"
        );

        // Grow document b: the allocator must drain the free list before
        // growing the backing store.
        let b_root = {
            let id = s.name_id("b").unwrap();
            FlexKey::from_flat(s.name_index().elements(id).iter().next().unwrap().to_vec())
        };
        for i in 0..2000 {
            let e = s.append_element(&b_root, "y").unwrap();
            s.append_text(&e, &format!("{i}")).unwrap();
        }
        // All freed ids were consumed before any fresh allocation, so the
        // backing store grew by exactly (pages needed − pages freed).
        assert!(s.free_pages.is_empty(), "free list should be drained first");
        let live_pages = s.index.len() as u32;
        let grown = s.pool.page_count() - pages_before;
        assert_eq!(
            s.pool.page_count(),
            live_pages,
            "with the free list drained, every backing page is live (grew by {grown})"
        );
        let y = s.name_id("y").unwrap();
        assert_eq!(s.count_elements(y), 2000);
        // Everything is still key-ordered end to end.
        let mut cur = crate::cursor::MassCursor::new(&s, KeyRange::all());
        let mut prev: Option<Vec<u8>> = None;
        while let Some(rec) = cur.next().unwrap() {
            let flat = rec.key.as_flat().to_vec();
            if let Some(p) = &prev {
                assert!(p < &flat);
            }
            prev = Some(flat);
        }
    }
}
