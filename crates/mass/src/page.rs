//! Slotted pages of the clustered MASS index.
//!
//! Records are clustered in document order (FLEX-key order). A page is
//! decoded into a `Vec<NodeRecord>` when it enters the buffer pool and
//! re-encoded on write-out. Two on-disk images exist, self-described by
//! the header magic:
//!
//! * **v1** (`"MA"`): records back to back in their fixed-field encoding;
//! * **v2** (`"MC"`): records front-coded against their on-page
//!   predecessor with varint fields (see [`crate::compress`]).
//!
//! Both share the `[magic u16][count u16][reserved u32]` header. A page
//! carries its format through decode/encode, so a store may hold a mix;
//! size accounting (`encoded_size`, `fits_*`) is exact per format, which
//! is what lets v2 pages pack several× more records into `PAGE_SIZE`.

use crate::compress::{v2_decode_record, v2_encode_record, v2_record_len, StoreFormat};
use crate::error::{MassError, Result};
use crate::record::NodeRecord;

/// Fixed page size in bytes, disk image and capacity accounting.
pub const PAGE_SIZE: usize = 8192;
/// Bytes reserved for the page header.
pub const PAGE_HEADER: usize = 8;
/// Payload capacity of one page.
pub const PAGE_CAPACITY: usize = PAGE_SIZE - PAGE_HEADER;

const MAGIC: u16 = 0x4D41; // "MA"
const MAGIC_V2: u16 = 0x4D43; // "MC"

/// A decoded page: records sorted by key.
#[derive(Debug, Clone, Default)]
pub struct Page {
    records: Vec<NodeRecord>,
    encoded: usize,
    format: StoreFormat,
}

impl Page {
    /// An empty v1 page.
    pub fn new() -> Self {
        Page::default()
    }

    /// An empty page in `format`.
    pub fn new_with_format(format: StoreFormat) -> Self {
        Page {
            format,
            ..Page::default()
        }
    }

    /// The format this page encodes to.
    pub fn format(&self) -> StoreFormat {
        self.format
    }

    /// The records, in key order.
    pub fn records(&self) -> &[NodeRecord] {
        &self.records
    }

    /// Number of records on the page.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Payload bytes currently used. Exact for both formats; may
    /// transiently exceed [`PAGE_CAPACITY`] after a [`Page::remove`] on a
    /// v2 page (removing a record can lengthen its successor's
    /// front-coding) — callers split before writing out.
    pub fn encoded_size(&self) -> usize {
        self.encoded
    }

    /// True if a record of `len` encoded bytes still fits. V1 accounting;
    /// prefer [`Page::fits_record`], which is format-exact.
    pub fn fits(&self, len: usize) -> bool {
        self.encoded + len <= PAGE_CAPACITY
    }

    /// True when the page payload exceeds capacity (possible only after
    /// v2 removals); such a page must be split before write-out.
    pub fn overflowed(&self) -> bool {
        self.encoded > PAGE_CAPACITY
    }

    /// Cost of `rec` encoded after the record at `prev_idx` (None = first).
    fn cost_after(&self, rec: &NodeRecord, prev_idx: Option<usize>) -> usize {
        match self.format {
            StoreFormat::V1 => rec.encoded_len(),
            StoreFormat::V2 => {
                let prev = prev_idx.map(|i| self.records[i].key.as_flat());
                v2_record_len(rec, prev)
            }
        }
    }

    /// Exact payload delta of inserting `rec` at its sorted position.
    /// Positive unless the insert is rejected; accounts for the successor
    /// re-coding on v2 pages.
    fn insert_delta(&self, rec: &NodeRecord, pos: usize) -> usize {
        let prev_idx = pos.checked_sub(1);
        let own = self.cost_after(rec, prev_idx);
        match self.format {
            StoreFormat::V1 => own,
            StoreFormat::V2 => {
                let succ = match self.records.get(pos) {
                    Some(next) => {
                        let new_cost = v2_record_len(next, Some(rec.key.as_flat()));
                        let old_cost = self.cost_after(next, prev_idx);
                        new_cost as isize - old_cost as isize
                    }
                    None => 0,
                };
                (own as isize + succ).max(0) as usize
            }
        }
    }

    /// True if `rec` still fits at its sorted position — exact for the
    /// page's format (v2 front-coding makes a record's size depend on its
    /// neighbors, so a flat `encoded_len` check would over-reject).
    pub fn fits_record(&self, rec: &NodeRecord) -> bool {
        let pos = match self.find(rec.key.as_flat()) {
            Ok(_) => return true, // duplicate: insert will reject anyway
            Err(p) => p,
        };
        self.encoded + self.insert_delta(rec, pos) <= PAGE_CAPACITY
    }

    /// First key on the page (flat encoding).
    pub fn first_key(&self) -> Option<&[u8]> {
        self.records.first().map(|r| r.key.as_flat())
    }

    /// Last key on the page (flat encoding).
    pub fn last_key(&self) -> Option<&[u8]> {
        self.records.last().map(|r| r.key.as_flat())
    }

    /// Binary search for `flat`: `Ok(i)` if present at `i`, `Err(i)` for
    /// the insertion point.
    pub fn find(&self, flat: &[u8]) -> std::result::Result<usize, usize> {
        self.records.binary_search_by(|r| r.key.as_flat().cmp(flat))
    }

    /// Appends a record that must sort after the current last record
    /// (bulk-load path).
    ///
    /// # Panics
    /// Panics (debug) if order would be violated; returns an error if the
    /// record does not fit.
    pub fn append(&mut self, rec: NodeRecord) -> Result<()> {
        let len = self.cost_after(&rec, self.records.len().checked_sub(1));
        if self.encoded + len > PAGE_CAPACITY {
            return Err(MassError::InvalidUpdate("page full".into()));
        }
        debug_assert!(
            self.last_key().is_none_or(|k| k < rec.key.as_flat()),
            "append out of order"
        );
        self.encoded += len;
        self.records.push(rec);
        Ok(())
    }

    /// Inserts a record at its sorted position (update path). The caller
    /// splits the page first if it does not fit.
    pub fn insert(&mut self, rec: NodeRecord) -> Result<()> {
        match self.find(rec.key.as_flat()) {
            Ok(_) => Err(MassError::InvalidUpdate("duplicate key".into())),
            Err(pos) => {
                let delta = self.insert_delta(&rec, pos);
                if self.encoded + delta > PAGE_CAPACITY {
                    return Err(MassError::InvalidUpdate("page full".into()));
                }
                self.encoded += delta;
                self.records.insert(pos, rec);
                Ok(())
            }
        }
    }

    /// Removes the record at `idx`, returning it. On v2 pages the
    /// successor's front-coding can lengthen, so `encoded_size` may grow
    /// past capacity — check [`Page::overflowed`] before write-out.
    pub fn remove(&mut self, idx: usize) -> NodeRecord {
        let prev_idx = idx.checked_sub(1);
        let own = self.cost_after(&self.records[idx], prev_idx) as isize;
        let succ = match self.format {
            StoreFormat::V1 => 0,
            StoreFormat::V2 => match self.records.get(idx + 1) {
                Some(next) => {
                    let old_cost = v2_record_len(next, Some(self.records[idx].key.as_flat()));
                    let new_cost = self.cost_after(next, prev_idx);
                    new_cost as isize - old_cost as isize
                }
                None => 0,
            },
        };
        let rec = self.records.remove(idx);
        self.encoded = (self.encoded as isize - own + succ).max(0) as usize;
        rec
    }

    /// Recomputes `encoded` from scratch (after bulk record surgery).
    fn recompute(&mut self) {
        self.encoded = match self.format {
            StoreFormat::V1 => self.records.iter().map(NodeRecord::encoded_len).sum(),
            StoreFormat::V2 => {
                let mut prev: Option<&[u8]> = None;
                let mut total = 0;
                for r in &self.records {
                    total += v2_record_len(r, prev);
                    prev = Some(r.key.as_flat());
                }
                total
            }
        };
    }

    /// Splits the page in half (by payload bytes), returning the upper
    /// half as a new page in the same format.
    pub fn split(&mut self) -> Page {
        let target = self.encoded / 2;
        let mut acc = 0usize;
        let mut cut = self.records.len();
        for (i, r) in self.records.iter().enumerate() {
            acc += self.cost_after(r, i.checked_sub(1));
            if acc >= target && i + 1 < self.records.len() {
                cut = i + 1;
                break;
            }
        }
        let upper_records: Vec<NodeRecord> = self.records.split_off(cut);
        let mut upper = Page {
            records: upper_records,
            encoded: 0,
            format: self.format,
        };
        // Both halves recompute: the upper half's first record loses its
        // predecessor (v2), and the lower half simply shrank.
        self.recompute();
        upper.recompute();
        upper
    }

    fn encode_body(&self, format: StoreFormat, out: &mut Vec<u8>) {
        match format {
            StoreFormat::V1 => {
                for r in &self.records {
                    r.encode(out);
                }
            }
            StoreFormat::V2 => {
                let mut prev: Option<&[u8]> = None;
                for r in &self.records {
                    v2_encode_record(r, prev, out);
                    prev = Some(r.key.as_flat());
                }
            }
        }
    }

    /// Encodes the page into a `PAGE_SIZE` disk image, reporting the
    /// format actually written. A v2 page whose front-coded body would
    /// not fit (pathological keys) falls back to the uncompressed image
    /// when that one fits — the "overflow page" rule.
    pub fn encode_with_format(&self) -> Result<(Vec<u8>, StoreFormat)> {
        for format in [self.format, StoreFormat::V1] {
            let magic = match format {
                StoreFormat::V1 => MAGIC,
                StoreFormat::V2 => MAGIC_V2,
            };
            let mut out = Vec::with_capacity(PAGE_SIZE);
            out.extend_from_slice(&magic.to_le_bytes());
            out.extend_from_slice(&(self.records.len() as u16).to_le_bytes());
            out.extend_from_slice(&[0u8; 4]);
            self.encode_body(format, &mut out);
            if out.len() <= PAGE_SIZE {
                out.resize(PAGE_SIZE, 0);
                return Ok((out, format));
            }
            if format == StoreFormat::V1 {
                break;
            }
        }
        Err(MassError::InvalidUpdate("page over capacity".into()))
    }

    /// Encodes the page into a `PAGE_SIZE` disk image.
    pub fn encode(&self) -> Result<Vec<u8>> {
        Ok(self.encode_with_format()?.0)
    }

    /// Decodes a disk image; the page remembers the image's format.
    pub fn decode(bytes: &[u8], page_id: u32) -> Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(MassError::CorruptPage {
                page: page_id,
                reason: format!("bad length {}", bytes.len()),
            });
        }
        let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
        let format = match magic {
            MAGIC => StoreFormat::V1,
            MAGIC_V2 => StoreFormat::V2,
            _ => {
                // An all-zero header is a page that was allocated (backends
                // zero-extend eagerly) but never written — e.g. a crash
                // between a split's allocation and its first write-out.
                // Decode it as empty so recovery can reclaim it.
                if bytes[..PAGE_HEADER].iter().all(|&b| b == 0) {
                    return Ok(Page::default());
                }
                return Err(MassError::CorruptPage {
                    page: page_id,
                    reason: "bad magic".into(),
                });
            }
        };
        let count = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
        let mut records: Vec<NodeRecord> = Vec::with_capacity(count);
        let mut at = PAGE_HEADER;
        let mut encoded = 0usize;
        for _ in 0..count {
            let (rec, used) = match format {
                StoreFormat::V1 => NodeRecord::decode(&bytes[at..]),
                StoreFormat::V2 => {
                    let prev = records.last().map(|r: &NodeRecord| r.key.as_flat());
                    v2_decode_record(&bytes[at..], prev)
                }
            }
            .map_err(|e| MassError::CorruptPage {
                page: page_id,
                reason: e.to_string(),
            })?;
            at += used;
            encoded += used;
            records.push(rec);
        }
        Ok(Page {
            records,
            encoded,
            format,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::NameId;
    use crate::record::ValueRef;
    use vamana_flex::{seq_label, FlexKey};

    fn rec(i: u64) -> NodeRecord {
        NodeRecord::element(FlexKey::root().child(&seq_label(i)), NameId(i as u32))
    }

    fn deep_rec(path: &[u64]) -> NodeRecord {
        let mut k = FlexKey::root();
        for &i in path {
            k = k.child(&seq_label(i));
        }
        NodeRecord::element(k, NameId(7))
    }

    #[test]
    fn append_and_encode_round_trip() {
        let mut p = Page::new();
        for i in 0..20 {
            p.append(rec(i)).unwrap();
        }
        let img = p.encode().unwrap();
        assert_eq!(img.len(), PAGE_SIZE);
        let back = Page::decode(&img, 0).unwrap();
        assert_eq!(back.len(), 20);
        assert_eq!(back.records(), p.records());
        assert_eq!(back.encoded_size(), p.encoded_size());
    }

    #[test]
    fn v2_round_trip_preserves_records_and_accounting() {
        for fmt in [StoreFormat::V1, StoreFormat::V2] {
            let mut p = Page::new_with_format(fmt);
            for i in 0..40 {
                p.append(deep_rec(&[0, 1, 2, i])).unwrap();
            }
            let (img, written) = p.encode_with_format().unwrap();
            assert_eq!(written, fmt);
            let back = Page::decode(&img, 0).unwrap();
            assert_eq!(back.format(), fmt);
            assert_eq!(back.records(), p.records());
            assert_eq!(back.encoded_size(), p.encoded_size());
        }
    }

    #[test]
    fn v2_packs_more_records_than_v1() {
        let fill = |fmt| {
            let mut p = Page::new_with_format(fmt);
            let mut i = 0u64;
            loop {
                let r = deep_rec(&[0, 1, 2, 3, i]);
                if !p.fits_record(&r) {
                    break;
                }
                p.append(r).unwrap();
                i += 1;
            }
            p.len()
        };
        let v1 = fill(StoreFormat::V1);
        let v2 = fill(StoreFormat::V2);
        assert!(
            v2 as f64 >= v1 as f64 * 2.0,
            "v2 page holds {v2} records vs v1 {v1}; expected ≥ 2×"
        );
    }

    #[test]
    fn v2_insert_and_remove_keep_exact_accounting() {
        let mut p = Page::new_with_format(StoreFormat::V2);
        for i in (0..60).step_by(2) {
            p.append(deep_rec(&[0, 1, i])).unwrap();
        }
        p.insert(deep_rec(&[0, 1, 31])).unwrap();
        p.insert(deep_rec(&[0, 0])).unwrap(); // new first record
        p.remove(5);
        p.remove(0);
        let mut check = p.clone();
        check.recompute();
        assert_eq!(p.encoded_size(), check.encoded_size());
        // And the image round-trips.
        let back = Page::decode(&p.encode().unwrap(), 0).unwrap();
        assert_eq!(back.records(), p.records());
        assert_eq!(back.encoded_size(), p.encoded_size());
    }

    #[test]
    fn v2_split_recomputes_both_halves() {
        let mut p = Page::new_with_format(StoreFormat::V2);
        for i in 0..300 {
            p.append(deep_rec(&[0, 1, 2, i])).unwrap();
        }
        let upper = p.split();
        assert_eq!(upper.format(), StoreFormat::V2);
        let mut lo = p.clone();
        let mut hi = upper.clone();
        lo.recompute();
        hi.recompute();
        assert_eq!(p.encoded_size(), lo.encoded_size());
        assert_eq!(upper.encoded_size(), hi.encoded_size());
        assert!(p.last_key().unwrap() < upper.first_key().unwrap());
    }

    #[test]
    fn dict_values_round_trip_in_both_formats() {
        for fmt in [StoreFormat::V1, StoreFormat::V2] {
            let mut p = Page::new_with_format(fmt);
            p.append(NodeRecord {
                key: FlexKey::root().child(&seq_label(0)),
                kind: crate::record::RecordKind::Text,
                name: None,
                value: ValueRef::Dict(12345),
            })
            .unwrap();
            let back = Page::decode(&p.encode().unwrap(), 0).unwrap();
            assert_eq!(back.records()[0].value, ValueRef::Dict(12345));
        }
    }

    #[test]
    fn find_locates_keys() {
        let mut p = Page::new();
        for i in (0..30).step_by(3) {
            p.append(rec(i)).unwrap();
        }
        assert_eq!(p.find(rec(6).key.as_flat()), Ok(2));
        // Missing key yields the insertion point.
        assert!(p.find(rec(7).key.as_flat()).is_err());
    }

    #[test]
    fn insert_keeps_order() {
        let mut p = Page::new();
        p.append(rec(0)).unwrap();
        p.append(rec(10)).unwrap();
        p.insert(rec(5)).unwrap();
        let keys: Vec<_> = p.records().iter().map(|r| r.key.clone()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut p = Page::new();
        p.append(rec(1)).unwrap();
        assert!(p.insert(rec(1)).is_err());
    }

    #[test]
    fn remove_updates_size() {
        let mut p = Page::new();
        p.append(rec(0)).unwrap();
        p.append(rec(1)).unwrap();
        let before = p.encoded_size();
        let r = p.remove(0);
        assert_eq!(p.encoded_size(), before - r.encoded_len());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn page_rejects_overflow() {
        for fmt in [StoreFormat::V1, StoreFormat::V2] {
            let mut p = Page::new_with_format(fmt);
            let mut i = 0;
            loop {
                let r = rec(i);
                if !p.fits_record(&r) {
                    assert!(p.append(r).is_err());
                    break;
                }
                p.append(r).unwrap();
                i += 1;
            }
            assert!(p.encoded_size() <= PAGE_CAPACITY);
            assert!(i > 100, "page should hold many small records, held {i}");
        }
    }

    #[test]
    fn split_halves_payload() {
        let mut p = Page::new();
        for i in 0..200 {
            p.append(rec(i)).unwrap();
        }
        let total = p.encoded_size();
        let upper = p.split();
        assert!(p.encoded_size() > 0 && upper.encoded_size() > 0);
        assert_eq!(p.encoded_size() + upper.encoded_size(), total);
        assert!(p.last_key().unwrap() < upper.first_key().unwrap());
        let diff = p.encoded_size().abs_diff(upper.encoded_size());
        assert!(
            diff < total / 4,
            "unbalanced split: {} vs {}",
            p.encoded_size(),
            upper.encoded_size()
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Page::decode(&[0u8; 16], 0).is_err());
        let mut img = Page::new().encode().unwrap();
        img[0] = 0xFF;
        assert!(Page::decode(&img, 3).is_err());
    }

    #[test]
    fn empty_page_has_no_keys() {
        let p = Page::new();
        assert_eq!(p.first_key(), None);
        assert_eq!(p.last_key(), None);
        assert!(p.is_empty());
    }
}
