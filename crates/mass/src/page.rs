//! Slotted pages of the clustered MASS index.
//!
//! Records are clustered in document order (FLEX-key order). A page is
//! decoded into a `Vec<NodeRecord>` when it enters the buffer pool and
//! re-encoded on write-out; the on-disk image is `[magic u16][count u16]
//! [reserved u32]` followed by the records back to back.

use crate::error::{MassError, Result};
use crate::record::NodeRecord;

/// Fixed page size in bytes, disk image and capacity accounting.
pub const PAGE_SIZE: usize = 8192;
/// Bytes reserved for the page header.
pub const PAGE_HEADER: usize = 8;
/// Payload capacity of one page.
pub const PAGE_CAPACITY: usize = PAGE_SIZE - PAGE_HEADER;

const MAGIC: u16 = 0x4D41; // "MA"

/// A decoded page: records sorted by key.
#[derive(Debug, Clone, Default)]
pub struct Page {
    records: Vec<NodeRecord>,
    encoded: usize,
}

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        Page::default()
    }

    /// The records, in key order.
    pub fn records(&self) -> &[NodeRecord] {
        &self.records
    }

    /// Number of records on the page.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Payload bytes currently used.
    pub fn encoded_size(&self) -> usize {
        self.encoded
    }

    /// True if a record of `len` encoded bytes still fits.
    pub fn fits(&self, len: usize) -> bool {
        self.encoded + len <= PAGE_CAPACITY
    }

    /// First key on the page (flat encoding).
    pub fn first_key(&self) -> Option<&[u8]> {
        self.records.first().map(|r| r.key.as_flat())
    }

    /// Last key on the page (flat encoding).
    pub fn last_key(&self) -> Option<&[u8]> {
        self.records.last().map(|r| r.key.as_flat())
    }

    /// Binary search for `flat`: `Ok(i)` if present at `i`, `Err(i)` for
    /// the insertion point.
    pub fn find(&self, flat: &[u8]) -> std::result::Result<usize, usize> {
        self.records.binary_search_by(|r| r.key.as_flat().cmp(flat))
    }

    /// Appends a record that must sort after the current last record
    /// (bulk-load path).
    ///
    /// # Panics
    /// Panics (debug) if order would be violated; returns an error if the
    /// record does not fit.
    pub fn append(&mut self, rec: NodeRecord) -> Result<()> {
        let len = rec.encoded_len();
        if !self.fits(len) {
            return Err(MassError::InvalidUpdate("page full".into()));
        }
        debug_assert!(
            self.last_key().is_none_or(|k| k < rec.key.as_flat()),
            "append out of order"
        );
        self.encoded += len;
        self.records.push(rec);
        Ok(())
    }

    /// Inserts a record at its sorted position (update path). The caller
    /// splits the page first if it does not fit.
    pub fn insert(&mut self, rec: NodeRecord) -> Result<()> {
        let len = rec.encoded_len();
        if !self.fits(len) {
            return Err(MassError::InvalidUpdate("page full".into()));
        }
        match self.find(rec.key.as_flat()) {
            Ok(_) => Err(MassError::InvalidUpdate("duplicate key".into())),
            Err(pos) => {
                self.encoded += len;
                self.records.insert(pos, rec);
                Ok(())
            }
        }
    }

    /// Removes the record at `idx`, returning it.
    pub fn remove(&mut self, idx: usize) -> NodeRecord {
        let rec = self.records.remove(idx);
        self.encoded -= rec.encoded_len();
        rec
    }

    /// Splits the page in half (by payload bytes), returning the upper
    /// half as a new page.
    pub fn split(&mut self) -> Page {
        let target = self.encoded / 2;
        let mut acc = 0usize;
        let mut cut = self.records.len();
        for (i, r) in self.records.iter().enumerate() {
            acc += r.encoded_len();
            if acc >= target && i + 1 < self.records.len() {
                cut = i + 1;
                break;
            }
        }
        let upper: Vec<NodeRecord> = self.records.split_off(cut);
        let upper_size: usize = upper.iter().map(NodeRecord::encoded_len).sum();
        self.encoded -= upper_size;
        Page {
            records: upper,
            encoded: upper_size,
        }
    }

    /// Encodes the page into a `PAGE_SIZE` disk image.
    pub fn encode(&self) -> Result<Vec<u8>> {
        if self.encoded > PAGE_CAPACITY {
            return Err(MassError::InvalidUpdate("page over capacity".into()));
        }
        let mut out = Vec::with_capacity(PAGE_SIZE);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u16).to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        for r in &self.records {
            r.encode(&mut out);
        }
        out.resize(PAGE_SIZE, 0);
        Ok(out)
    }

    /// Decodes a disk image.
    pub fn decode(bytes: &[u8], page_id: u32) -> Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(MassError::CorruptPage {
                page: page_id,
                reason: format!("bad length {}", bytes.len()),
            });
        }
        let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
        if magic != MAGIC {
            // An all-zero header is a page that was allocated (backends
            // zero-extend eagerly) but never written — e.g. a crash
            // between a split's allocation and its first write-out.
            // Decode it as empty so recovery can reclaim it.
            if bytes[..PAGE_HEADER].iter().all(|&b| b == 0) {
                return Ok(Page::default());
            }
            return Err(MassError::CorruptPage {
                page: page_id,
                reason: "bad magic".into(),
            });
        }
        let count = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
        let mut records = Vec::with_capacity(count);
        let mut at = PAGE_HEADER;
        let mut encoded = 0usize;
        for _ in 0..count {
            let (rec, used) =
                NodeRecord::decode(&bytes[at..]).map_err(|e| MassError::CorruptPage {
                    page: page_id,
                    reason: e.to_string(),
                })?;
            at += used;
            encoded += used;
            records.push(rec);
        }
        Ok(Page { records, encoded })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::NameId;
    use vamana_flex::{seq_label, FlexKey};

    fn rec(i: u64) -> NodeRecord {
        NodeRecord::element(FlexKey::root().child(&seq_label(i)), NameId(i as u32))
    }

    #[test]
    fn append_and_encode_round_trip() {
        let mut p = Page::new();
        for i in 0..20 {
            p.append(rec(i)).unwrap();
        }
        let img = p.encode().unwrap();
        assert_eq!(img.len(), PAGE_SIZE);
        let back = Page::decode(&img, 0).unwrap();
        assert_eq!(back.len(), 20);
        assert_eq!(back.records(), p.records());
        assert_eq!(back.encoded_size(), p.encoded_size());
    }

    #[test]
    fn find_locates_keys() {
        let mut p = Page::new();
        for i in (0..30).step_by(3) {
            p.append(rec(i)).unwrap();
        }
        assert_eq!(p.find(rec(6).key.as_flat()), Ok(2));
        // Missing key yields the insertion point.
        assert!(p.find(rec(7).key.as_flat()).is_err());
    }

    #[test]
    fn insert_keeps_order() {
        let mut p = Page::new();
        p.append(rec(0)).unwrap();
        p.append(rec(10)).unwrap();
        p.insert(rec(5)).unwrap();
        let keys: Vec<_> = p.records().iter().map(|r| r.key.clone()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut p = Page::new();
        p.append(rec(1)).unwrap();
        assert!(p.insert(rec(1)).is_err());
    }

    #[test]
    fn remove_updates_size() {
        let mut p = Page::new();
        p.append(rec(0)).unwrap();
        p.append(rec(1)).unwrap();
        let before = p.encoded_size();
        let r = p.remove(0);
        assert_eq!(p.encoded_size(), before - r.encoded_len());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn page_rejects_overflow() {
        let mut p = Page::new();
        let mut i = 0;
        loop {
            let r = rec(i);
            if !p.fits(r.encoded_len()) {
                assert!(p.append(r).is_err());
                break;
            }
            p.append(r).unwrap();
            i += 1;
        }
        assert!(p.encoded_size() <= PAGE_CAPACITY);
        assert!(i > 100, "page should hold many small records, held {i}");
    }

    #[test]
    fn split_halves_payload() {
        let mut p = Page::new();
        for i in 0..200 {
            p.append(rec(i)).unwrap();
        }
        let total = p.encoded_size();
        let upper = p.split();
        assert!(p.encoded_size() > 0 && upper.encoded_size() > 0);
        assert_eq!(p.encoded_size() + upper.encoded_size(), total);
        assert!(p.last_key().unwrap() < upper.first_key().unwrap());
        let diff = p.encoded_size().abs_diff(upper.encoded_size());
        assert!(
            diff < total / 4,
            "unbalanced split: {} vs {}",
            p.encoded_size(),
            upper.encoded_size()
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Page::decode(&[0u8; 16], 0).is_err());
        let mut img = Page::new().encode().unwrap();
        img[0] = 0xFF;
        assert!(Page::decode(&img, 3).is_err());
    }

    #[test]
    fn empty_page_has_no_keys() {
        let p = Page::new();
        assert_eq!(p.first_key(), None);
        assert_eq!(p.last_key(), None);
        assert!(p.is_empty());
    }
}
