//! Property tests for MASS: encode/decode round trips and model-based
//! testing of structural updates (the store must agree with a trivial
//! reference model after any operation sequence).

use proptest::prelude::*;
use vamana_flex::{FlexKey, KeyRange};
use vamana_mass::record::{NodeRecord, RecordKind, ValueRef};
use vamana_mass::{MassCursor, MassStore, NameId};

fn arb_value() -> impl Strategy<Value = ValueRef> {
    prop_oneof![
        Just(ValueRef::None),
        "[a-zA-Z0-9 ]{0,40}".prop_map(|s| ValueRef::Inline(s.into())),
        (any::<u64>(), any::<u32>()).prop_map(|(offset, len)| ValueRef::Overflow { offset, len }),
        (0u32..100_000).prop_map(ValueRef::Dict),
    ]
}

fn arb_record() -> impl Strategy<Value = NodeRecord> {
    (
        proptest::collection::vec(0u64..5000, 1..5),
        0u8..5,
        proptest::option::of(0u32..100),
        arb_value(),
    )
        .prop_map(|(path, kind, name, value)| {
            let mut key = FlexKey::root();
            for p in &path {
                key = key.child(&vamana_flex::seq_label(*p));
            }
            let kind = match kind {
                0 => RecordKind::Element,
                1 => RecordKind::Attribute,
                2 => RecordKind::Text,
                3 => RecordKind::Comment,
                _ => RecordKind::Pi,
            };
            NodeRecord {
                key,
                kind,
                name: name.map(NameId),
                value,
            }
        })
}

proptest! {
    #[test]
    fn record_encode_decode_round_trips(rec in arb_record()) {
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        prop_assert_eq!(buf.len(), rec.encoded_len());
        let (back, used) = NodeRecord::decode(&buf).unwrap();
        prop_assert_eq!(back, rec);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn record_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = NodeRecord::decode(&bytes);
    }

    /// Front-coded (v2) record chains round-trip against the same
    /// predecessor key, byte-for-byte length-accounted.
    #[test]
    fn v2_record_chain_round_trips(recs in proptest::collection::vec(arb_record(), 1..20)) {
        let mut sorted = recs;
        sorted.sort_by(|a, b| a.key.as_flat().cmp(b.key.as_flat()));
        sorted.dedup_by(|a, b| a.key.as_flat() == b.key.as_flat());
        let mut prev: Option<Vec<u8>> = None;
        for rec in &sorted {
            let mut buf = Vec::new();
            vamana_mass::compress::v2_encode_record(rec, prev.as_deref(), &mut buf);
            prop_assert_eq!(buf.len(), vamana_mass::compress::v2_record_len(rec, prev.as_deref()));
            let (back, used) = vamana_mass::compress::v2_decode_record(&buf, prev.as_deref()).unwrap();
            prop_assert_eq!(&back, rec);
            prop_assert_eq!(used, buf.len());
            prev = Some(rec.key.as_flat().to_vec());
        }
    }

    /// v2 decode rejects garbage without panicking, with or without a
    /// predecessor key.
    #[test]
    fn v2_record_decode_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
        prev in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..30)),
    ) {
        let _ = vamana_mass::compress::v2_decode_record(&bytes, prev.as_deref());
    }

    /// A full page of sorted records encodes and decodes identically in
    /// both formats, and the v2 image is never larger than claimed.
    #[test]
    fn page_round_trips_in_both_formats(recs in proptest::collection::vec(arb_record(), 1..40)) {
        let mut sorted = recs;
        sorted.sort_by(|a, b| a.key.as_flat().cmp(b.key.as_flat()));
        sorted.dedup_by(|a, b| a.key.as_flat() == b.key.as_flat());
        for format in [vamana_mass::StoreFormat::V1, vamana_mass::StoreFormat::V2] {
            let mut page = vamana_mass::page::Page::new_with_format(format);
            let mut kept = Vec::new();
            for rec in &sorted {
                if page.fits_record(rec) {
                    page.append(rec.clone()).unwrap();
                    kept.push(rec.clone());
                }
            }
            let (bytes, written) = page.encode_with_format().unwrap();
            prop_assert_eq!(written, format, "no fallback expected for fitting pages");
            prop_assert!(bytes.len() <= vamana_mass::page::PAGE_SIZE);
            let back = vamana_mass::page::Page::decode(&bytes, 0).unwrap();
            prop_assert_eq!(back.format(), format);
            prop_assert_eq!(back.records(), kept.as_slice());
        }
    }
}

/// One random structural operation.
#[derive(Debug, Clone)]
enum Op {
    /// Append an element named `e<n>` under the element picked by index.
    Append(usize, u8),
    /// Append a text child with the given small value.
    Text(usize, u8),
    /// Delete the subtree of the picked element (never the root).
    Delete(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<proptest::sample::Index>(), 0u8..6)
                .prop_map(|(i, n)| Op::Append(i.index(1 << 16), n)),
            (any::<proptest::sample::Index>(), 0u8..6)
                .prop_map(|(i, n)| Op::Text(i.index(1 << 16), n)),
            any::<proptest::sample::Index>().prop_map(|i| Op::Delete(i.index(1 << 16))),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Apply a random op sequence to the store and to a naive model;
    /// counts per name and full document-order iteration must agree.
    #[test]
    fn store_updates_agree_with_reference_model(ops in arb_ops()) {
        let mut store = MassStore::open_memory_with_capacity(4);
        store.load_xml("m", "<root><a/><b/></root>").unwrap();

        // Model: sorted map flat-key → (kind-tag, label string).
        use std::collections::BTreeMap;
        let mut model: BTreeMap<Vec<u8>, String> = BTreeMap::new();
        {
            let mut cur = MassCursor::new(&store, KeyRange::all());
            while let Some(rec) = cur.next().unwrap() {
                let label = describe(&store, &rec);
                model.insert(rec.key.as_flat().to_vec(), label);
            }
        }

        for op in &ops {
            // Current elements in model order (stable pick space).
            let elements: Vec<Vec<u8>> = model
                .iter()
                .filter(|(_, v)| v.starts_with("elem:") || v.starts_with("doc"))
                .map(|(k, _)| k.clone())
                .collect();
            match op {
                Op::Append(i, n) => {
                    let parent = FlexKey::from_flat(elements[i % elements.len()].clone());
                    let name = format!("e{n}");
                    let key = store.append_element(&parent, &name).unwrap();
                    model.insert(key.as_flat().to_vec(), format!("elem:{name}"));
                }
                Op::Text(i, n) => {
                    let parent = FlexKey::from_flat(elements[i % elements.len()].clone());
                    let value = format!("v{n}");
                    let key = store.append_text(&parent, &value).unwrap();
                    model.insert(key.as_flat().to_vec(), format!("text:{value}"));
                }
                Op::Delete(i) => {
                    // Skip the document node and root element so the store
                    // stays queryable.
                    let candidates: Vec<Vec<u8>> = elements
                        .iter()
                        .filter(|k| {
                            FlexKey::from_flat((*k).clone()).level() >= 2
                        })
                        .cloned()
                        .collect();
                    if candidates.is_empty() {
                        continue;
                    }
                    let target = FlexKey::from_flat(candidates[i % candidates.len()].clone());
                    store.delete_subtree(&target).unwrap();
                    let upper = target.subtree_upper().unwrap();
                    let doomed: Vec<Vec<u8>> = model
                        .range(target.as_flat().to_vec()..upper)
                        .map(|(k, _)| k.clone())
                        .collect();
                    for k in doomed {
                        model.remove(&k);
                    }
                }
            }
        }

        // Full iteration agrees.
        let mut cur = MassCursor::new(&store, KeyRange::all());
        let mut seen: Vec<(Vec<u8>, String)> = Vec::new();
        while let Some(rec) = cur.next().unwrap() {
            seen.push((rec.key.as_flat().to_vec(), describe(&store, &rec)));
        }
        let expected: Vec<(Vec<u8>, String)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(seen, expected);

        // Per-name counts agree.
        for n in 0u8..6 {
            let name = format!("e{n}");
            let model_count =
                model.values().filter(|v| **v == format!("elem:{name}")).count() as u64;
            let store_count = store
                .name_id(&name)
                .map(|id| store.count_elements(id))
                .unwrap_or(0);
            prop_assert_eq!(store_count, model_count, "count mismatch for {}", name);
        }
        prop_assert_eq!(
            store.count_text_in(&KeyRange::all()),
            model.values().filter(|v| v.starts_with("text:")).count() as u64
        );
        prop_assert_eq!(store.stats().tuples, model.len() as u64);
    }
}

fn describe(store: &MassStore, rec: &NodeRecord) -> String {
    match rec.kind {
        RecordKind::Document => "doc".to_string(),
        RecordKind::Element => {
            format!("elem:{}", store.names().resolve(rec.name.expect("named")))
        }
        RecordKind::Text => {
            format!(
                "text:{}",
                store.resolve_value(rec).unwrap().unwrap_or_default()
            )
        }
        other => format!("{other:?}"),
    }
}
