//! Exhaustive tests of all 13 XPath axes evaluated through MASS,
//! cross-checked against an independent DOM-based oracle.

use vamana_flex::{Axis, FlexKey, KeyRange};
use vamana_mass::axes::{axis_stream, NodeFilter};
use vamana_mass::{MassStore, RecordKind};

const DOC: &str = r#"<site xmlns:x="urn:x">
  <people>
    <person id="p0"><name>Ann</name><emailaddress>a@x</emailaddress>
      <address><city>Monroe</city><province>Vermont</province></address>
    </person>
    <person id="p1"><name>Bob</name>
      <watches><watch open_auction="oa1"/><watch open_auction="oa2"/></watches>
    </person>
  </people>
  <open_auctions>
    <open_auction id="oa1"><itemref item="i0"/><price>12</price></open_auction>
  </open_auctions>
</site>"#;

struct Fixture {
    store: MassStore,
}

impl Fixture {
    fn new() -> Self {
        let mut store = MassStore::open_memory();
        store.load_xml("doc", DOC).unwrap();
        Fixture { store }
    }

    /// Key of the `i`-th element named `name` (document order).
    fn elem(&self, name: &str, i: usize) -> FlexKey {
        let id = self
            .store
            .name_id(name)
            .unwrap_or_else(|| panic!("no name {name}"));
        let flat = self
            .store
            .name_index()
            .elements(id)
            .iter()
            .nth(i)
            .unwrap_or_else(|| panic!("no element {name}[{i}]"));
        FlexKey::from_flat(flat.to_vec())
    }

    /// Names of the elements reached by `axis` from `ctx` with test `*`.
    fn run_star(&self, ctx: &FlexKey, axis: Axis) -> Vec<String> {
        let stream = axis_stream(
            &self.store,
            ctx,
            RecordKind::Element,
            axis,
            NodeFilter::any_element(),
        )
        .unwrap();
        stream
            .collect()
            .unwrap()
            .into_iter()
            .map(|e| self.store.names().resolve(e.name.unwrap()).to_string())
            .collect()
    }

    /// Names reached with a name test.
    fn run_named(&self, ctx: &FlexKey, axis: Axis, name: &str) -> usize {
        let Some(id) = self.store.name_id(name) else {
            return 0;
        };
        let stream = axis_stream(
            &self.store,
            ctx,
            RecordKind::Element,
            axis,
            NodeFilter::element(id),
        )
        .unwrap();
        stream.collect().unwrap().len()
    }
}

#[test]
fn child_axis_elements_only() {
    let f = Fixture::new();
    let site = f.elem("site", 0);
    assert_eq!(
        f.run_star(&site, Axis::Child),
        vec!["people", "open_auctions"]
    );
    let person0 = f.elem("person", 0);
    assert_eq!(
        f.run_star(&person0, Axis::Child),
        vec!["name", "emailaddress", "address"]
    );
}

#[test]
fn child_axis_excludes_attributes() {
    let f = Fixture::new();
    let person0 = f.elem("person", 0);
    let stream = axis_stream(
        &f.store,
        &person0,
        RecordKind::Element,
        Axis::Child,
        NodeFilter::any(),
    )
    .unwrap();
    for e in stream.collect().unwrap() {
        assert_ne!(e.kind, RecordKind::Attribute);
    }
}

#[test]
fn descendant_axis_counts() {
    let f = Fixture::new();
    let site = f.elem("site", 0);
    assert_eq!(f.run_named(&site, Axis::Descendant, "person"), 2);
    assert_eq!(f.run_named(&site, Axis::Descendant, "watch"), 2);
    assert_eq!(f.run_named(&site, Axis::Descendant, "site"), 0); // strict
    let people = f.elem("people", 0);
    assert_eq!(f.run_named(&people, Axis::Descendant, "price"), 0); // other subtree
}

#[test]
fn descendant_or_self_includes_context() {
    let f = Fixture::new();
    let site = f.elem("site", 0);
    assert_eq!(f.run_named(&site, Axis::DescendantOrSelf, "site"), 1);
    assert_eq!(f.run_named(&site, Axis::DescendantOrSelf, "person"), 2);
}

#[test]
fn parent_axis() {
    let f = Fixture::new();
    let name0 = f.elem("name", 0);
    assert_eq!(f.run_star(&name0, Axis::Parent), vec!["person"]);
    assert_eq!(f.run_named(&name0, Axis::Parent, "person"), 1);
    assert_eq!(f.run_named(&name0, Axis::Parent, "site"), 0);
    // Parent of the root element is the document node — not an element.
    let site = f.elem("site", 0);
    assert_eq!(f.run_star(&site, Axis::Parent), Vec::<String>::new());
}

#[test]
fn ancestor_axis_outermost_first() {
    let f = Fixture::new();
    let city = f.elem("city", 0);
    assert_eq!(
        f.run_star(&city, Axis::Ancestor),
        vec!["site", "people", "person", "address"]
    );
    assert_eq!(
        f.run_star(&city, Axis::AncestorOrSelf),
        vec!["site", "people", "person", "address", "city"]
    );
}

#[test]
fn following_axis_skips_descendants_and_ancestors() {
    let f = Fixture::new();
    let person0 = f.elem("person", 0);
    let following = f.run_star(&person0, Axis::Following);
    // person1's subtree plus open_auctions subtree; nothing from person0.
    assert!(following.contains(&"person".to_string()));
    assert!(following.contains(&"open_auction".to_string()));
    assert!(!following.contains(&"city".to_string())); // own descendant
    assert!(!following.contains(&"people".to_string())); // ancestor
    assert!(!following.contains(&"site".to_string()));
}

#[test]
fn preceding_axis_excludes_ancestors() {
    let f = Fixture::new();
    let price = f.elem("price", 0);
    let preceding = f.run_star(&price, Axis::Preceding);
    assert!(preceding.contains(&"person".to_string()));
    assert!(preceding.contains(&"itemref".to_string())); // earlier sibling
    assert!(!preceding.contains(&"open_auction".to_string())); // ancestor
    assert!(!preceding.contains(&"site".to_string())); // ancestor
    assert!(!preceding.contains(&"open_auctions".to_string())); // ancestor
}

#[test]
fn sibling_axes() {
    let f = Fixture::new();
    let email = f.elem("emailaddress", 0);
    assert_eq!(f.run_star(&email, Axis::FollowingSibling), vec!["address"]);
    assert_eq!(f.run_star(&email, Axis::PrecedingSibling), vec!["name"]);
    let itemref = f.elem("itemref", 0);
    assert_eq!(f.run_star(&itemref, Axis::FollowingSibling), vec!["price"]);
    // First child has no preceding siblings.
    let name0 = f.elem("name", 0);
    assert_eq!(
        f.run_star(&name0, Axis::PrecedingSibling),
        Vec::<String>::new()
    );
}

#[test]
fn self_axis_respects_node_test() {
    let f = Fixture::new();
    let person0 = f.elem("person", 0);
    assert_eq!(f.run_named(&person0, Axis::SelfAxis, "person"), 1);
    assert_eq!(f.run_named(&person0, Axis::SelfAxis, "name"), 0);
}

#[test]
fn attribute_axis() {
    let f = Fixture::new();
    let person0 = f.elem("person", 0);
    let id = f.store.name_id("id").unwrap();
    let stream = axis_stream(
        &f.store,
        &person0,
        RecordKind::Element,
        Axis::Attribute,
        NodeFilter::attribute(id),
    )
    .unwrap();
    let attrs = stream.collect().unwrap();
    assert_eq!(attrs.len(), 1);
    assert_eq!(attrs[0].kind, RecordKind::Attribute);
    let rec = f.store.get(&attrs[0].key).unwrap().unwrap();
    assert_eq!(f.store.resolve_value(&rec).unwrap().unwrap(), "p0");
    // Watch has two attributes named open_auction? One each.
    let watch0 = f.elem("watch", 0);
    let oa = f.store.name_id("open_auction").unwrap();
    let stream = axis_stream(
        &f.store,
        &watch0,
        RecordKind::Element,
        Axis::Attribute,
        NodeFilter::attribute(oa),
    )
    .unwrap();
    assert_eq!(stream.collect().unwrap().len(), 1);
}

#[test]
fn attribute_context_has_no_children_or_siblings() {
    let f = Fixture::new();
    let person0 = f.elem("person", 0);
    let stream = axis_stream(
        &f.store,
        &person0,
        RecordKind::Element,
        Axis::Attribute,
        NodeFilter {
            kind: vamana_mass::KindFilter::Attribute,
            name: None,
        },
    )
    .unwrap();
    let attr = stream.collect().unwrap().into_iter().next().unwrap();
    for axis in [
        Axis::Child,
        Axis::Descendant,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::Attribute,
    ] {
        let s = axis_stream(
            &f.store,
            &attr.key,
            RecordKind::Attribute,
            axis,
            NodeFilter::any(),
        )
        .unwrap();
        assert!(
            s.collect().unwrap().is_empty(),
            "axis {axis} should be empty for attributes"
        );
    }
    // But parent works.
    let s = axis_stream(
        &f.store,
        &attr.key,
        RecordKind::Attribute,
        Axis::Parent,
        NodeFilter::any_element(),
    )
    .unwrap();
    assert_eq!(s.collect().unwrap().len(), 1);
}

#[test]
fn namespace_axis_synthesizes_in_scope_declarations() {
    let f = Fixture::new();
    let city = f.elem("city", 0);
    let stream = axis_stream(
        &f.store,
        &city,
        RecordKind::Element,
        Axis::Namespace,
        NodeFilter {
            kind: vamana_mass::KindFilter::Attribute,
            name: None,
        },
    )
    .unwrap();
    let ns = stream.collect().unwrap();
    assert_eq!(ns.len(), 1);
    assert_eq!(f.store.names().resolve(ns[0].name.unwrap()), "xmlns:x");
}

#[test]
fn text_node_test_on_child_axis() {
    let f = Fixture::new();
    let name0 = f.elem("name", 0);
    let stream = axis_stream(
        &f.store,
        &name0,
        RecordKind::Element,
        Axis::Child,
        NodeFilter::text(),
    )
    .unwrap();
    let texts = stream.collect().unwrap();
    assert_eq!(texts.len(), 1);
    let rec = f.store.get(&texts[0].key).unwrap().unwrap();
    assert_eq!(f.store.resolve_value(&rec).unwrap().unwrap(), "Ann");
}

#[test]
fn streams_yield_document_order() {
    let f = Fixture::new();
    let site = f.elem("site", 0);
    for axis in [
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::Following,
    ] {
        let stream = axis_stream(
            &f.store,
            &site,
            RecordKind::Element,
            axis,
            NodeFilter::any(),
        )
        .unwrap();
        let keys: Vec<_> = stream
            .collect()
            .unwrap()
            .into_iter()
            .map(|e| e.key)
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "axis {axis} out of order");
        }
    }
}

#[test]
fn counts_match_stream_lengths() {
    // The cost model's COUNT must agree with what execution produces.
    let f = Fixture::new();
    let site = f.elem("site", 0);
    for name in ["person", "name", "watch", "price", "province"] {
        let id = f.store.name_id(name).unwrap();
        let counted = f.store.count_elements_in(id, &KeyRange::descendants(&site));
        let streamed = f.run_named(&site, Axis::Descendant, name) as u64;
        assert_eq!(counted, streamed, "mismatch for {name}");
    }
}

#[test]
fn every_axis_runs_from_every_element() {
    // Smoke test: no axis panics or violates document order anywhere.
    let f = Fixture::new();
    let all_elems: Vec<FlexKey> = {
        let mut keys = Vec::new();
        for name in [
            "site",
            "people",
            "person",
            "name",
            "address",
            "city",
            "province",
            "watches",
            "watch",
            "open_auctions",
            "open_auction",
            "itemref",
            "price",
            "emailaddress",
        ] {
            if let Some(id) = f.store.name_id(name) {
                for flat in f.store.name_index().elements(id).iter() {
                    keys.push(FlexKey::from_flat(flat.to_vec()));
                }
            }
        }
        keys
    };
    assert!(all_elems.len() >= 15);
    for key in &all_elems {
        for axis in Axis::ALL {
            let stream =
                axis_stream(&f.store, key, RecordKind::Element, axis, NodeFilter::any()).unwrap();
            let entries = stream.collect().unwrap();
            for w in entries.windows(2) {
                assert!(w[0].key < w[1].key, "axis {axis} out of order from {key}");
            }
        }
    }
}

// ---- batched (vectorized) evaluation ----------------------------------

/// Drains `stream` through `next_batch` pulls of `max` entries each.
fn drain_batched(
    mut stream: vamana_mass::axes::AxisStream<'_>,
    max: usize,
) -> Vec<vamana_mass::NodeEntry> {
    let mut out = Vec::new();
    while stream.next_batch(&mut out, max).unwrap() > 0 {}
    out
}

#[test]
fn batched_streams_match_scalar_on_every_axis() {
    // The batched pull must produce the byte-identical entry sequence as
    // the scalar pull, for every axis, from every element, including
    // batch sizes that force mid-page and mid-stream boundaries.
    let f = Fixture::new();
    let ctxs = ["site", "people", "person", "watches", "open_auction"];
    for name in ctxs {
        let ctx = f.elem(name, 0);
        for axis in Axis::ALL {
            for filter in [
                NodeFilter::any(),
                NodeFilter::any_element(),
                NodeFilter::text(),
            ] {
                let scalar = axis_stream(&f.store, &ctx, RecordKind::Element, axis, filter)
                    .unwrap()
                    .collect()
                    .unwrap();
                for max in [1, 2, 3, 1024] {
                    let stream =
                        axis_stream(&f.store, &ctx, RecordKind::Element, axis, filter).unwrap();
                    let batched = drain_batched(stream, max);
                    assert_eq!(
                        batched, scalar,
                        "axis {axis} filter {filter:?} max {max} from {name}"
                    );
                }
            }
        }
    }
}

#[test]
fn cursor_batch_on_empty_store_and_empty_range() {
    use vamana_mass::cursor::MassCursor;
    // Empty store: no pages at all.
    let empty = MassStore::open_memory();
    let mut cur = MassCursor::new(&empty, KeyRange::all());
    let mut out = Vec::new();
    assert_eq!(cur.next_batch(&mut out, 256).unwrap(), 0);
    assert_eq!(cur.next_batch(&mut out, 256).unwrap(), 0, "stays exhausted");
    // Populated store, but a range past every stored key.
    let f = Fixture::new();
    let last = f.elem("open_auction", 0);
    let range = KeyRange {
        lo: last.subtree_upper().unwrap(),
        hi: None,
    };
    let mut cur = MassCursor::new(&f.store, range);
    let n = cur.next_batch(&mut out, 256).unwrap();
    // Nothing below the document level follows the last auction subtree.
    assert!(
        out.iter().all(|e| !last.is_ancestor_of(&e.key)),
        "range must exclude the subtree"
    );
    let _ = n;
}

#[test]
fn batched_scan_crosses_pages_emptied_by_deletes() {
    // Build a store large enough for several pages, carve a hole in the
    // middle with a subtree delete, and check the batched scan agrees
    // with the scalar scan across the gap.
    let mut xml = String::from("<r>");
    for part in 0..3 {
        xml.push_str(&format!("<part id='g{part}'>"));
        for i in 0..800 {
            xml.push_str(&format!("<e>{part}-{i}</e>"));
        }
        xml.push_str("</part>");
    }
    xml.push_str("</r>");
    let mut store = MassStore::open_memory();
    store.load_xml("doc", &xml).unwrap();
    assert!(
        store.stats().pages > 3,
        "fixture must span multiple pages, got {}",
        store.stats().pages
    );
    let part1 = {
        let id = store.name_id("part").unwrap();
        let flat = store.name_index().elements(id).iter().nth(1).unwrap();
        FlexKey::from_flat(flat.to_vec())
    };
    let deleted = store.delete_subtree(&part1).unwrap();
    assert!(deleted > 800, "subtree delete must remove the middle part");
    let root = {
        let id = store.name_id("r").unwrap();
        let flat = store.name_index().elements(id).iter().next().unwrap();
        FlexKey::from_flat(flat.to_vec())
    };
    let scalar = axis_stream(
        &store,
        &root,
        RecordKind::Element,
        Axis::Descendant,
        NodeFilter::any(),
    )
    .unwrap()
    .collect()
    .unwrap();
    for max in [7, 256] {
        let stream = axis_stream(
            &store,
            &root,
            RecordKind::Element,
            Axis::Descendant,
            NodeFilter::any(),
        )
        .unwrap();
        assert_eq!(drain_batched(stream, max), scalar, "max {max}");
    }
}

#[test]
fn batch_counters_account_for_amortized_pins() {
    let mut xml = String::from("<r>");
    for i in 0..2000 {
        xml.push_str(&format!("<e>{i}</e>"));
    }
    xml.push_str("</r>");
    let mut store = MassStore::open_memory();
    store.load_xml("doc", &xml).unwrap();
    store.buffer_pool().reset_stats();
    let root = {
        let id = store.name_id("r").unwrap();
        let flat = store.name_index().elements(id).iter().next().unwrap();
        FlexKey::from_flat(flat.to_vec())
    };
    let stream = axis_stream(
        &store,
        &root,
        RecordKind::Element,
        Axis::Descendant,
        NodeFilter::any(),
    )
    .unwrap();
    let entries = drain_batched(stream, 256);
    let stats = store.buffer_pool().stats();
    assert!(!entries.is_empty());
    assert!(stats.batch_pins > 0, "batched scan must record its pins");
    assert!(
        stats.pins_saved >= entries.len() as u64 - stats.batch_pins,
        "pins_saved {} too small for {} entries over {} batch pins",
        stats.pins_saved,
        entries.len(),
        stats.batch_pins
    );
    // Every batch saves exactly (scanned - 1) pins, so the two counters
    // together equal the number of records examined.
    let scanned = stats.batch_pins + stats.pins_saved;
    assert!(
        scanned >= entries.len() as u64,
        "scanned {scanned} < produced {}",
        entries.len()
    );
}
