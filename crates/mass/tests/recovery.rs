//! Crash-recovery matrix for the durable update subsystem.
//!
//! A deterministic update script runs against a durable store whose
//! pager and WAL backend share a [`FaultClock`]: the clock cuts the
//! ordered write stream at the Nth write (the WAL append that exhausts
//! the budget writes only half its bytes — a genuinely torn frame). The
//! matrix runs the script once per possible fault point, "crashes"
//! (drops the store), reopens from the surviving bytes, and checks the
//! recovered state against a volatile DOM-replay oracle: it must equal
//! the state after exactly `acked` or `acked + 1` operations — the
//! committed prefix, with the in-flight operation either fully in or
//! fully out.

use vamana_flex::{FlexKey, KeyRange};
use vamana_mass::record::RecordKind;
use vamana_mass::{
    FaultClock, FaultPager, FaultWalBackend, FsyncPolicy, MassCursor, MassStore, MemWalBackend,
    Result, SharedPager,
};

const CAP: usize = 64;

/// One scripted update. Targets are named by `(element name, ordinal)`
/// so the script replays identically against any store.
#[derive(Clone, Copy)]
enum Op {
    Load(&'static str, &'static str),
    AppendElement(&'static str, usize, &'static str),
    AppendText(&'static str, usize, &'static str),
    AppendAttribute(&'static str, usize, &'static str, &'static str),
    InsertAfter(&'static str, usize, &'static str),
    AppendFragment(&'static str, usize, &'static str),
    DeleteElement(&'static str, usize),
    Checkpoint,
}

fn nth_element(s: &MassStore, name: &str, i: usize) -> FlexKey {
    let id = s.name_id(name).expect("script target name exists");
    let flat = s
        .name_index()
        .elements(id)
        .iter()
        .nth(i)
        .expect("script target ordinal exists")
        .to_vec();
    FlexKey::from_flat(flat)
}

fn apply(s: &mut MassStore, op: &Op) -> Result<()> {
    match *op {
        Op::Load(name, xml) => s.load_xml(name, xml).map(|_| ()),
        Op::AppendElement(p, i, name) => {
            let k = nth_element(s, p, i);
            s.append_element(&k, name).map(|_| ())
        }
        Op::AppendText(p, i, value) => {
            let k = nth_element(s, p, i);
            s.append_text(&k, value).map(|_| ())
        }
        Op::AppendAttribute(p, i, name, value) => {
            let k = nth_element(s, p, i);
            s.append_attribute(&k, name, value).map(|_| ())
        }
        Op::InsertAfter(p, i, name) => {
            let k = nth_element(s, p, i);
            s.insert_element_after(&k, name).map(|_| ())
        }
        Op::AppendFragment(p, i, xml) => {
            let k = nth_element(s, p, i);
            s.append_fragment(&k, xml).map(|_| ())
        }
        Op::DeleteElement(p, i) => {
            let k = nth_element(s, p, i);
            s.delete_subtree(&k).map(|_| ())
        }
        Op::Checkpoint => s.checkpoint(),
    }
}

/// Exercises every mutator, both WAL-logged updates and the bulk-load /
/// checkpoint paths, across two documents.
fn script() -> Vec<Op> {
    vec![
        Op::Load(
            "site",
            "<site><people><person id='p0'><name>Ann</name></person>\
             <person id='p1'><name>Bob</name></person></people>\
             <regions><item cat='c0'/></regions></site>",
        ),
        Op::AppendElement("people", 0, "person"),
        Op::AppendText("person", 2, "Zed"),
        Op::AppendAttribute("person", 2, "id", "p2"),
        Op::AppendFragment(
            "regions",
            0,
            "<item cat='c1'><name>Thing</name><price>9</price></item>",
        ),
        Op::Checkpoint,
        Op::InsertAfter("person", 0, "person"),
        Op::DeleteElement("person", 2),
        Op::AppendText("name", 0, " Q."),
        Op::Load("log", "<log><entry seq='1'>boot</entry></log>"),
        Op::AppendElement("log", 0, "entry"),
        Op::Checkpoint,
        Op::DeleteElement("item", 1),
        Op::AppendFragment(
            "people",
            0,
            "<person id='p3'><watches><watch/></watches></person>",
        ),
    ]
}

/// Everything observable about a store: the full clustered scan
/// (keys, kinds, resolved names, resolved values), the registered
/// documents, every count the cost model would ask for, value-index
/// probes for every stored value, and the exported XML of each document.
type RecordRow = (Vec<u8>, RecordKind, Option<String>, Option<String>);

#[derive(Debug, PartialEq)]
struct Fingerprint {
    docs: Vec<(String, Vec<u8>)>,
    records: Vec<RecordRow>,
    element_counts: Vec<(String, u64)>,
    attribute_counts: Vec<(String, u64)>,
    text_total: u64,
    value_probes: Vec<(String, u64)>,
    exported: Vec<String>,
}

fn fingerprint(s: &MassStore) -> Fingerprint {
    let mut records = Vec::new();
    let mut cur = MassCursor::new(s, KeyRange::all());
    while let Some(rec) = cur.next().expect("recovered store must scan cleanly") {
        let name = rec.name.map(|n| s.names().resolve(n).to_string());
        let value = s.resolve_value(&rec).expect("values resolve");
        records.push((rec.key.as_flat().to_vec(), rec.kind, name, value));
    }
    let mut names: Vec<String> = records.iter().filter_map(|r| r.2.clone()).collect();
    names.sort();
    names.dedup();
    let count = |f: &dyn Fn(vamana_mass::NameId) -> u64, n: &str| s.name_id(n).map(f).unwrap_or(0);
    let element_counts = names
        .iter()
        .map(|n| (n.clone(), count(&|id| s.count_elements(id), n)))
        .collect();
    let attribute_counts = names
        .iter()
        .map(|n| {
            (
                n.clone(),
                count(&|id| s.count_attributes_in(id, &KeyRange::all()), n),
            )
        })
        .collect();
    let mut values: Vec<String> = records.iter().filter_map(|r| r.3.clone()).collect();
    values.sort();
    values.dedup();
    let value_probes = values
        .into_iter()
        .map(|v| {
            let c = s.text_count(&v);
            (v, c)
        })
        .collect();
    let exported = s
        .documents()
        .iter()
        .map(|d| vamana_mass::export::export_subtree_xml(s, &d.doc_key).expect("export"))
        .collect();
    Fingerprint {
        docs: s
            .documents()
            .iter()
            .map(|d| (d.name.to_string(), d.doc_key.as_flat().to_vec()))
            .collect(),
        records,
        element_counts,
        attribute_counts,
        text_total: s.count_text_in(&KeyRange::all()),
        value_probes,
        exported,
    }
}

/// Volatile oracle: the state after the first `k` script operations.
fn oracle_fingerprints(ops: &[Op]) -> Vec<Fingerprint> {
    (0..=ops.len())
        .map(|k| {
            let mut s = MassStore::open_memory();
            for op in &ops[..k] {
                apply(&mut s, op).expect("oracle replay is fault-free");
            }
            fingerprint(&s)
        })
        .collect()
}

fn faulted_store(
    pager: &SharedPager,
    wal: &MemWalBackend,
    clock: &std::sync::Arc<FaultClock>,
    format: vamana_mass::StoreFormat,
) -> Result<MassStore> {
    let mut s = MassStore::create_with_wal(
        Box::new(FaultPager::new(Box::new(pager.clone()), clock.clone())),
        CAP,
        Box::new(FaultWalBackend::new(Box::new(wal.clone()), clock.clone())),
        FsyncPolicy::Always,
    )?;
    s.set_format(format)?;
    Ok(s)
}

/// The matrix proper, parameterized by page format. The oracle always
/// runs uncompressed, so the v2 run doubles as a cross-format
/// equivalence check at every crash point.
fn run_crash_matrix(format: vamana_mass::StoreFormat) {
    let ops = script();
    let oracle = oracle_fingerprints(&ops);

    // Clean run sizes the matrix: one fault point per ordered write.
    let clock = FaultClock::new();
    let pager = SharedPager::new();
    let wal = MemWalBackend::new();
    {
        let mut s = faulted_store(&pager, &wal, &clock, format).expect("clean create");
        for op in &ops {
            apply(&mut s, op).expect("clean run");
        }
    }
    let total_writes = clock.writes();
    assert!(
        total_writes > 40,
        "matrix should cover many write boundaries, got {total_writes}"
    );

    for n in 0..=total_writes {
        let clock = FaultClock::new();
        let pager = SharedPager::new();
        let wal = MemWalBackend::new();
        clock.arm(n);
        let mut acked = 0usize;
        if let Ok(mut s) = faulted_store(&pager, &wal, &clock, format) {
            for op in &ops {
                match apply(&mut s, op) {
                    Ok(()) => acked += 1,
                    Err(_) => break,
                }
            }
        }
        // "Crash": drop the store, reopen from whatever bytes survived.
        clock.disarm();
        let reopened = MassStore::open_with_wal(
            Box::new(pager.clone()),
            CAP,
            Box::new(wal.clone()),
            FsyncPolicy::Always,
        )
        .unwrap_or_else(|e| panic!("reopen after fault at write {n} failed: {e}"));
        let got = fingerprint(&reopened);
        let hi = (acked + 1).min(ops.len());
        assert!(
            got == oracle[acked] || got == oracle[hi],
            "fault at write {n}/{total_writes}: recovered state matches neither \
             shadow({acked}) nor shadow({hi})"
        );
    }
}

#[test]
fn crash_matrix_recovers_committed_prefix() {
    run_crash_matrix(vamana_mass::StoreFormat::V1);
}

#[test]
fn crash_matrix_recovers_committed_prefix_compressed() {
    run_crash_matrix(vamana_mass::StoreFormat::V2);
}

#[test]
fn uncommitted_tail_is_discarded_deterministically() {
    // Same matrix machinery, but checks the *stats* story: a reopen
    // after a fault reports a replayed LSN no greater than the last
    // committed LSN of the clean run, and the WAL depth equals the
    // number of surviving records.
    let ops = script();
    let clock = FaultClock::new();
    let pager = SharedPager::new();
    let wal = MemWalBackend::new();
    {
        let mut s =
            faulted_store(&pager, &wal, &clock, vamana_mass::StoreFormat::V1).expect("create");
        for op in &ops {
            apply(&mut s, op).expect("clean run");
        }
        let stats = s.wal_stats();
        assert!(s.is_durable());
        assert!(stats.last_lsn > 0);
    }
    let w = clock.writes();
    // Cut mid-run.
    let clock = FaultClock::new();
    let pager = SharedPager::new();
    let wal = MemWalBackend::new();
    clock.arm(w / 2);
    if let Ok(mut s) = faulted_store(&pager, &wal, &clock, vamana_mass::StoreFormat::V1) {
        for op in &ops {
            if apply(&mut s, op).is_err() {
                break;
            }
        }
    }
    clock.disarm();
    let s = MassStore::open_with_wal(
        Box::new(pager.clone()),
        CAP,
        Box::new(wal.clone()),
        FsyncPolicy::Always,
    )
    .expect("reopen");
    let stats = s.wal_stats();
    assert_eq!(stats.depth, stats.replayed_records);
    // Reopening *again* replays the identical prefix: recovery is
    // idempotent and deterministic.
    let again = MassStore::open_with_wal(
        Box::new(pager.clone()),
        CAP,
        Box::new(wal.clone()),
        FsyncPolicy::Always,
    )
    .expect("second reopen");
    assert_eq!(again.wal_stats().replayed_lsn, stats.replayed_lsn);
    assert_eq!(fingerprint(&again), fingerprint(&s));
}

// ---- file-backed durable round trips -----------------------------------

fn temp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vamana-recovery-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("store.mass")
}

#[test]
fn durable_file_updates_survive_reopen_without_checkpoint() {
    let path = temp_path("nockpt");
    let expected = {
        let mut s = MassStore::create_durable(&path, CAP, FsyncPolicy::Always).unwrap();
        for op in &script() {
            apply(&mut s, op).unwrap();
        }
        // Tail updates after the last checkpoint live only in the WAL.
        let k = nth_element(&s, "people", 0);
        s.append_element(&k, "straggler").unwrap();
        assert!(s.wal_stats().depth > 0, "tail must be un-checkpointed");
        fingerprint(&s)
        // dropped without checkpoint
    };
    let s = MassStore::open_durable(&path, CAP, FsyncPolicy::Always).unwrap();
    assert!(s.wal_stats().replayed_records > 0);
    assert_eq!(fingerprint(&s), expected);
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn durable_file_checkpoint_empties_the_log() {
    let path = temp_path("ckpt");
    let expected = {
        let mut s = MassStore::create_durable(&path, CAP, FsyncPolicy::EveryN(4)).unwrap();
        for op in &script() {
            apply(&mut s, op).unwrap();
        }
        s.checkpoint().unwrap();
        assert_eq!(s.wal_stats().depth, 0);
        fingerprint(&s)
    };
    let s = MassStore::open_durable(&path, CAP, FsyncPolicy::EveryN(4)).unwrap();
    assert_eq!(s.wal_stats().replayed_records, 0, "log was folded");
    assert_eq!(fingerprint(&s), expected);
    // LSNs keep climbing across the checkpoint + reopen.
    let mut s = s;
    let k = nth_element(&s, "people", 0);
    s.append_element(&k, "post").unwrap();
    assert!(s.wal_stats().last_lsn > 0);
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn wal_file_truncated_at_every_byte_recovers_a_prefix() {
    // Byte-granular torn tails on a real file: truncate the WAL at every
    // length, reopen, and require a clean recovery to *some* committed
    // prefix (monotone in the truncation point).
    let path = temp_path("torn");
    {
        let mut s = MassStore::create_durable(&path, CAP, FsyncPolicy::Never).unwrap();
        s.load_xml("d", "<r><a/></r>").unwrap();
        let k = nth_element(&s, "r", 0);
        for i in 0..6 {
            let e = s.append_element(&k, "e").unwrap();
            s.append_text(&e, &format!("t{i}")).unwrap();
        }
    }
    let wal_path = vamana_mass::pager::FilePager::wal_path(&path);
    let full = std::fs::read(&wal_path).unwrap();
    let mut last_records = 0u64;
    for cut in (0..=full.len()).rev() {
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let s = MassStore::open_durable(&path, CAP, FsyncPolicy::Never)
            .unwrap_or_else(|e| panic!("reopen at cut {cut} failed: {e}"));
        let replayed = s.wal_stats().replayed_records;
        if cut == full.len() {
            last_records = replayed;
            assert_eq!(replayed, 12, "full log replays all 12 inserts");
        }
        assert!(
            replayed <= last_records,
            "shorter logs cannot replay more records"
        );
        last_records = replayed;
        // Every replayed prefix is pairwise consistent: elements and
        // texts arrive in lockstep.
        let e = s.name_id("e").map(|id| s.count_elements(id)).unwrap_or(0);
        assert!(e <= 6);
    }
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
