//! End-to-end tests for the compressed (v2) page tier: v1/v2 behavioral
//! equivalence under loads and updates, real compression on repetitive
//! documents, and durability (catalog format + dictionary survive reopen).

use vamana_mass::export::export_subtree_xml;
use vamana_mass::fault::SharedPager;
use vamana_mass::{FsyncPolicy, MassStore, MemWalBackend, StoreFormat};

const CAP: usize = 256;

/// A repetitive auction-like document: deep sibling runs (front-coding
/// fodder) and a handful of hot attribute/text values (dictionary fodder).
fn synthetic_doc(items: usize) -> String {
    let mut xml = String::from("<site><regions><namerica>");
    let cats = ["sports", "books", "music", "garden"];
    for i in 0..items {
        let cat = cats[i % cats.len()];
        xml.push_str(&format!(
            "<item category=\"{cat}\" featured=\"yes\"><name>item-{i}</name>\
             <quantity>1</quantity><location>United States</location>\
             <description>the usual lorem assortment of words</description></item>"
        ));
    }
    xml.push_str("</namerica></regions></site>");
    xml
}

fn fingerprint(store: &MassStore) -> (String, u64, u32) {
    let doc_key = store.documents()[0].doc_key.clone();
    let xml = export_subtree_xml(store, &doc_key).expect("export");
    let stats = store.stats();
    (xml, stats.tuples, stats.pages)
}

#[test]
fn v2_store_answers_exactly_like_v1() {
    let xml = synthetic_doc(400);
    let mut v1 = MassStore::open_memory();
    let mut v2 = MassStore::open_memory_v2();
    v1.load_xml("auction", &xml).unwrap();
    v2.load_xml("auction", &xml).unwrap();

    let (x1, t1, p1) = fingerprint(&v1);
    let (x2, t2, p2) = fingerprint(&v2);
    assert_eq!(x1, x2, "exported XML must be byte-identical");
    assert_eq!(t1, t2);
    assert!(p2 < p1, "v2 should use fewer pages than v1 ({p2} vs {p1})");

    // Secondary indexes see through the dictionary.
    let item = v1.name_id("item").unwrap();
    assert_eq!(v1.count_elements(item), v2.count_elements(item));
    assert_eq!(
        v1.text_count("United States"),
        v2.text_count("United States")
    );
    assert_eq!(v2.text_count("United States"), 400);

    let s2 = v2.stats();
    assert_eq!(s2.format, StoreFormat::V2);
    assert_eq!(
        s2.uncompressed_pages, 0,
        "bulk load should emit only v2 pages"
    );
    assert_eq!(s2.compressed_pages, s2.pages);
    assert!(
        s2.dict_entries > 0,
        "hot values should be dictionary-admitted"
    );
    assert!(
        s2.compression_ratio() > 1.5,
        "repetitive doc should compress well, got {:.2}",
        s2.compression_ratio()
    );
    assert!(s2.buffer.writes_v2 > 0);
}

#[test]
fn v2_updates_track_v1_updates() {
    let xml = synthetic_doc(120);
    let mut v1 = MassStore::open_memory();
    let mut v2 = MassStore::open_memory_v2();
    v1.load_xml("auction", &xml).unwrap();
    v2.load_xml("auction", &xml).unwrap();

    for store in [&mut v1, &mut v2] {
        let doc_key = store.documents()[0].doc_key.clone();
        // document -> site -> regions -> namerica
        let site = store.last_child_key(&doc_key).unwrap().unwrap();
        let regions = store.last_child_key(&site).unwrap().unwrap();
        let namerica = store.last_child_key(&regions).unwrap().unwrap();
        // Delete a run of items, then append new structure with both
        // dictionary-known and fresh values.
        for _ in 0..30 {
            let victim = store.last_child_key(&namerica).unwrap().unwrap();
            store.delete_subtree(&victim).unwrap();
        }
        for i in 0..10 {
            let item = store.append_element(&namerica, "item").unwrap();
            store.append_attribute(&item, "category", "sports").unwrap();
            let name = store.append_element(&item, "name").unwrap();
            store.append_text(&name, &format!("late-{i}")).unwrap();
        }
        store
            .append_fragment(
                &namerica,
                "<item category=\"books\"><name>frag</name></item>",
            )
            .unwrap();
    }

    let (x1, t1, _) = fingerprint(&v1);
    let (x2, t2, _) = fingerprint(&v2);
    assert_eq!(x1, x2, "updates must leave identical logical content");
    assert_eq!(t1, t2);
    assert_eq!(v1.text_count("frag"), v2.text_count("frag"));
}

#[test]
fn durable_v2_survives_reopen_with_dict_and_format() {
    let pager = SharedPager::new();
    let wal = MemWalBackend::new();
    let xml = synthetic_doc(200);
    let before;
    let dict_before;
    {
        let mut s = MassStore::create_with_wal(
            Box::new(pager.clone()),
            CAP,
            Box::new(wal.clone()),
            FsyncPolicy::Always,
        )
        .unwrap();
        s.set_format(StoreFormat::V2).unwrap();
        s.load_xml("auction", &xml).unwrap();
        let doc_key = s.documents()[0].doc_key.clone();
        let site = s.last_child_key(&doc_key).unwrap().unwrap();
        s.append_element(&site, "closed_auctions").unwrap();
        before = fingerprint(&s);
        dict_before = s.dict().len();
        assert!(dict_before > 0);
    }
    let s = MassStore::open_with_wal(
        Box::new(pager.clone()),
        CAP,
        Box::new(wal.clone()),
        FsyncPolicy::Always,
    )
    .unwrap();
    assert_eq!(s.format(), StoreFormat::V2, "format must survive reopen");
    assert_eq!(
        s.dict().len(),
        dict_before,
        "dictionary must survive reopen"
    );
    assert_eq!(fingerprint(&s), before);
    let stats = s.stats();
    assert_eq!(stats.uncompressed_pages, 0);
    assert!(stats.compression_ratio() > 1.0);
}

#[test]
fn format_choice_is_durable_before_first_load() {
    let pager = SharedPager::new();
    let wal = MemWalBackend::new();
    {
        let mut s = MassStore::create_with_wal(
            Box::new(pager.clone()),
            CAP,
            Box::new(wal.clone()),
            FsyncPolicy::Always,
        )
        .unwrap();
        s.set_format(StoreFormat::V2).unwrap();
        // Crash here: no load, no explicit checkpoint.
    }
    let s =
        MassStore::open_with_wal(Box::new(pager), CAP, Box::new(wal), FsyncPolicy::Always).unwrap();
    assert_eq!(s.format(), StoreFormat::V2);
}

#[test]
fn set_format_rejected_after_load() {
    let mut s = MassStore::open_memory();
    s.load_xml("d", "<a><b>x</b></a>").unwrap();
    assert!(s.set_format(StoreFormat::V2).is_err());
}
