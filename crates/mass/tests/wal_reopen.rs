//! Property test: torn-tail recovery is idempotent. Whatever prefix of
//! a log survives a crash — cut mid-frame, mid-batch, or at a clean
//! commit boundary, with arbitrary garbage splashed after the cut —
//! opening it recovers exactly the last wholly-durable commit, and
//! opening it a *second* time recovers the same LSN over a byte-
//! identical log image (the first open's truncation is a fixpoint).

use proptest::prelude::*;
use vamana_flex::{seq_label, FlexKey};
use vamana_mass::{FsyncPolicy, MemWalBackend, Wal, WalBackend, WalRecord};

/// `VWAL1` magic plus the u64 start LSN.
const HEADER_LEN: u64 = 13;

fn arb_record() -> impl Strategy<Value = WalRecord> {
    (
        proptest::collection::vec(0u64..64, 1..4),
        "[a-z]{1,12}",
        0u8..3,
    )
        .prop_map(|(path, text, kind)| {
            let mut key = FlexKey::root();
            for p in &path {
                key = key.child(&seq_label(*p));
            }
            match kind {
                0 => WalRecord::InsertElement {
                    key,
                    name: text.clone(),
                },
                1 => WalRecord::InsertText {
                    key,
                    value: text.clone(),
                },
                _ => WalRecord::DeleteSubtree { key },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn torn_tail_recovery_is_idempotent(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_record(), 1..5), 0..6),
        uncommitted in proptest::collection::vec(arb_record(), 0..4),
        cut_permille in 0u64..=1000,
        garbage in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        // Build a log: committed batches, then an uncommitted suffix.
        // Track the byte length and LSN at every durable commit marker.
        let backend = MemWalBackend::new();
        let mut wal = Wal::create(Box::new(backend.clone()), FsyncPolicy::Never).unwrap();
        let mut commits: Vec<(u64, u64)> = vec![(HEADER_LEN, 0)];
        for batch in &batches {
            for rec in batch {
                wal.append(rec).unwrap();
            }
            let lsn = wal.commit().unwrap();
            commits.push((backend.len() as u64, lsn));
        }
        for rec in &uncommitted {
            wal.append(rec).unwrap();
        }
        drop(wal);

        // Tear the tail at an arbitrary point past the header and
        // splash garbage bytes where the lost suffix used to be.
        let len = backend.len() as u64;
        let cut = HEADER_LEN + (len - HEADER_LEN) * cut_permille / 1000;
        {
            let mut torn = backend.clone();
            torn.truncate(cut).unwrap();
            torn.append(&garbage).unwrap();
        }
        // The strongest commit fully inside the surviving prefix is the
        // only correct recovery point.
        let expected_lsn = commits
            .iter()
            .filter(|(bytes, _)| *bytes <= cut)
            .map(|(_, lsn)| *lsn)
            .max()
            .unwrap();

        let (wal1, recs1) = Wal::open(Box::new(backend.clone()), FsyncPolicy::Never, 0).unwrap();
        let lsn1 = wal1.last_committed_lsn();
        drop(wal1);
        prop_assert_eq!(
            lsn1,
            expected_lsn,
            "recovered {} but the durable prefix ends at {} (cut {} of {}, commits {:?})",
            lsn1,
            expected_lsn,
            cut,
            len,
            commits
        );
        let image1 = backend.clone().read_all().unwrap();
        prop_assert!(image1.len() as u64 <= cut.max(HEADER_LEN), "garbage survived the open");

        // Second open: same LSN, same records, byte-identical image.
        let (wal2, recs2) = Wal::open(Box::new(backend.clone()), FsyncPolicy::Never, 0).unwrap();
        let lsn2 = wal2.last_committed_lsn();
        drop(wal2);
        let image2 = backend.clone().read_all().unwrap();
        prop_assert_eq!(lsn2, lsn1);
        prop_assert_eq!(recs2, recs1);
        prop_assert_eq!(image2, image1);
    }
}
