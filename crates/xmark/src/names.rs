//! Word pools for the generator (modeled on the vocabulary `xmlgen`
//! draws from; "Yung Flach" — the paper's running example — is included).

use rand::Rng;

/// Picks a random entry from a pool.
pub fn pick<'a, R: Rng>(rng: &mut R, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// First names.
pub const FIRST_NAMES: &[&str] = &[
    "Yung", "Ann", "Bob", "Carla", "Dmitri", "Elena", "Farid", "Grete", "Hiro", "Ines", "Jamal",
    "Kiri", "Luis", "Mei", "Nadia", "Omar", "Priya", "Quentin", "Rosa", "Sven", "Tara", "Umberto",
    "Vera", "Wen", "Ximena", "Yusuf", "Zoe", "Anil", "Berta", "Chen",
];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "Flach",
    "Smith",
    "Garcia",
    "Ivanov",
    "Okafor",
    "Müller",
    "Rossi",
    "Tanaka",
    "Kowalski",
    "Nakamura",
    "Pfisterer",
    "Johnson",
    "Brown",
    "Silva",
    "Kim",
    "Novak",
    "Larsen",
    "Dubois",
    "Haines",
    "Acharya",
    "Osei",
    "Berg",
    "Castillo",
    "Reyes",
    "Weiss",
    "Moreau",
    "Lindgren",
];

/// Email domains.
pub const DOMAINS: &[&str] = &[
    "auth", "acme", "example", "mail", "univ", "labs", "data", "auctions", "wpi",
];

/// Countries (United States present so provinces are emitted).
pub const COUNTRIES: &[&str] = &[
    "United States",
    "United States",
    "Germany",
    "Japan",
    "Brazil",
    "Kenya",
    "France",
    "Australia",
    "India",
    "Canada",
    "Poland",
    "Mexico",
];

/// Cities.
pub const CITIES: &[&str] = &[
    "Monroe",
    "Worcester",
    "Springfield",
    "Riverton",
    "Lakeside",
    "Fairview",
    "Georgetown",
    "Ashland",
    "Milton",
    "Clinton",
    "Dayton",
    "Salem",
];

/// US provinces/states — Vermont first, it anchors Q5.
pub const PROVINCES: &[&str] = &[
    "Vermont",
    "Massachusetts",
    "Oregon",
    "Texas",
    "Iowa",
    "Nevada",
    "Maine",
    "Ohio",
    "Georgia",
    "Utah",
    "Kansas",
    "Idaho",
];

/// Filler vocabulary for description text.
pub const WORDS: &[&str] = &[
    "gold",
    "vintage",
    "rare",
    "mint",
    "boxed",
    "antique",
    "signed",
    "limited",
    "edition",
    "classic",
    "portable",
    "hand",
    "crafted",
    "imported",
    "original",
    "refurbished",
    "sealed",
    "collector",
    "series",
    "deluxe",
    "compact",
    "heavy",
    "light",
    "silver",
    "bronze",
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pick_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(pick(&mut a, FIRST_NAMES), pick(&mut b, FIRST_NAMES));
        }
    }

    #[test]
    fn pools_are_non_empty_and_contain_anchors() {
        assert!(FIRST_NAMES.contains(&"Yung"));
        assert!(LAST_NAMES.contains(&"Flach"));
        assert!(PROVINCES.contains(&"Vermont"));
        assert!(CITIES.contains(&"Monroe"));
    }
}
