//! # vamana-xmark
//!
//! A deterministic generator for XMark-style `auction.xml` documents
//! (Schmidt et al., VLDB 2002). The original `xmlgen` C program is not
//! available offline, so this crate synthesizes documents with the same
//! element vocabulary, nesting and entity proportions — everything the
//! VAMANA evaluation queries (Q1–Q5) exercise:
//!
//! * `site / people / person` with `name`, `emailaddress`, optional
//!   `address` (with `city`, `country`, and sometimes `province`),
//!   optional `watches / watch`;
//! * `site / regions / <continent> / item` with nested `description`;
//! * `site / open_auctions / open_auction` with `itemref`, `bidder`,
//!   `current`, and `site / closed_auctions / closed_auction` with
//!   `itemref` followed by `price` (the sibling pair Q4 navigates);
//! * `site / categories / category`.
//!
//! Documents are seeded and fully deterministic: the same
//! [`XmarkConfig`] always yields byte-identical output.
//!
//! ```
//! use vamana_xmark::{XmarkConfig, generate_string};
//!
//! let xml = generate_string(&XmarkConfig::with_scale(0.001));
//! assert!(xml.starts_with("<site>"));
//! ```

pub mod names;
pub mod scale;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use vamana_xml::{Document, NodeId};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// XMark scale factor: 1.0 ≈ a 100 MB document; the evaluation sweeps
    /// roughly 0.01 (1 MB) to 0.5 (50 MB).
    pub scale: f64,
    /// RNG seed; same seed + scale ⇒ identical document.
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            scale: 0.01,
            seed: 0x5EED,
        }
    }
}

impl XmarkConfig {
    /// Config at `scale` with the default seed.
    pub fn with_scale(scale: f64) -> Self {
        XmarkConfig {
            scale,
            ..Default::default()
        }
    }

    fn count(&self, base: u64) -> u64 {
        ((base as f64 * self.scale).round() as u64).max(1)
    }

    /// Number of persons at this scale (25 500 at scale 1, as in XMark).
    pub fn persons(&self) -> u64 {
        self.count(25_500)
    }

    /// Number of open auctions (12 000 at scale 1).
    pub fn open_auctions(&self) -> u64 {
        self.count(12_000)
    }

    /// Number of closed auctions (3 000 at scale 1).
    pub fn closed_auctions(&self) -> u64 {
        self.count(3_000)
    }

    /// Number of items across all regions (21 750 at scale 1).
    pub fn items(&self) -> u64 {
        self.count(21_750)
    }

    /// Number of categories (1 000 at scale 1).
    pub fn categories(&self) -> u64 {
        self.count(1_000)
    }
}

/// Where generated nodes land: a DOM arena ([`Document`]) or a
/// streaming XML writer ([`StreamEmitter`]). The generator walks the
/// document strictly in document order and pushes attributes before any
/// children, so one code path serves both.
trait Emitter {
    /// Handle for an emitted element (arena id, or a stream sequence
    /// number identifying the open ancestor).
    type Node: Copy + PartialEq;
    /// The document root.
    fn root(&self) -> Self::Node;
    /// Opens an element under `parent` (closing any deeper open
    /// elements in the streaming case).
    fn element(&mut self, parent: Self::Node, name: &str) -> Self::Node;
    /// Attaches an attribute to `el`, which must still be open with no
    /// content emitted yet.
    fn attribute(&mut self, el: Self::Node, name: &str, value: &str);
    /// Appends a text child to `parent`.
    fn text(&mut self, parent: Self::Node, value: &str);
}

impl Emitter for Document {
    type Node = NodeId;

    fn root(&self) -> NodeId {
        Document::ROOT
    }

    fn element(&mut self, parent: NodeId, name: &str) -> NodeId {
        self.push_element(parent, name)
    }

    fn attribute(&mut self, el: NodeId, name: &str, value: &str) {
        self.push_attribute(el, name, value);
    }

    fn text(&mut self, parent: NodeId, value: &str) {
        self.push_text(parent, value);
    }
}

/// Streams compact XML to an [`io::Write`] in O(1) memory (the open
/// ancestor stack), byte-identical to serializing the DOM arena with
/// [`vamana_xml::write_document`] in compact mode.
struct StreamEmitter<W: io::Write> {
    out: W,
    /// Open elements, outermost first: `(handle, name)`.
    stack: Vec<(u64, String)>,
    next: u64,
    /// The innermost open element's start tag has not been closed with
    /// `>` yet (attributes may still be appended; an empty element
    /// collapses to `/>`).
    tag_open: bool,
    bytes: u64,
    err: Option<io::Error>,
}

/// Stream handle of the document root.
const STREAM_ROOT: u64 = 0;

impl<W: io::Write> StreamEmitter<W> {
    fn new(out: W) -> Self {
        StreamEmitter {
            out,
            stack: Vec::new(),
            next: STREAM_ROOT + 1,
            tag_open: false,
            bytes: 0,
            err: None,
        }
    }

    fn write(&mut self, s: &str) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(s.as_bytes()) {
            self.err = Some(e);
        } else {
            self.bytes += s.len() as u64;
        }
    }

    /// Finalizes the innermost start tag with `>` so content can follow.
    fn seal_tag(&mut self) {
        if self.tag_open {
            self.write(">");
            self.tag_open = false;
        }
    }

    /// Closes the innermost element: `/>` if it never got content.
    fn close_top(&mut self) {
        let (_, name) = self.stack.pop().expect("close with open element");
        if self.tag_open {
            self.write("/>");
            self.tag_open = false;
        } else {
            self.write("</");
            self.write(&name);
            self.write(">");
        }
    }

    /// Closes open elements until `parent` is innermost.
    fn unwind_to(&mut self, parent: u64) {
        while self.stack.last().map(|(id, _)| *id) != Some(parent) {
            if self.stack.is_empty() {
                assert_eq!(parent, STREAM_ROOT, "unwind target not on stack");
                return;
            }
            self.close_top();
        }
    }

    /// Closes everything and returns `(bytes written, io result)`.
    fn finish(mut self) -> io::Result<u64> {
        self.unwind_to(STREAM_ROOT);
        if let Some(e) = self.err {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.bytes)
    }
}

impl<W: io::Write> Emitter for StreamEmitter<W> {
    type Node = u64;

    fn root(&self) -> u64 {
        STREAM_ROOT
    }

    fn element(&mut self, parent: u64, name: &str) -> u64 {
        self.unwind_to(parent);
        self.seal_tag();
        self.write("<");
        self.write(name);
        self.tag_open = true;
        let id = self.next;
        self.next += 1;
        self.stack.push((id, name.to_string()));
        id
    }

    fn attribute(&mut self, el: u64, name: &str, value: &str) {
        debug_assert!(self.tag_open && self.stack.last().map(|(id, _)| *id) == Some(el));
        let _ = el;
        self.write(" ");
        self.write(name);
        self.write("=\"");
        let escaped = vamana_xml::escape::escape_attr(value);
        self.write(&escaped);
        self.write("\"");
    }

    fn text(&mut self, parent: u64, value: &str) {
        self.unwind_to(parent);
        self.seal_tag();
        let escaped = vamana_xml::escape::escape_text(value);
        self.write(&escaped);
    }
}

/// Generates an auction document as a parsed [`Document`] arena.
pub fn generate(config: &XmarkConfig) -> Document {
    Generator::new(config, Document::new()).run()
}

/// Generates an auction document as XML text.
pub fn generate_string(config: &XmarkConfig) -> String {
    let doc = generate(config);
    vamana_xml::write_document(&doc, &vamana_xml::WriteOptions::default())
}

/// Streams an auction document straight to `out` without materializing
/// it: memory stays O(document depth) at any scale, so 100 MB–1 GB
/// documents generate without a DOM. Output is byte-identical to
/// [`generate_string`] for the same config. Returns bytes written.
pub fn generate_to<W: io::Write>(config: &XmarkConfig, out: W) -> io::Result<u64> {
    Generator::new(config, StreamEmitter::new(io::BufWriter::new(out)))
        .run()
        .finish()
}

/// Size in bytes of the document at `config` without storing any of it
/// (streams to a counting sink).
pub fn document_bytes(config: &XmarkConfig) -> u64 {
    generate_to(config, io::sink()).expect("sink never fails")
}

struct Generator<'a, E: Emitter> {
    config: &'a XmarkConfig,
    rng: StdRng,
    doc: E,
    /// Whether a `<province>` has been emitted yet. The first one is
    /// always Vermont so Q5 (`//province[text()='Vermont']`) is
    /// non-empty at every scale and seed, as the benchmark relies on.
    province_emitted: bool,
}

impl<'a, E: Emitter> Generator<'a, E> {
    fn new(config: &'a XmarkConfig, doc: E) -> Self {
        Generator {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            doc,
            province_emitted: false,
        }
    }

    fn run(mut self) -> E {
        let root = self.doc.root();
        let site = self.doc.element(root, "site");
        self.regions(site);
        self.categories(site);
        self.people(site);
        self.open_auctions(site);
        self.closed_auctions(site);
        self.doc
    }

    fn sentence(&mut self, words: usize) -> String {
        let mut s = String::new();
        for i in 0..words {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(names::pick(&mut self.rng, names::WORDS));
        }
        s
    }

    fn regions(&mut self, site: E::Node) {
        let regions = self.doc.element(site, "regions");
        let continents = [
            "africa",
            "asia",
            "australia",
            "europe",
            "namerica",
            "samerica",
        ];
        let per = (self.config.items() / continents.len() as u64).max(1);
        let mut item_id = 0u64;
        for continent in continents {
            let c = self.doc.element(regions, continent);
            for _ in 0..per {
                let item = self.doc.element(c, "item");
                self.doc.attribute(item, "id", &format!("item{item_id}"));
                item_id += 1;
                let loc = self.doc.element(item, "location");
                let country = names::pick(&mut self.rng, names::COUNTRIES).to_string();
                self.doc.text(loc, &country);
                let name = self.doc.element(item, "name");
                let text = self.sentence(2);
                self.doc.text(name, &text);
                let desc = self.doc.element(item, "description");
                let text_el = self.doc.element(desc, "text");
                let body = self.sentence(12);
                self.doc.text(text_el, &body);
                let qty = self.doc.element(item, "quantity");
                let q = self.rng.gen_range(1..=5).to_string();
                self.doc.text(qty, &q);
                for _ in 0..self.rng.gen_range(1..=2) {
                    let inc = self.doc.element(item, "incategory");
                    let cat = format!(
                        "category{}",
                        self.rng.gen_range(0..self.config.categories())
                    );
                    self.doc.attribute(inc, "category", &cat);
                }
                if self.rng.gen_bool(0.25) {
                    let mailbox = self.doc.element(item, "mailbox");
                    for _ in 0..self.rng.gen_range(1..=2) {
                        let mail = self.doc.element(mailbox, "mail");
                        let from = self.doc.element(mail, "from");
                        let f = format!(
                            "{} {}",
                            names::pick(&mut self.rng, names::FIRST_NAMES),
                            names::pick(&mut self.rng, names::LAST_NAMES)
                        );
                        self.doc.text(from, &f);
                        let date = self.doc.element(mail, "date");
                        let d = format!(
                            "{:02}/{:02}/{}",
                            self.rng.gen_range(1..=12),
                            self.rng.gen_range(1..=28),
                            self.rng.gen_range(1998..=2004)
                        );
                        self.doc.text(date, &d);
                        let text = self.doc.element(mail, "text");
                        let body = self.sentence(10);
                        self.doc.text(text, &body);
                    }
                }
            }
        }
    }

    fn categories(&mut self, site: E::Node) {
        let categories = self.doc.element(site, "categories");
        for i in 0..self.config.categories() {
            let cat = self.doc.element(categories, "category");
            self.doc.attribute(cat, "id", &format!("category{i}"));
            let name = self.doc.element(cat, "name");
            let text = self.sentence(1);
            self.doc.text(name, &text);
            let desc = self.doc.element(cat, "description");
            let text_el = self.doc.element(desc, "text");
            let body = self.sentence(8);
            self.doc.text(text_el, &body);
        }
    }

    fn people(&mut self, site: E::Node) {
        let people = self.doc.element(site, "people");
        let n = self.config.persons();
        for i in 0..n {
            let person = self.doc.element(people, "person");
            self.doc.attribute(person, "id", &format!("person{i}"));
            let name = self.doc.element(person, "name");
            let first = names::pick(&mut self.rng, names::FIRST_NAMES);
            let last = names::pick(&mut self.rng, names::LAST_NAMES);
            let full = format!("{first} {last}");
            self.doc.text(name, &full);
            let email = self.doc.element(person, "emailaddress");
            let addr = format!("{last}@{}.com", names::pick(&mut self.rng, names::DOMAINS));
            self.doc.text(email, &addr);
            if self.rng.gen_bool(0.3) {
                let phone = self.doc.element(person, "phone");
                let num = format!(
                    "+{} ({}) {}",
                    self.rng.gen_range(1..99),
                    self.rng.gen_range(100..999),
                    self.rng.gen_range(1_000_000..9_999_999)
                );
                self.doc.text(phone, &num);
            }
            // Roughly half the persons carry an address — the paper's
            // Fig 6 counts 2550 persons vs 1256 addresses.
            if self.rng.gen_bool(0.49) {
                let address = self.doc.element(person, "address");
                let street = self.doc.element(address, "street");
                let st = format!(
                    "{} {} St",
                    self.rng.gen_range(1..99),
                    names::pick(&mut self.rng, names::LAST_NAMES)
                );
                self.doc.text(street, &st);
                let city = self.doc.element(address, "city");
                let ci = names::pick(&mut self.rng, names::CITIES).to_string();
                self.doc.text(city, &ci);
                let country = self.doc.element(address, "country");
                let co = names::pick(&mut self.rng, names::COUNTRIES).to_string();
                self.doc.text(country, &co);
                if co == "United States" {
                    let province = self.doc.element(address, "province");
                    let pr = if self.province_emitted {
                        names::pick(&mut self.rng, names::PROVINCES).to_string()
                    } else {
                        self.province_emitted = true;
                        names::PROVINCES[0].to_string()
                    };
                    self.doc.text(province, &pr);
                }
                let zip = self.doc.element(address, "zipcode");
                let z = self.rng.gen_range(1..99_999).to_string();
                self.doc.text(zip, &z);
            }
            if self.rng.gen_bool(0.5) {
                let profile = self.doc.element(person, "profile");
                let income = format!("{:.2}", self.rng.gen_range(9_000.0..100_000.0));
                self.doc.attribute(profile, "income", &income);
                for _ in 0..self.rng.gen_range(0..=3) {
                    let interest = self.doc.element(profile, "interest");
                    let cat = format!(
                        "category{}",
                        self.rng.gen_range(0..self.config.categories())
                    );
                    self.doc.attribute(interest, "category", &cat);
                }
                if self.rng.gen_bool(0.6) {
                    let edu = self.doc.element(profile, "education");
                    let level = names::pick(
                        &mut self.rng,
                        &["High School", "College", "Graduate School", "Other"],
                    )
                    .to_string();
                    self.doc.text(edu, &level);
                }
                let age = self.doc.element(profile, "age");
                let a = self.rng.gen_range(18..80).to_string();
                self.doc.text(age, &a);
            }
            if self.rng.gen_bool(0.3) {
                let cc = self.doc.element(person, "creditcard");
                let num = format!(
                    "{} {} {} {}",
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999)
                );
                self.doc.text(cc, &num);
            }
            if self.rng.gen_bool(0.4) {
                let watches = self.doc.element(person, "watches");
                for _ in 0..self.rng.gen_range(1..=4) {
                    let watch = self.doc.element(watches, "watch");
                    let oa = format!(
                        "open_auction{}",
                        self.rng.gen_range(0..self.config.open_auctions().max(1))
                    );
                    self.doc.attribute(watch, "open_auction", &oa);
                }
            }
        }
    }

    fn open_auctions(&mut self, site: E::Node) {
        let auctions = self.doc.element(site, "open_auctions");
        let items = self.config.items();
        let persons = self.config.persons();
        for i in 0..self.config.open_auctions() {
            let a = self.doc.element(auctions, "open_auction");
            self.doc.attribute(a, "id", &format!("open_auction{i}"));
            let initial = self.doc.element(a, "initial");
            let v = format!("{:.2}", self.rng.gen_range(1.0..200.0));
            self.doc.text(initial, &v);
            for _ in 0..self.rng.gen_range(0..=3) {
                let bidder = self.doc.element(a, "bidder");
                let pref = self.doc.element(bidder, "personref");
                let p = format!("person{}", self.rng.gen_range(0..persons));
                self.doc.attribute(pref, "person", &p);
                let incr = self.doc.element(bidder, "increase");
                let inc = format!("{:.2}", self.rng.gen_range(1.0..20.0));
                self.doc.text(incr, &inc);
            }
            let current = self.doc.element(a, "current");
            let cur = format!("{:.2}", self.rng.gen_range(1.0..400.0));
            self.doc.text(current, &cur);
            let itemref = self.doc.element(a, "itemref");
            let it = format!("item{}", self.rng.gen_range(0..items));
            self.doc.attribute(itemref, "item", &it);
            let seller = self.doc.element(a, "seller");
            let s = format!("person{}", self.rng.gen_range(0..persons));
            self.doc.attribute(seller, "person", &s);
            let quantity = self.doc.element(a, "quantity");
            let q = self.rng.gen_range(1..=5).to_string();
            self.doc.text(quantity, &q);
        }
    }

    fn closed_auctions(&mut self, site: E::Node) {
        let auctions = self.doc.element(site, "closed_auctions");
        let items = self.config.items();
        let persons = self.config.persons();
        for _ in 0..self.config.closed_auctions() {
            let a = self.doc.element(auctions, "closed_auction");
            let seller = self.doc.element(a, "seller");
            let s = format!("person{}", self.rng.gen_range(0..persons));
            self.doc.attribute(seller, "person", &s);
            let buyer = self.doc.element(a, "buyer");
            let b = format!("person{}", self.rng.gen_range(0..persons));
            self.doc.attribute(buyer, "person", &b);
            // itemref directly followed by price: the sibling pair that
            // Q4 (`//itemref/following-sibling::price/parent::*`) walks.
            let itemref = self.doc.element(a, "itemref");
            let it = format!("item{}", self.rng.gen_range(0..items));
            self.doc.attribute(itemref, "item", &it);
            let price = self.doc.element(a, "price");
            let p = format!("{:.2}", self.rng.gen_range(1.0..500.0));
            self.doc.text(price, &p);
            let date = self.doc.element(a, "date");
            let d = format!(
                "{:02}/{:02}/{}",
                self.rng.gen_range(1..=12),
                self.rng.gen_range(1..=28),
                self.rng.gen_range(1998..=2004)
            );
            self.doc.text(date, &d);
            let quantity = self.doc.element(a, "quantity");
            let q = self.rng.gen_range(1..=5).to_string();
            self.doc.text(quantity, &q);
            if self.rng.gen_bool(0.3) {
                let annotation = self.doc.element(a, "annotation");
                let desc = self.doc.element(annotation, "description");
                let text = self.doc.element(desc, "text");
                let body = self.sentence(8);
                self.doc.text(text, &body);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_string(&XmarkConfig::with_scale(0.002));
        let b = generate_string(&XmarkConfig::with_scale(0.002));
        assert_eq!(a, b);
        let c = generate_string(&XmarkConfig {
            scale: 0.002,
            seed: 99,
        });
        assert_ne!(a, c);
    }

    #[test]
    fn streamed_output_is_byte_identical_to_dom_output() {
        for scale in [0.001, 0.004] {
            let cfg = XmarkConfig::with_scale(scale);
            let dom = generate_string(&cfg);
            let mut streamed = Vec::new();
            let bytes = generate_to(&cfg, &mut streamed).unwrap();
            assert_eq!(bytes as usize, streamed.len());
            assert_eq!(String::from_utf8(streamed).unwrap(), dom, "scale {scale}");
            assert_eq!(document_bytes(&cfg), bytes);
        }
    }

    #[test]
    fn entity_counts_follow_scale() {
        let cfg = XmarkConfig::with_scale(0.01);
        assert_eq!(cfg.persons(), 255);
        assert_eq!(cfg.open_auctions(), 120);
        assert_eq!(cfg.closed_auctions(), 30);
        assert_eq!(cfg.categories(), 10);
    }

    #[test]
    fn document_has_xmark_shape() {
        let doc = generate(&XmarkConfig::with_scale(0.002));
        let site = doc.root_element().unwrap();
        assert_eq!(doc.name(site), Some("site"));
        let top: Vec<_> = doc
            .children(site)
            .filter_map(|c| doc.name(c).map(str::to_string))
            .collect();
        assert_eq!(
            top,
            vec![
                "regions",
                "categories",
                "people",
                "open_auctions",
                "closed_auctions"
            ]
        );
    }

    #[test]
    fn queries_have_matches() {
        // The evaluation queries must find work at any scale.
        let xml = generate_string(&XmarkConfig::with_scale(0.004));
        let doc = vamana_xml::parse(&xml).unwrap();
        let mut persons = 0;
        let mut addresses = 0;
        let mut provinces = 0;
        let mut watches = 0;
        let mut itemrefs = 0;
        for n in doc.descendants(vamana_xml::Document::ROOT) {
            match doc.name(n) {
                Some("person") => persons += 1,
                Some("address") => addresses += 1,
                Some("province") => provinces += 1,
                Some("watch") => watches += 1,
                Some("itemref") => itemrefs += 1,
                _ => {}
            }
        }
        assert_eq!(persons, 102);
        assert!(
            addresses > persons / 3 && addresses < persons,
            "addresses={addresses}"
        );
        assert!(provinces > 0, "need provinces for Q5");
        assert!(watches > 0, "need watches for Q2");
        assert!(itemrefs > 0, "need itemrefs for Q4");
    }

    #[test]
    fn generated_xml_reparses() {
        let xml = generate_string(&XmarkConfig::with_scale(0.002));
        let doc = vamana_xml::parse(&xml).unwrap();
        assert!(doc.len() > 100);
    }

    #[test]
    fn size_grows_roughly_linearly() {
        let small = generate_string(&XmarkConfig::with_scale(0.002)).len();
        let large = generate_string(&XmarkConfig::with_scale(0.008)).len();
        let ratio = large as f64 / small as f64;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio={ratio}");
    }
}
