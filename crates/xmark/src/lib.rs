//! # vamana-xmark
//!
//! A deterministic generator for XMark-style `auction.xml` documents
//! (Schmidt et al., VLDB 2002). The original `xmlgen` C program is not
//! available offline, so this crate synthesizes documents with the same
//! element vocabulary, nesting and entity proportions — everything the
//! VAMANA evaluation queries (Q1–Q5) exercise:
//!
//! * `site / people / person` with `name`, `emailaddress`, optional
//!   `address` (with `city`, `country`, and sometimes `province`),
//!   optional `watches / watch`;
//! * `site / regions / <continent> / item` with nested `description`;
//! * `site / open_auctions / open_auction` with `itemref`, `bidder`,
//!   `current`, and `site / closed_auctions / closed_auction` with
//!   `itemref` followed by `price` (the sibling pair Q4 navigates);
//! * `site / categories / category`.
//!
//! Documents are seeded and fully deterministic: the same
//! [`XmarkConfig`] always yields byte-identical output.
//!
//! ```
//! use vamana_xmark::{XmarkConfig, generate_string};
//!
//! let xml = generate_string(&XmarkConfig::with_scale(0.001));
//! assert!(xml.starts_with("<site>"));
//! ```

pub mod names;
pub mod scale;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vamana_xml::{Document, NodeId};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// XMark scale factor: 1.0 ≈ a 100 MB document; the evaluation sweeps
    /// roughly 0.01 (1 MB) to 0.5 (50 MB).
    pub scale: f64,
    /// RNG seed; same seed + scale ⇒ identical document.
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            scale: 0.01,
            seed: 0x5EED,
        }
    }
}

impl XmarkConfig {
    /// Config at `scale` with the default seed.
    pub fn with_scale(scale: f64) -> Self {
        XmarkConfig {
            scale,
            ..Default::default()
        }
    }

    fn count(&self, base: u64) -> u64 {
        ((base as f64 * self.scale).round() as u64).max(1)
    }

    /// Number of persons at this scale (25 500 at scale 1, as in XMark).
    pub fn persons(&self) -> u64 {
        self.count(25_500)
    }

    /// Number of open auctions (12 000 at scale 1).
    pub fn open_auctions(&self) -> u64 {
        self.count(12_000)
    }

    /// Number of closed auctions (3 000 at scale 1).
    pub fn closed_auctions(&self) -> u64 {
        self.count(3_000)
    }

    /// Number of items across all regions (21 750 at scale 1).
    pub fn items(&self) -> u64 {
        self.count(21_750)
    }

    /// Number of categories (1 000 at scale 1).
    pub fn categories(&self) -> u64 {
        self.count(1_000)
    }
}

/// Generates an auction document as a parsed [`Document`] arena.
pub fn generate(config: &XmarkConfig) -> Document {
    Generator::new(config).run()
}

/// Generates an auction document as XML text.
pub fn generate_string(config: &XmarkConfig) -> String {
    let doc = generate(config);
    vamana_xml::write_document(&doc, &vamana_xml::WriteOptions::default())
}

struct Generator<'a> {
    config: &'a XmarkConfig,
    rng: StdRng,
    doc: Document,
    /// Whether a `<province>` has been emitted yet. The first one is
    /// always Vermont so Q5 (`//province[text()='Vermont']`) is
    /// non-empty at every scale and seed, as the benchmark relies on.
    province_emitted: bool,
}

impl<'a> Generator<'a> {
    fn new(config: &'a XmarkConfig) -> Self {
        Generator {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            doc: Document::new(),
            province_emitted: false,
        }
    }

    fn run(mut self) -> Document {
        let site = self.doc.push_element(Document::ROOT, "site");
        self.regions(site);
        self.categories(site);
        self.people(site);
        self.open_auctions(site);
        self.closed_auctions(site);
        self.doc
    }

    fn sentence(&mut self, words: usize) -> String {
        let mut s = String::new();
        for i in 0..words {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(names::pick(&mut self.rng, names::WORDS));
        }
        s
    }

    fn regions(&mut self, site: NodeId) {
        let regions = self.doc.push_element(site, "regions");
        let continents = [
            "africa",
            "asia",
            "australia",
            "europe",
            "namerica",
            "samerica",
        ];
        let per = (self.config.items() / continents.len() as u64).max(1);
        let mut item_id = 0u64;
        for continent in continents {
            let c = self.doc.push_element(regions, continent);
            for _ in 0..per {
                let item = self.doc.push_element(c, "item");
                self.doc
                    .push_attribute(item, "id", &format!("item{item_id}"));
                item_id += 1;
                let loc = self.doc.push_element(item, "location");
                let country = names::pick(&mut self.rng, names::COUNTRIES).to_string();
                self.doc.push_text(loc, &country);
                let name = self.doc.push_element(item, "name");
                let text = self.sentence(2);
                self.doc.push_text(name, &text);
                let desc = self.doc.push_element(item, "description");
                let text_el = self.doc.push_element(desc, "text");
                let body = self.sentence(12);
                self.doc.push_text(text_el, &body);
                let qty = self.doc.push_element(item, "quantity");
                let q = self.rng.gen_range(1..=5).to_string();
                self.doc.push_text(qty, &q);
                for _ in 0..self.rng.gen_range(1..=2) {
                    let inc = self.doc.push_element(item, "incategory");
                    let cat = format!(
                        "category{}",
                        self.rng.gen_range(0..self.config.categories())
                    );
                    self.doc.push_attribute(inc, "category", &cat);
                }
                if self.rng.gen_bool(0.25) {
                    let mailbox = self.doc.push_element(item, "mailbox");
                    for _ in 0..self.rng.gen_range(1..=2) {
                        let mail = self.doc.push_element(mailbox, "mail");
                        let from = self.doc.push_element(mail, "from");
                        let f = format!(
                            "{} {}",
                            names::pick(&mut self.rng, names::FIRST_NAMES),
                            names::pick(&mut self.rng, names::LAST_NAMES)
                        );
                        self.doc.push_text(from, &f);
                        let date = self.doc.push_element(mail, "date");
                        let d = format!(
                            "{:02}/{:02}/{}",
                            self.rng.gen_range(1..=12),
                            self.rng.gen_range(1..=28),
                            self.rng.gen_range(1998..=2004)
                        );
                        self.doc.push_text(date, &d);
                        let text = self.doc.push_element(mail, "text");
                        let body = self.sentence(10);
                        self.doc.push_text(text, &body);
                    }
                }
            }
        }
    }

    fn categories(&mut self, site: NodeId) {
        let categories = self.doc.push_element(site, "categories");
        for i in 0..self.config.categories() {
            let cat = self.doc.push_element(categories, "category");
            self.doc.push_attribute(cat, "id", &format!("category{i}"));
            let name = self.doc.push_element(cat, "name");
            let text = self.sentence(1);
            self.doc.push_text(name, &text);
            let desc = self.doc.push_element(cat, "description");
            let text_el = self.doc.push_element(desc, "text");
            let body = self.sentence(8);
            self.doc.push_text(text_el, &body);
        }
    }

    fn people(&mut self, site: NodeId) {
        let people = self.doc.push_element(site, "people");
        let n = self.config.persons();
        for i in 0..n {
            let person = self.doc.push_element(people, "person");
            self.doc.push_attribute(person, "id", &format!("person{i}"));
            let name = self.doc.push_element(person, "name");
            let first = names::pick(&mut self.rng, names::FIRST_NAMES);
            let last = names::pick(&mut self.rng, names::LAST_NAMES);
            let full = format!("{first} {last}");
            self.doc.push_text(name, &full);
            let email = self.doc.push_element(person, "emailaddress");
            let addr = format!("{last}@{}.com", names::pick(&mut self.rng, names::DOMAINS));
            self.doc.push_text(email, &addr);
            if self.rng.gen_bool(0.3) {
                let phone = self.doc.push_element(person, "phone");
                let num = format!(
                    "+{} ({}) {}",
                    self.rng.gen_range(1..99),
                    self.rng.gen_range(100..999),
                    self.rng.gen_range(1_000_000..9_999_999)
                );
                self.doc.push_text(phone, &num);
            }
            // Roughly half the persons carry an address — the paper's
            // Fig 6 counts 2550 persons vs 1256 addresses.
            if self.rng.gen_bool(0.49) {
                let address = self.doc.push_element(person, "address");
                let street = self.doc.push_element(address, "street");
                let st = format!(
                    "{} {} St",
                    self.rng.gen_range(1..99),
                    names::pick(&mut self.rng, names::LAST_NAMES)
                );
                self.doc.push_text(street, &st);
                let city = self.doc.push_element(address, "city");
                let ci = names::pick(&mut self.rng, names::CITIES).to_string();
                self.doc.push_text(city, &ci);
                let country = self.doc.push_element(address, "country");
                let co = names::pick(&mut self.rng, names::COUNTRIES).to_string();
                self.doc.push_text(country, &co);
                if co == "United States" {
                    let province = self.doc.push_element(address, "province");
                    let pr = if self.province_emitted {
                        names::pick(&mut self.rng, names::PROVINCES).to_string()
                    } else {
                        self.province_emitted = true;
                        names::PROVINCES[0].to_string()
                    };
                    self.doc.push_text(province, &pr);
                }
                let zip = self.doc.push_element(address, "zipcode");
                let z = self.rng.gen_range(1..99_999).to_string();
                self.doc.push_text(zip, &z);
            }
            if self.rng.gen_bool(0.5) {
                let profile = self.doc.push_element(person, "profile");
                let income = format!("{:.2}", self.rng.gen_range(9_000.0..100_000.0));
                self.doc.push_attribute(profile, "income", &income);
                for _ in 0..self.rng.gen_range(0..=3) {
                    let interest = self.doc.push_element(profile, "interest");
                    let cat = format!(
                        "category{}",
                        self.rng.gen_range(0..self.config.categories())
                    );
                    self.doc.push_attribute(interest, "category", &cat);
                }
                if self.rng.gen_bool(0.6) {
                    let edu = self.doc.push_element(profile, "education");
                    let level = names::pick(
                        &mut self.rng,
                        &["High School", "College", "Graduate School", "Other"],
                    )
                    .to_string();
                    self.doc.push_text(edu, &level);
                }
                let age = self.doc.push_element(profile, "age");
                let a = self.rng.gen_range(18..80).to_string();
                self.doc.push_text(age, &a);
            }
            if self.rng.gen_bool(0.3) {
                let cc = self.doc.push_element(person, "creditcard");
                let num = format!(
                    "{} {} {} {}",
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999)
                );
                self.doc.push_text(cc, &num);
            }
            if self.rng.gen_bool(0.4) {
                let watches = self.doc.push_element(person, "watches");
                for _ in 0..self.rng.gen_range(1..=4) {
                    let watch = self.doc.push_element(watches, "watch");
                    let oa = format!(
                        "open_auction{}",
                        self.rng.gen_range(0..self.config.open_auctions().max(1))
                    );
                    self.doc.push_attribute(watch, "open_auction", &oa);
                }
            }
        }
    }

    fn open_auctions(&mut self, site: NodeId) {
        let auctions = self.doc.push_element(site, "open_auctions");
        let items = self.config.items();
        let persons = self.config.persons();
        for i in 0..self.config.open_auctions() {
            let a = self.doc.push_element(auctions, "open_auction");
            self.doc
                .push_attribute(a, "id", &format!("open_auction{i}"));
            let initial = self.doc.push_element(a, "initial");
            let v = format!("{:.2}", self.rng.gen_range(1.0..200.0));
            self.doc.push_text(initial, &v);
            for _ in 0..self.rng.gen_range(0..=3) {
                let bidder = self.doc.push_element(a, "bidder");
                let pref = self.doc.push_element(bidder, "personref");
                let p = format!("person{}", self.rng.gen_range(0..persons));
                self.doc.push_attribute(pref, "person", &p);
                let incr = self.doc.push_element(bidder, "increase");
                let inc = format!("{:.2}", self.rng.gen_range(1.0..20.0));
                self.doc.push_text(incr, &inc);
            }
            let current = self.doc.push_element(a, "current");
            let cur = format!("{:.2}", self.rng.gen_range(1.0..400.0));
            self.doc.push_text(current, &cur);
            let itemref = self.doc.push_element(a, "itemref");
            let it = format!("item{}", self.rng.gen_range(0..items));
            self.doc.push_attribute(itemref, "item", &it);
            let seller = self.doc.push_element(a, "seller");
            let s = format!("person{}", self.rng.gen_range(0..persons));
            self.doc.push_attribute(seller, "person", &s);
            let quantity = self.doc.push_element(a, "quantity");
            let q = self.rng.gen_range(1..=5).to_string();
            self.doc.push_text(quantity, &q);
        }
    }

    fn closed_auctions(&mut self, site: NodeId) {
        let auctions = self.doc.push_element(site, "closed_auctions");
        let items = self.config.items();
        let persons = self.config.persons();
        for _ in 0..self.config.closed_auctions() {
            let a = self.doc.push_element(auctions, "closed_auction");
            let seller = self.doc.push_element(a, "seller");
            let s = format!("person{}", self.rng.gen_range(0..persons));
            self.doc.push_attribute(seller, "person", &s);
            let buyer = self.doc.push_element(a, "buyer");
            let b = format!("person{}", self.rng.gen_range(0..persons));
            self.doc.push_attribute(buyer, "person", &b);
            // itemref directly followed by price: the sibling pair that
            // Q4 (`//itemref/following-sibling::price/parent::*`) walks.
            let itemref = self.doc.push_element(a, "itemref");
            let it = format!("item{}", self.rng.gen_range(0..items));
            self.doc.push_attribute(itemref, "item", &it);
            let price = self.doc.push_element(a, "price");
            let p = format!("{:.2}", self.rng.gen_range(1.0..500.0));
            self.doc.push_text(price, &p);
            let date = self.doc.push_element(a, "date");
            let d = format!(
                "{:02}/{:02}/{}",
                self.rng.gen_range(1..=12),
                self.rng.gen_range(1..=28),
                self.rng.gen_range(1998..=2004)
            );
            self.doc.push_text(date, &d);
            let quantity = self.doc.push_element(a, "quantity");
            let q = self.rng.gen_range(1..=5).to_string();
            self.doc.push_text(quantity, &q);
            if self.rng.gen_bool(0.3) {
                let annotation = self.doc.push_element(a, "annotation");
                let desc = self.doc.push_element(annotation, "description");
                let text = self.doc.push_element(desc, "text");
                let body = self.sentence(8);
                self.doc.push_text(text, &body);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_string(&XmarkConfig::with_scale(0.002));
        let b = generate_string(&XmarkConfig::with_scale(0.002));
        assert_eq!(a, b);
        let c = generate_string(&XmarkConfig {
            scale: 0.002,
            seed: 99,
        });
        assert_ne!(a, c);
    }

    #[test]
    fn entity_counts_follow_scale() {
        let cfg = XmarkConfig::with_scale(0.01);
        assert_eq!(cfg.persons(), 255);
        assert_eq!(cfg.open_auctions(), 120);
        assert_eq!(cfg.closed_auctions(), 30);
        assert_eq!(cfg.categories(), 10);
    }

    #[test]
    fn document_has_xmark_shape() {
        let doc = generate(&XmarkConfig::with_scale(0.002));
        let site = doc.root_element().unwrap();
        assert_eq!(doc.name(site), Some("site"));
        let top: Vec<_> = doc
            .children(site)
            .filter_map(|c| doc.name(c).map(str::to_string))
            .collect();
        assert_eq!(
            top,
            vec![
                "regions",
                "categories",
                "people",
                "open_auctions",
                "closed_auctions"
            ]
        );
    }

    #[test]
    fn queries_have_matches() {
        // The evaluation queries must find work at any scale.
        let xml = generate_string(&XmarkConfig::with_scale(0.004));
        let doc = vamana_xml::parse(&xml).unwrap();
        let mut persons = 0;
        let mut addresses = 0;
        let mut provinces = 0;
        let mut watches = 0;
        let mut itemrefs = 0;
        for n in doc.descendants(vamana_xml::Document::ROOT) {
            match doc.name(n) {
                Some("person") => persons += 1,
                Some("address") => addresses += 1,
                Some("province") => provinces += 1,
                Some("watch") => watches += 1,
                Some("itemref") => itemrefs += 1,
                _ => {}
            }
        }
        assert_eq!(persons, 102);
        assert!(
            addresses > persons / 3 && addresses < persons,
            "addresses={addresses}"
        );
        assert!(provinces > 0, "need provinces for Q5");
        assert!(watches > 0, "need watches for Q2");
        assert!(itemrefs > 0, "need itemrefs for Q4");
    }

    #[test]
    fn generated_xml_reparses() {
        let xml = generate_string(&XmarkConfig::with_scale(0.002));
        let doc = vamana_xml::parse(&xml).unwrap();
        assert!(doc.len() > 100);
    }

    #[test]
    fn size_grows_roughly_linearly() {
        let small = generate_string(&XmarkConfig::with_scale(0.002)).len();
        let large = generate_string(&XmarkConfig::with_scale(0.008)).len();
        let ratio = large as f64 / small as f64;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio={ratio}");
    }
}
