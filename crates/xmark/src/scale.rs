//! Mapping between target document sizes and XMark scale factors.
//!
//! The evaluation sweeps document *megabytes* (Figs 12–16 plot execution
//! time against document size), so the harness asks for "a 10 MB
//! document". Generation cost is linear in scale, so we calibrate once
//! with a small probe and extrapolate.

use crate::{generate_string, XmarkConfig};

/// Bytes produced per unit of scale, measured with a small probe
/// document. Cached per process after the first call.
pub fn bytes_per_scale() -> f64 {
    use std::sync::OnceLock;
    static CACHE: OnceLock<f64> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let probe_scale = 0.005;
        let bytes = generate_string(&XmarkConfig::with_scale(probe_scale)).len() as f64;
        bytes / probe_scale
    })
}

/// Scale factor that yields approximately `megabytes` of XML text.
pub fn scale_for_megabytes(megabytes: f64) -> f64 {
    (megabytes * 1_048_576.0 / bytes_per_scale()).max(1e-4)
}

/// Config for a document of approximately `megabytes` MB.
pub fn config_for_megabytes(megabytes: f64) -> XmarkConfig {
    XmarkConfig::with_scale(scale_for_megabytes(megabytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_target_within_tolerance() {
        let cfg = config_for_megabytes(1.0);
        let bytes = generate_string(&cfg).len() as f64;
        let target = 1_048_576.0;
        let err = (bytes - target).abs() / target;
        assert!(err < 0.25, "1MB target missed by {:.0}%", err * 100.0);
    }

    #[test]
    fn scale_grows_with_size() {
        assert!(scale_for_megabytes(10.0) > scale_for_megabytes(1.0));
        assert!(scale_for_megabytes(0.0) >= 1e-4);
    }
}
