//! Replication end-to-end tests: a real primary server, real follower
//! processes (the `vamana-replica` binary) and in-process replicas,
//! covering the acceptance criteria of the replication issue —
//! `kill -9` a follower mid-stream, restart it, and watch it resume
//! from its applied LSN and converge to a byte-identical store; a
//! checkpoint while a follower is disconnected must not strand it; and
//! multiple followers converge after a write burst.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use vamana_core::Engine;
use vamana_mass::{FsyncPolicy, MassStore};
use vamana_replica::{Replica, ReplicaConfig, ReplicaHandle};
use vamana_server::testkit::{lag_value, stat_value, Client};
use vamana_server::{Server, ServerConfig, ServerHandle};

const DEADLINE: Duration = Duration::from_secs(20);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vamana-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A primary with one small document loaded before the server binds
/// (so a fresh follower must take the snapshot path).
fn spawn_primary(path: &Path, config: ServerConfig) -> ServerHandle {
    let mut store = MassStore::create_durable(path, 512, FsyncPolicy::Never).unwrap();
    store
        .load_xml(
            "auction",
            "<site><people><person><name>Ada</name></person></people></site>",
        )
        .unwrap();
    Server::bind("127.0.0.1:0", Engine::new(store), config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn start_replica(primary: SocketAddr, data: &Path) -> ReplicaHandle {
    Replica::start(ReplicaConfig {
        primary: primary.to_string(),
        data: data.to_path_buf(),
        fsync: FsyncPolicy::Never,
        ..ReplicaConfig::default()
    })
    .expect("start replica")
}

fn primary_last_lsn(client: &mut Client) -> u64 {
    lag_value(&client.round_trip("LAG"), "last_lsn")
}

/// Polls the follower's `LAG` until `applied_lsn` reaches `target`.
fn wait_applied(client: &mut Client, target: u64) {
    let until = Instant::now() + DEADLINE;
    loop {
        let lag = client.round_trip("LAG");
        if lag_value(&lag, "applied_lsn") >= target {
            return;
        }
        assert!(
            Instant::now() < until,
            "no convergence to {target}: {lag:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Row-level fingerprint over the wire: full scans plus counts, taken
/// through the same protocol both roles serve.
fn wire_fingerprint(client: &mut Client) -> Vec<String> {
    let mut out = Vec::new();
    client.round_trip("LIMIT 0");
    for q in [
        "QUERY //person/name",
        "QUERY //people",
        "EVAL count(//person)",
        "EVAL count(//name)",
    ] {
        let mut lines = client.round_trip(q);
        let ok = lines.pop().unwrap();
        assert!(!ok.starts_with("ERR"), "{q}: {ok}");
        // Keep the stable prefix of the OK line (cardinality), drop the
        // per-run plan/latency details.
        let stable = if ok.starts_with("OK scalar") {
            "OK scalar".to_string()
        } else {
            ok.split(" plan=").next().unwrap().to_string()
        };
        lines.push(stable);
        out.extend(lines);
    }
    out
}

/// Store-level fingerprint: every document exported back to XML, in
/// catalog order, plus the replicated LSN. Byte-identical exports at
/// equal LSN are the strongest convergence check we have.
fn store_fingerprint(path: &Path) -> (u64, Vec<(String, String)>) {
    let store = MassStore::open_durable(path, 512, FsyncPolicy::Never).unwrap();
    let docs = store
        .documents()
        .iter()
        .map(|d| {
            let xml = vamana_mass::export::export_subtree_xml(&store, &d.doc_key).unwrap();
            (d.name.to_string(), xml)
        })
        .collect();
    (store.replicated_lsn(), docs)
}

#[test]
fn follower_streams_commits_serves_reads_and_redirects_writes() {
    let dir = temp_dir("stream");
    let handle = spawn_primary(&dir.join("primary.mass"), ServerConfig::default());
    let mut primary = Client::connect(&handle);

    let replica = start_replica(handle.addr(), &dir.join("replica.mass"));
    let mut follower = Client::connect_addr(replica.addr());

    // Fresh follower: the load predates the ring, so it snapshots.
    wait_applied(&mut follower, primary_last_lsn(&mut primary));
    let stats = follower.round_trip("STATS");
    assert_eq!(stat_value(&stats, "repl_snapshots"), 1, "{stats:?}");

    // Prime the follower's plan cache, then write on the primary: the
    // replayed commit must bump the document generation and invalidate.
    let before = follower.round_trip("QUERY //person/name");
    assert!(
        before.last().unwrap().starts_with("OK 1 row(s)"),
        "{before:?}"
    );
    for i in 0..10 {
        let reply = primary.round_trip(&format!(
            "INSERT auction //people <person><name>w{i}</name></person>"
        ));
        assert!(reply[0].starts_with("OK update"), "{reply:?}");
    }
    // A document loaded mid-stream replicates as a logical record too.
    let reply = primary.round_trip("LOADXML tiny <r><name>late</name></r>");
    assert!(reply[0].starts_with("OK loaded"), "{reply:?}");

    wait_applied(&mut follower, primary_last_lsn(&mut primary));
    assert_eq!(
        wire_fingerprint(&mut follower),
        wire_fingerprint(&mut primary),
        "follower must serve the primary's rows"
    );
    let after = follower.round_trip("QUERY //person/name");
    assert!(
        after.last().unwrap().starts_with("OK 11 row(s)"),
        "{after:?}"
    );

    // Writes are refused with a redirect naming the primary.
    let err = follower.round_trip("INSERT auction //people <person/>");
    assert!(err[0].starts_with("ERR readonly replica"), "{err:?}");
    assert!(err[0].contains(&handle.addr().to_string()), "{err:?}");
    for verb in ["LOADXML d <r/>", "DELETE 0 //person", "CHECKPOINT"] {
        let err = follower.round_trip(verb);
        assert!(err[0].starts_with("ERR readonly replica"), "{err:?}");
    }

    // LAG reports both sides of the pair.
    let lag = follower.round_trip("LAG");
    assert!(lag.contains(&"LAG role replica".to_string()), "{lag:?}");
    assert_eq!(lag_value(&lag, "behind"), 0, "{lag:?}");
    assert_eq!(lag_value(&lag, "connected"), 1, "{lag:?}");
    let lag = primary.round_trip("LAG");
    assert!(lag.contains(&"LAG role primary".to_string()), "{lag:?}");
    assert_eq!(lag_value(&lag, "feeds"), 1, "{lag:?}");

    replica.stop();
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

struct FollowerProc {
    child: Child,
    addr: SocketAddr,
}

/// Spawns the real `vamana-replica` binary and waits for its port file.
fn spawn_follower_process(primary: SocketAddr, data: &Path) -> FollowerProc {
    spawn_follower_with_env(primary, data, &[])
}

/// Like [`spawn_follower_process`], with extra environment variables for
/// the child (e.g. `VAMANA_VIEWS=1` to enable the semantic cache).
fn spawn_follower_with_env(primary: SocketAddr, data: &Path, env: &[(&str, &str)]) -> FollowerProc {
    let port_file = data.with_extension("port");
    let _ = std::fs::remove_file(&port_file);
    let mut command = Command::new(env!("CARGO_BIN_EXE_vamana-replica"));
    command
        .args([
            "--primary",
            &primary.to_string(),
            "--listen",
            "127.0.0.1:0",
            "--data",
            data.to_str().unwrap(),
            "--fsync",
            "never",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (key, value) in env {
        command.env(key, value);
    }
    let child = command.spawn().expect("spawn vamana-replica");
    let until = Instant::now() + DEADLINE;
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(Instant::now() < until, "follower never wrote {port_file:?}");
        std::thread::sleep(Duration::from_millis(20));
    };
    FollowerProc { child, addr }
}

#[test]
fn kill_nine_mid_stream_then_restart_resumes_from_applied_lsn() {
    let dir = temp_dir("kill9");
    let primary_path = dir.join("primary.mass");
    let handle = spawn_primary(&primary_path, ServerConfig::default());
    let mut primary = Client::connect(&handle);
    let data = dir.join("follower.mass");

    // Phase 1: follower sees the snapshot plus a first burst.
    let mut proc1 = spawn_follower_process(handle.addr(), &data);
    for i in 0..30 {
        primary.round_trip(&format!(
            "INSERT auction //people <person><name>a{i}</name></person>"
        ));
    }
    {
        let mut follower = Client::connect_retry(proc1.addr, DEADLINE);
        wait_applied(&mut follower, primary_last_lsn(&mut primary));
    }

    // Phase 2: keep writing and kill -9 the follower mid-stream.
    for i in 0..20 {
        primary.round_trip(&format!(
            "INSERT auction //people <person><name>b{i}</name></person>"
        ));
    }
    proc1.child.kill().expect("kill -9");
    proc1.child.wait().expect("reap");
    for i in 0..20 {
        primary.round_trip(&format!(
            "INSERT auction //people <person><name>c{i}</name></person>"
        ));
    }

    // Phase 3: restart on the same data directory. The local WAL
    // recovered its applied LSN, so the feed resumes — no snapshot.
    let mut proc2 = spawn_follower_process(handle.addr(), &data);
    let mut follower = Client::connect_retry(proc2.addr, DEADLINE);
    wait_applied(&mut follower, primary_last_lsn(&mut primary));
    let stats = follower.round_trip("STATS");
    assert_eq!(
        stat_value(&stats, "repl_snapshots"),
        0,
        "a restart with intact data must resume, not re-snapshot: {stats:?}"
    );
    assert_eq!(
        wire_fingerprint(&mut follower),
        wire_fingerprint(&mut primary)
    );
    let total = follower.round_trip("EVAL count(//person)");
    assert_eq!(total[0], "VAL 71", "{total:?}"); // 1 seed + 30 + 20 + 20

    // Store-level fingerprint at equal LSN: kill both processes and
    // compare the exported XML of every document byte for byte.
    proc2.child.kill().expect("kill");
    proc2.child.wait().expect("reap");
    handle.stop();
    let (primary_lsn, primary_docs) = store_fingerprint(&primary_path);
    let (follower_lsn, follower_docs) = store_fingerprint(&data);
    assert_eq!(primary_lsn, follower_lsn, "stores at different LSNs");
    assert_eq!(primary_docs, follower_docs, "exports diverge at equal LSN");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_while_disconnected_does_not_strand_the_follower() {
    let dir = temp_dir("ckpt");
    // A tiny retention ring: any disconnected follower falls behind the
    // floor almost immediately and must be caught by a snapshot.
    let handle = spawn_primary(
        &dir.join("primary.mass"),
        ServerConfig {
            repl_retain: 4,
            ..ServerConfig::default()
        },
    );
    let mut primary = Client::connect(&handle);
    let data = dir.join("replica.mass");

    // Follower connects, converges, disconnects.
    let replica = start_replica(handle.addr(), &data);
    {
        let mut follower = Client::connect_addr(replica.addr());
        wait_applied(&mut follower, primary_last_lsn(&mut primary));
    }
    replica.stop();

    // While it is away: a burst far past the 4-frame ring, and a
    // checkpoint that truncates the primary's own WAL.
    for i in 0..25 {
        primary.round_trip(&format!(
            "INSERT auction //people <person><name>gap{i}</name></person>"
        ));
    }
    let reply = primary.round_trip("CHECKPOINT");
    assert!(reply[0].starts_with("OK checkpoint"), "{reply:?}");

    // The returning follower's resume LSN is below the ring floor; the
    // primary must ship a snapshot rather than an LSN gap.
    let replica = start_replica(handle.addr(), &data);
    let mut follower = Client::connect_addr(replica.addr());
    wait_applied(&mut follower, primary_last_lsn(&mut primary));
    let stats = follower.round_trip("STATS");
    assert_eq!(stat_value(&stats, "repl_snapshots"), 1, "{stats:?}");
    assert_eq!(
        wire_fingerprint(&mut follower),
        wire_fingerprint(&mut primary)
    );
    // And it keeps streaming after the snapshot: one more write lands.
    primary.round_trip("INSERT auction //people <person><name>post</name></person>");
    wait_applied(&mut follower, primary_last_lsn(&mut primary));
    let rows = follower.round_trip("QUERY //person[name='post']");
    assert!(rows.last().unwrap().starts_with("OK 1 row(s)"), "{rows:?}");

    replica.stop();
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replayed_writes_invalidate_follower_views() {
    let dir = temp_dir("views");
    let handle = spawn_primary(&dir.join("primary.mass"), ServerConfig::default());
    let mut primary = Client::connect(&handle);
    let data = dir.join("follower.mass");

    // A real follower process with the semantic cache enabled.
    let mut proc1 = spawn_follower_with_env(handle.addr(), &data, &[("VAMANA_VIEWS", "1")]);
    let mut follower = Client::connect_retry(proc1.addr, DEADLINE);
    wait_applied(&mut follower, primary_last_lsn(&mut primary));
    follower.round_trip("LIMIT 0");

    // Two identical queries cross the admission threshold.
    let before = follower.round_trip("QUERY //person/name");
    assert!(
        before.last().unwrap().starts_with("OK 1 row(s)"),
        "{before:?}"
    );
    follower.round_trip("QUERY //person/name");
    let stats = follower.round_trip("STATS");
    assert!(
        stat_value(&stats, "view_views") >= 1,
        "follower never materialized a view: {stats:?}"
    );

    // A primary write replays on the follower through the WAL feed (no
    // engine-level update call there); the generation bump must still
    // drop the stale view before it can serve the next query.
    let reply = primary.round_trip("INSERT auction //people <person><name>fresh</name></person>");
    assert!(reply[0].starts_with("OK update"), "{reply:?}");
    wait_applied(&mut follower, primary_last_lsn(&mut primary));

    let after = follower.round_trip("QUERY //person/name");
    assert!(
        after.last().unwrap().starts_with("OK 2 row(s)"),
        "stale view served after replicated write: {after:?}"
    );
    assert!(
        after.iter().any(|l| l.contains("fresh")),
        "replicated insert missing from follower result: {after:?}"
    );
    let stats = follower.round_trip("STATS");
    assert!(
        stat_value(&stats, "view_evictions") >= 1,
        "stale view was never evicted: {stats:?}"
    );

    proc1.child.kill().expect("kill");
    proc1.child.wait().expect("reap");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compressed_follower_converges_with_v1_primary() {
    let dir = temp_dir("v2f");
    let primary_path = dir.join("primary.mass");
    let handle = spawn_primary(&primary_path, ServerConfig::default());
    let mut primary = Client::connect(&handle);
    let data = dir.join("follower.mass");

    // A real follower process storing its replica in the compressed
    // (v2) page format, fed by a v1 primary: replication is logical, so
    // formats may differ per node.
    let mut proc1 = spawn_follower_with_env(handle.addr(), &data, &[("VAMANA_FORMAT", "v2")]);
    {
        let mut follower = Client::connect_retry(proc1.addr, DEADLINE);
        wait_applied(&mut follower, primary_last_lsn(&mut primary));
    }

    // A write burst with repetitive values (dictionary-friendly on a
    // bulk load, plain inline values through the WAL replay path) plus
    // a mid-stream document load.
    for i in 0..40 {
        primary.round_trip(&format!(
            "INSERT auction //people <person><name>v{i}</name><city>Duluth</city></person>"
        ));
    }
    let reply = primary.round_trip("LOADXML extra <r><name>late</name></r>");
    assert!(reply[0].starts_with("OK loaded"), "{reply:?}");
    primary.round_trip("DELETE auction //person[name='v7']");

    let target = primary_last_lsn(&mut primary);
    let reference = wire_fingerprint(&mut primary);
    {
        let mut follower = Client::connect_retry(proc1.addr, DEADLINE);
        wait_applied(&mut follower, target);
        assert_eq!(
            wire_fingerprint(&mut follower),
            reference,
            "compressed follower must serve the primary's rows"
        );
    }

    // Store-level: byte-identical exports at equal LSN, and the
    // follower really holds compressed pages.
    proc1.child.kill().expect("kill");
    proc1.child.wait().expect("reap");
    handle.stop();
    let (primary_lsn, primary_docs) = store_fingerprint(&primary_path);
    let (follower_lsn, follower_docs) = store_fingerprint(&data);
    assert_eq!(primary_lsn, follower_lsn, "stores at different LSNs");
    assert_eq!(primary_docs, follower_docs, "exports diverge at equal LSN");
    let store = MassStore::open_durable(&data, 512, FsyncPolicy::Never).unwrap();
    assert_eq!(store.format(), vamana_mass::StoreFormat::V2);
    let stats = store.stats();
    assert!(
        stats.compressed_pages > 0,
        "follower never wrote v2 pages: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_followers_converge_after_a_write_burst() {
    let dir = temp_dir("pair");
    let handle = spawn_primary(&dir.join("primary.mass"), ServerConfig::default());
    let mut primary = Client::connect(&handle);

    let r1 = start_replica(handle.addr(), &dir.join("r1.mass"));
    let r2 = start_replica(handle.addr(), &dir.join("r2.mass"));

    for i in 0..40 {
        primary.round_trip(&format!(
            "INSERT auction //people <person><name>burst{i}</name></person>"
        ));
    }
    let target = primary_last_lsn(&mut primary);
    let reference = wire_fingerprint(&mut primary);
    for replica in [&r1, &r2] {
        let mut follower = Client::connect_addr(replica.addr());
        wait_applied(&mut follower, target);
        assert_eq!(wire_fingerprint(&mut follower), reference);
    }
    let lag = primary.round_trip("LAG");
    assert_eq!(lag_value(&lag, "feeds"), 2, "{lag:?}");

    r1.stop();
    r2.stop();
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
