//! # vamana-replica
//!
//! A log-shipping read replica for the VAMANA server. The replica
//! connects to a primary's `REPLICATE <from_lsn>` feed, persists every
//! received WAL frame to its *own* write-ahead log under the primary's
//! LSNs, replays committed batches into a local page file through the
//! same recovery path a crash would use, and serves read-only
//! `QUERY`/`EXPLAIN`/`ANALYZE`/`LAG` traffic through a normal
//! [`vamana_server::Server`] marked with [`ReplicaRole`].
//!
//! Durability composes: because frames land in the local WAL before they
//! touch pages, a `kill -9` mid-stream loses nothing committed — on
//! restart the store recovers to its last applied LSN and the sync loop
//! resumes the feed from exactly there. When the resume LSN has aged out
//! of the primary's retention ring, the primary ships a snapshot
//! (compact per-document XML in load order); the deterministic FLEX key
//! assignment of the bulk loader makes the rebuilt store key-identical
//! to the primary's, after which the log is re-based to the snapshot LSN
//! and streaming continues.
//!
//! Reconnects use exponential backoff between [`ReplicaConfig::backoff_base`]
//! and [`ReplicaConfig::backoff_max`]; liveness comes from the primary's
//! heartbeat frames (empty payload, carrying its last committed LSN)
//! against [`ReplicaConfig::read_timeout`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use vamana_core::{Engine, SharedEngine};
use vamana_mass::{verify_frame, FsyncPolicy, MassStore, WalRecord, FRAME_HEADER_LEN};
use vamana_server::{ReplicaRole, ReplicaStatus, Server, ServerConfig, ServerHandle};

/// Everything a replica needs to start.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Primary address, e.g. `127.0.0.1:4050`.
    pub primary: String,
    /// Address the replica's read-only server binds (port 0 = ephemeral).
    pub listen: String,
    /// Path of the replica's page file (`<data>.wal` sidecar appears
    /// next to it). Reopened if it exists, created otherwise.
    pub data: PathBuf,
    /// Buffer-pool capacity of the local store.
    pub capacity: usize,
    /// Fsync policy of the local WAL.
    pub fsync: FsyncPolicy,
    /// First reconnect delay.
    pub backoff_base: Duration,
    /// Reconnect delay cap.
    pub backoff_max: Duration,
    /// Feed read timeout: with primary heartbeats every ~200ms, tripping
    /// this means the primary is gone and the sync loop reconnects.
    pub read_timeout: Duration,
    /// Local WAL depth (records) that triggers a checkpoint, keeping
    /// restart replay short.
    pub checkpoint_depth: u64,
    /// Base configuration of the read-only server (the replica role is
    /// filled in by [`Replica::start`]).
    pub server: ServerConfig,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            primary: "127.0.0.1:4050".into(),
            listen: "127.0.0.1:0".into(),
            data: PathBuf::from("replica.mass"),
            capacity: 4096,
            fsync: FsyncPolicy::EveryN(64),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            read_timeout: Duration::from_secs(3),
            checkpoint_depth: 4096,
            server: ServerConfig::default(),
        }
    }
}

/// A running replica: sync loop plus read-only server.
pub struct ReplicaHandle {
    server: Option<ServerHandle>,
    status: Arc<ReplicaStatus>,
    stop: Arc<AtomicBool>,
    conn: Arc<Mutex<Option<TcpStream>>>,
    sync_thread: Option<std::thread::JoinHandle<()>>,
    addr: SocketAddr,
}

impl ReplicaHandle {
    /// Address of the read-only query server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live sync counters (shared with the server's `LAG`/`STATS`).
    pub fn status(&self) -> &Arc<ReplicaStatus> {
        &self.status
    }

    /// LSN of the last commit applied locally.
    pub fn applied_lsn(&self) -> u64 {
        self.status.applied_lsn.load(Ordering::Relaxed)
    }

    /// Stops the sync loop and the server, joining both.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(conn) = self.conn.lock().unwrap_or_else(|p| p.into_inner()).take() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.sync_thread.take() {
            let _ = t.join();
        }
        if let Some(s) = self.server.take() {
            s.stop();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

struct SyncCtx {
    config: ReplicaConfig,
    engine: Arc<SharedEngine>,
    /// The server's shared state — the sync loop clears its plan cache
    /// after snapshot installs.
    server_shared: Arc<vamana_server::Shared>,
    status: Arc<ReplicaStatus>,
    stop: Arc<AtomicBool>,
    conn: Arc<Mutex<Option<TcpStream>>>,
}

/// The replica runtime.
pub struct Replica;

impl Replica {
    /// Opens (or creates) the local store, binds the read-only server,
    /// and spawns the sync loop.
    pub fn start(config: ReplicaConfig) -> std::io::Result<ReplicaHandle> {
        let store = if config.data.exists() {
            // Existing stores keep the format recorded in their catalog.
            MassStore::open_durable(&config.data, config.capacity, config.fsync)
        } else {
            MassStore::create_durable(&config.data, config.capacity, config.fsync).and_then(
                |mut s| {
                    s.set_format(vamana_mass::StoreFormat::from_env())?;
                    Ok(s)
                },
            )
        }
        .map_err(|e| std::io::Error::other(format!("open replica store: {e}")))?;
        let status = Arc::new(ReplicaStatus::default());
        status
            .applied_lsn
            .store(store.replicated_lsn(), Ordering::Relaxed);
        status
            .received_lsn
            .store(store.replicated_lsn(), Ordering::Relaxed);

        let engine = Arc::new(SharedEngine::new(Engine::new(store)));
        let mut server_config = config.server.clone();
        server_config.replica = Some(ReplicaRole {
            primary: config.primary.clone(),
            status: Arc::clone(&status),
        });
        let server = Server::bind_shared(&config.listen, Arc::clone(&engine), server_config)?;
        let server_shared = Arc::clone(server.shared());
        let handle = server.spawn()?;
        let addr = handle.addr();

        let stop = Arc::new(AtomicBool::new(false));
        let conn = Arc::new(Mutex::new(None));
        let ctx = SyncCtx {
            config,
            engine,
            server_shared,
            status: Arc::clone(&status),
            stop: Arc::clone(&stop),
            conn: Arc::clone(&conn),
        };
        let sync_thread = std::thread::Builder::new()
            .name("vamana-replica-sync".into())
            .spawn(move || sync_loop(ctx))?;

        Ok(ReplicaHandle {
            server: Some(handle),
            status,
            stop,
            conn,
            sync_thread: Some(sync_thread),
            addr,
        })
    }
}

/// Connect → catch up → stream, with exponential backoff on any error.
fn sync_loop(ctx: SyncCtx) {
    let mut backoff = ctx.config.backoff_base;
    while !ctx.stop.load(Ordering::SeqCst) {
        match follow_once(&ctx) {
            Ok(()) => break, // only a stop request exits cleanly
            Err(_) if ctx.stop.load(Ordering::SeqCst) => break,
            Err(_) => {
                ctx.status.connected.store(false, Ordering::Relaxed);
                ctx.status.reconnects.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ctx.config.backoff_max);
            }
        }
    }
    ctx.status.connected.store(false, Ordering::Relaxed);
}

fn proto_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

/// One feed session: handshake (resuming from the locally applied LSN),
/// optional snapshot install, then the frame loop until error or stop.
fn follow_once(ctx: &SyncCtx) -> std::io::Result<()> {
    let applied = ctx.engine.read().store().replicated_lsn();
    let stream = TcpStream::connect(&ctx.config.primary)?;
    stream.set_read_timeout(Some(ctx.config.read_timeout))?;
    *ctx.conn.lock().unwrap_or_else(|p| p.into_inner()) = Some(stream.try_clone()?);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    writeln!(writer, "REPLICATE {applied}")?;
    writer.flush()?;

    let mut line = String::new();
    reader.read_line(&mut line)?;
    let line = line.trim_end();
    let Some(rest) = line.strip_prefix("OK replicate ") else {
        return Err(proto_err(format!("unexpected handshake: {line}")));
    };
    let mut snapshot = false;
    for token in rest.split(' ') {
        if let Some(v) = token.strip_prefix("snapshot=") {
            snapshot = v == "1";
        }
    }

    if snapshot {
        install_snapshot(ctx, &mut reader)?;
    }
    ctx.status.connected.store(true, Ordering::Relaxed);

    // Frame loop: buffer data records, apply at commit granularity.
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut batch: Vec<(u64, WalRecord)> = Vec::new();
    loop {
        if ctx.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        if let Err(e) = reader.read_exact(&mut header) {
            if ctx.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            return Err(e);
        }
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let lsn = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let crc = u32::from_le_bytes(header[12..16].try_into().unwrap());
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload)?;
        if !verify_frame(lsn, &payload, crc) {
            return Err(proto_err(format!("frame {lsn} failed CRC, resyncing")));
        }
        ctx.status.frames.fetch_add(1, Ordering::Relaxed);
        if payload.is_empty() {
            // Heartbeat: the primary's last committed LSN, never
            // persisted.
            ctx.status.primary_last_lsn.store(lsn, Ordering::Relaxed);
            continue;
        }
        ctx.status.received_lsn.store(lsn, Ordering::Relaxed);
        ctx.status
            .primary_last_lsn
            .fetch_max(lsn, Ordering::Relaxed);
        let rec = WalRecord::decode(&payload)
            .ok_or_else(|| proto_err(format!("frame {lsn} carries an undecodable record")))?;
        let is_commit = matches!(rec, WalRecord::Commit);
        batch.push((lsn, rec));
        if is_commit {
            apply_batch(ctx, &batch)?;
            batch.clear();
        }
    }
}

/// Applies one committed batch under the engine write lock and
/// checkpoints when the local log grows past the configured depth.
fn apply_batch(ctx: &SyncCtx, batch: &[(u64, WalRecord)]) -> std::io::Result<()> {
    let commit_lsn = batch.last().map(|(l, _)| *l).unwrap_or(0);
    let mut engine = ctx.engine.write();
    let store = engine
        .store_mut()
        .map_err(|e| proto_err(format!("writer gate: {e}")))?;
    store
        .apply_replicated(batch)
        .map_err(|e| proto_err(format!("apply batch at {commit_lsn}: {e}")))?;
    if store.wal_stats().depth >= ctx.config.checkpoint_depth {
        store
            .checkpoint()
            .map_err(|e| proto_err(format!("replica checkpoint: {e}")))?;
    }
    drop(engine);
    ctx.status.applied_lsn.store(commit_lsn, Ordering::Relaxed);
    Ok(())
}

/// Reads `SNAPDOC`/`SNAPEND` lines and rebuilds the local store from
/// scratch: fresh durable store, documents loaded in the primary's load
/// order (reproducing its key space), log re-based to the snapshot LSN.
/// Runs entirely under the engine write lock so no query observes the
/// swap, then clears the plan cache (new stores restart document
/// generations at zero).
fn install_snapshot(ctx: &SyncCtx, reader: &mut impl BufRead) -> std::io::Result<()> {
    let mut docs: Vec<(String, String)> = Vec::new();
    let snap_lsn;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(proto_err("feed closed mid-snapshot"));
        }
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("SNAPDOC ") {
            let Some((name, xml)) = rest.split_once(' ') else {
                return Err(proto_err(format!("bad SNAPDOC line: {line}")));
            };
            docs.push((name.to_string(), unescape_line(xml)));
        } else if let Some(rest) = line.strip_prefix("SNAPEND ") {
            snap_lsn = rest
                .parse::<u64>()
                .map_err(|_| proto_err(format!("bad SNAPEND line: {line}")))?;
            break;
        } else {
            return Err(proto_err(format!("unexpected snapshot line: {line}")));
        }
    }

    let mut engine = ctx.engine.write();
    let mut fresh =
        MassStore::create_durable(&ctx.config.data, ctx.config.capacity, ctx.config.fsync)
            .map_err(|e| proto_err(format!("recreate replica store: {e}")))?;
    fresh
        .set_format(vamana_mass::StoreFormat::from_env())
        .map_err(|e| proto_err(format!("set replica store format: {e}")))?;
    for (name, xml) in &docs {
        fresh
            .load_xml(name, xml)
            .map_err(|e| proto_err(format!("snapshot load {name}: {e}")))?;
    }
    fresh
        .rebase_replica(snap_lsn)
        .map_err(|e| proto_err(format!("rebase to {snap_lsn}: {e}")))?;
    // Re-attach a ring so this replica can cascade to its own followers.
    fresh
        .attach_replication(ctx.config.server.repl_retain)
        .map_err(|e| proto_err(format!("attach ring: {e}")))?;
    engine
        .replace_store(fresh)
        .map_err(|e| proto_err(format!("install snapshot: {e}")))?;
    drop(engine);
    ctx.server_shared.cache().clear();
    ctx.status.snapshots.fetch_add(1, Ordering::Relaxed);
    ctx.status.applied_lsn.store(snap_lsn, Ordering::Relaxed);
    ctx.status.received_lsn.store(snap_lsn, Ordering::Relaxed);
    ctx.status
        .primary_last_lsn
        .fetch_max(snap_lsn, Ordering::Relaxed);
    Ok(())
}

/// Inverse of the server's line escaping (`\\`, `\n`, `\r`, `\t`).
fn unescape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unescape_inverts_server_escaping() {
        // Mirrors vamana-server's escape_line.
        assert_eq!(unescape_line("a\\tb\\nc\\\\d"), "a\tb\nc\\d");
        assert_eq!(unescape_line("plain"), "plain");
        assert_eq!(unescape_line("trailing\\"), "trailing\\");
    }
}
