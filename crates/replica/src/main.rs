//! `vamana-replica` — a read-only follower process.
//!
//! ```text
//! vamana-replica --primary 127.0.0.1:4050 --listen 127.0.0.1:4051 \
//!                --data replica.mass [--fsync always|never|every:N]
//!                [--capacity N] [--port-file PATH]
//! ```
//!
//! Connects to the primary's `REPLICATE` feed, keeps a durable local
//! copy at `--data`, and serves read-only queries on `--listen`. With
//! `--port-file`, the actually bound address (useful with port 0) is
//! written there once the server is up — tests and scripts wait on that
//! file instead of racing the bind.

use std::time::Duration;

use vamana_mass::FsyncPolicy;
use vamana_replica::{Replica, ReplicaConfig};

fn usage() -> ! {
    eprintln!(
        "usage: vamana-replica --primary <addr> --listen <addr> --data <path> \
         [--fsync always|never|every:N] [--capacity N] [--port-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ReplicaConfig::default();
    let mut port_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--primary" => config.primary = value(),
            "--listen" => config.listen = value(),
            "--data" => config.data = value().into(),
            "--capacity" => match value().parse() {
                Ok(n) => config.capacity = n,
                Err(_) => usage(),
            },
            "--fsync" => {
                let v = value();
                config.fsync = match v.as_str() {
                    "always" => FsyncPolicy::Always,
                    "never" => FsyncPolicy::Never,
                    other => match other.strip_prefix("every:").and_then(|n| n.parse().ok()) {
                        Some(n) => FsyncPolicy::EveryN(n),
                        None => usage(),
                    },
                };
            }
            "--port-file" => port_file = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let handle = match Replica::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("vamana-replica: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("vamana-replica serving read-only on {}", handle.addr());
    if let Some(path) = port_file {
        // Write-then-rename so a watcher never reads a half-written file.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, handle.addr().to_string())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_err()
        {
            eprintln!("vamana-replica: cannot write port file {path}");
            std::process::exit(1);
        }
    }
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
