//! # vamana-core
//!
//! VAMANA — a scalable, cost-driven XPath engine (Raghavan, Deschler &
//! Rundensteiner, ICDE 2005) — reimplemented in Rust on top of the MASS
//! storage structure ([`vamana_mass`]).
//!
//! The crate follows the paper's architecture (Fig 2):
//!
//! * **XPath compiler** — [`vamana_xpath`] parses the expression;
//!   [`plan::builder`] maps each parse-tree node to exactly one operator
//!   of the physical algebra ([`plan`]).
//! * **Cost estimator** ([`cost`]) — `COUNT`/`TC`/`IN`/`OUT` and the
//!   selectivity ratio, fed by live index statistics from MASS (no
//!   histograms; exact under updates).
//! * **Optimizer** ([`opt`]) — clean-up, cost gathering and re-writing
//!   iterated to a fixpoint; the transformation library implements the
//!   paper's rewrites (parent inversion, child push-down, value-index
//!   steps, ancestor context folding). A rewrite is kept only when
//!   re-estimation shows no cost increase, so optimized plans are never
//!   slower than the submitted plan.
//! * **Query execution engine** ([`exec`]) — pull-based, pipelined
//!   cursors with the paper's INITIAL / FETCHING / OUT_OF_TUPLES operator
//!   states; tuples are FLEX keys, materialized lazily.
//!
//! ## Quick start
//!
//! ```
//! use vamana_core::{Engine, MassStore};
//!
//! let mut store = MassStore::open_memory();
//! store.load_xml("auction", "<site><person id='p0'><name>Yung Flach</name></person></site>").unwrap();
//! let engine = Engine::new(store);
//!
//! let hits = engine.query("//person[name = 'Yung Flach']").unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

pub mod cost;
pub mod engine;
pub mod error;
pub mod exec;
pub mod explain;
pub mod opt;
pub mod plan;
pub mod shared;
pub mod views;

pub use cost::EstimateCard;
pub use engine::{Engine, EngineOptions, Explain, QueryStream, UpdateOp, UpdateOutcome};
pub use error::{EngineError, Result};
pub use exec::parallel::ParallelScanStats;
pub use exec::stats::{ExecStats, ExecStatsSnapshot, OpActualsSnapshot};
pub use exec::value::Value;
pub use explain::{qerror, Analysis, Misestimate};
pub use opt::{OptEvent, OptTrace, OptimizeOutcome, OptimizerOptions, RuleDecision};
pub use plan::{builder::build_plan, display::render, OpId, Operator, ParallelChoice, QueryPlan};
pub use shared::{QueryProfile, SharedEngine};
pub use views::{contains, pattern_for, plan_view, Pattern, ViewCache, ViewStatsSnapshot};

// Re-export the storage entry points so `vamana_core` is usable alone.
pub use vamana_mass::{DocId, MassStore, NodeEntry};
