//! The pipelined, iterative query execution engine (paper §VII).
//!
//! Execution is pull-based along the context path: each operator is a
//! cursor in one of the paper's three states — INITIAL, FETCHING,
//! OUT_OF_TUPLES (Algorithm 1/2). Tuples are FLEX-keyed [`NodeEntry`]s;
//! node values are fetched lazily only when a predicate or the caller
//! actually needs them.
//!
//! Predicate trees re-run per tuple with dynamically set context
//! (paper §V-B): leaf steps with [`ContextSource::OuterTuple`] anchor at
//! the tuple under test; absolute paths anchor back at the query root.

pub mod fused;
pub mod parallel;
pub mod stats;
pub mod value;

use crate::error::{EngineError, Result};
use crate::plan::{ArithOp, BinOp, ContextSource, OpId, Operator, QueryPlan, TestSpec};
use stats::ExecStats;
use std::collections::HashSet;
use value::Value;
use vamana_flex::{Axis, FlexKey, KeyRange};
use vamana_mass::axes::{axis_stream, AxisStream, KindFilter, NodeFilter};
use vamana_mass::{MassStore, NodeEntry, RecordKind};

/// Tuples per batch in the batched pipeline. Large enough to amortize
/// per-batch dispatch to noise, small enough that a batch of entries
/// (key bytes included) stays within L1/L2 cache.
pub const BATCH_SIZE: usize = 256;

/// The paper's operator states (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpState {
    /// Not yet asked for a tuple.
    Initial,
    /// Producing tuples.
    Fetching,
    /// Exhausted.
    OutOfTuples,
}

/// Execution environment shared by all operator cursors of one run.
///
/// Two lifetimes keep the plan borrow (`'p`) independent from the store
/// borrow (`'s`): operator cursors only capture store references, so an
/// owning [`crate::engine::QueryStream`] can hold the plan itself and
/// hand out a fresh `Env` per pull.
#[derive(Clone, Copy)]
pub struct Env<'p, 's> {
    /// The plan being executed.
    pub plan: &'p QueryPlan,
    /// The store.
    pub store: &'s MassStore,
    /// The query root context (document node), set by the engine before
    /// execution begins (§V-B).
    pub root_ctx: &'p NodeEntry,
    /// Per-operator actuals collector for `EXPLAIN ANALYZE`. `None` on
    /// the normal query path — cursors then touch no counters at all.
    pub stats: Option<&'p ExecStats>,
}

impl<'p, 's> Env<'p, 's> {
    fn node_filter(&self, axis: Axis, test: &TestSpec) -> Option<NodeFilter> {
        // `None` means "provably empty" (unknown name).
        Some(match test {
            TestSpec::Named(name) => {
                let id = self.store.name_id(name)?;
                if axis.principal_is_attribute() {
                    NodeFilter::attribute(id)
                } else {
                    NodeFilter::element(id)
                }
            }
            TestSpec::Wildcard => {
                if axis.principal_is_attribute() {
                    NodeFilter {
                        kind: KindFilter::Attribute,
                        name: None,
                    }
                } else {
                    NodeFilter::any_element()
                }
            }
            TestSpec::AnyNode => NodeFilter::any(),
            TestSpec::Text => NodeFilter::text(),
            TestSpec::Comment => NodeFilter {
                kind: KindFilter::Comment,
                name: None,
            },
            TestSpec::Pi(target) => NodeFilter {
                kind: KindFilter::Pi,
                name: target.as_ref().and_then(|t| self.store.name_id(t)),
            },
        })
    }
}

/// Runs `plan` to completion, returning the result node-set.
///
/// Under `set_semantics` (XPath node-set semantics) the result is sorted
/// into document order with duplicates removed; otherwise tuples are
/// returned in pipeline order, duplicates included.
pub fn run(env: Env<'_, '_>, set_semantics: bool) -> Result<Vec<NodeEntry>> {
    run_from(env, None, set_semantics)
}

/// Like [`run`], but leaf operators with [`ContextSource::OuterTuple`]
/// anchor at `outer` — the paper's §VII hook for XQuery: "the context
/// node could be provided from another XPath expression".
pub fn run_from(
    env: Env<'_, '_>,
    outer: Option<&NodeEntry>,
    set_semantics: bool,
) -> Result<Vec<NodeEntry>> {
    run_from_mode(env, outer, set_semantics, true)
}

/// [`run_from`] with an explicit execution mode: `batched` pulls
/// [`BATCH_SIZE`]-tuple batches through the pipeline, `!batched` pulls
/// one tuple at a time. Both produce the identical tuple sequence; the
/// scalar mode exists as the measured baseline and differential oracle
/// for the batched one.
pub fn run_from_mode(
    env: Env<'_, '_>,
    outer: Option<&NodeEntry>,
    set_semantics: bool,
    batched: bool,
) -> Result<Vec<NodeEntry>> {
    run_plan(env, outer, set_semantics, batched, None)
}

/// [`run_from_mode`] with an optional parallel-scan hookup. When `par`
/// is provided (engine gating: `EngineOptions.parallel`, a plan-recorded
/// [`crate::plan::ParallelChoice`], batched mode, top-level run), the
/// plan's output step fans out over the engine's scan pool; any shape
/// that does not qualify at runtime falls back to the serial pipeline.
/// Output is identical in all cases — parallelism only reorders *work*,
/// never tuples.
pub fn run_plan(
    env: Env<'_, '_>,
    outer: Option<&NodeEntry>,
    set_semantics: bool,
    batched: bool,
    par: Option<&parallel::ParallelHooks>,
) -> Result<Vec<NodeEntry>> {
    let top = match env.plan.op(env.plan.root()) {
        Operator::Root { child } => *child,
        _ => Some(env.plan.root()),
    };
    let Some(top) = top else {
        return Ok(Vec::new());
    };
    let started = env.stats.map(|_| std::time::Instant::now());
    let mut iter = match par {
        Some(hooks) if outer.is_none() && batched => {
            match parallel::build_parallel(env, top, hooks)? {
                Some(it) => it,
                None => build_iter(env, top, outer)?,
            }
        }
        _ => build_iter(env, top, outer)?,
    };
    let mut out = Vec::new();
    if batched {
        while iter.next_batch(env, &mut out, BATCH_SIZE)? > 0 {}
    } else {
        while let Some(t) = iter.next(env)? {
            out.push(t);
        }
    }
    if set_semantics {
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out.dedup_by(|a, b| a.key == b.key);
    }
    if let Some(stats) = env.stats {
        // The root operator's actuals are the run's: post-dedup output
        // cardinality and the whole run's wall time. Guarded so a plan
        // whose root *is* the top step does not double-count.
        let root = env.plan.root();
        if matches!(env.plan.op(root), Operator::Root { .. }) {
            stats.add_invocation(root);
            stats.add_rows(root, out.len() as u64);
            if let Some(t0) = started {
                stats.add_nanos(root, t0.elapsed().as_nanos() as u64);
            }
        }
    }
    Ok(out)
}

/// One operator cursor.
pub enum OpIter<'s> {
    /// Yields a single anchored context tuple (leaf context source).
    Anchor(Option<NodeEntry>),
    /// A step operator.
    Step(Box<StepIter<'s>>),
    /// A value-index step.
    ValueStep(Box<ValueStepIter<'s>>),
    /// A fused step chain: the whole chain evaluated per record inside
    /// one page-pinned clustered scan.
    Fused(Box<fused::FusedIter<'s>>),
    /// Set union: left stream then right stream (dedup happens at the
    /// top under set semantics). Carries its plan [`OpId`] so analyze
    /// runs can attribute the merged output.
    Union(OpId, Box<OpIter<'s>>, Box<OpIter<'s>>),
    /// Value semi-join (algebra completeness): yields left tuples whose
    /// string value matches some right tuple under the condition.
    Join(std::vec::IntoIter<NodeEntry>),
    /// Morsel-parallel scan with ordered merge (borrows nothing: workers
    /// hold `Arc` clones of the store).
    Parallel(Box<parallel::ParallelIter>),
    /// Scan over a materialized view's cached result set (already in
    /// document order, deduplicated). Carries its plan [`OpId`] and a
    /// cursor position into the shared entry vector.
    View {
        /// The `ViewScan` operator this cursor executes.
        op: OpId,
        /// The view's materialized entries.
        entries: std::sync::Arc<Vec<NodeEntry>>,
        /// Next entry to yield.
        pos: usize,
    },
}

/// Builds the cursor tree for a node-set operator. `outer` is the tuple
/// being filtered when inside a predicate path.
pub fn build_iter<'s>(env: Env<'_, 's>, id: OpId, outer: Option<&NodeEntry>) -> Result<OpIter<'s>> {
    match env.plan.op(id) {
        Operator::Step {
            axis,
            test,
            context,
            source,
            predicates,
        } => {
            let ctx_iter = match context {
                Some(c) => build_iter(env, *c, outer)?,
                None => OpIter::Anchor(Some(anchor_for(env, *source, outer))),
            };
            Ok(OpIter::Step(Box::new(StepIter {
                op: id,
                axis: *axis,
                // Resolve the node test once — an unknown name means the
                // step is provably empty for every context.
                filter: env.node_filter(*axis, test),
                predicates: predicates.clone(),
                context: ctx_iter,
                state: OpState::Initial,
                stream: None,
                current_ctx: None,
                buffer: Vec::new(),
                buffer_pos: 0,
                outer: outer.cloned(),
            })))
        }
        Operator::RangeStep {
            context, source, ..
        } => {
            let ctx_iter = match context {
                Some(c) => build_iter(env, *c, outer)?,
                None => OpIter::Anchor(Some(anchor_for(env, *source, outer))),
            };
            Ok(OpIter::ValueStep(Box::new(ValueStepIter {
                op: id,
                context: Box::new(ctx_iter),
                state: OpState::Initial,
                buffer: Vec::new(),
                buffer_pos: 0,
            })))
        }
        Operator::ValueStep {
            context, source, ..
        } => {
            let ctx_iter = match context {
                Some(c) => build_iter(env, *c, outer)?,
                None => OpIter::Anchor(Some(anchor_for(env, *source, outer))),
            };
            Ok(OpIter::ValueStep(Box::new(ValueStepIter {
                op: id,
                context: Box::new(ctx_iter),
                state: OpState::Initial,
                buffer: Vec::new(),
                buffer_pos: 0,
            })))
        }
        Operator::Union { left, right } => Ok(OpIter::Union(
            id,
            Box::new(build_iter(env, *left, outer)?),
            Box::new(build_iter(env, *right, outer)?),
        )),
        Operator::Filter { input, predicates } => {
            // Whole-node-set positional filtering: materialize the input
            // in document order (deduplicated), then filter.
            let mut iter = build_iter(env, *input, outer)?;
            let mut group = Vec::new();
            let mut seen = HashSet::new();
            while let Some(t) = iter.next(env)? {
                if seen.insert(t.key.clone()) {
                    group.push(t);
                }
            }
            group.sort_by(|a, b| a.key.cmp(&b.key));
            for pred in predicates {
                group = apply_predicate(env, *pred, group, false, outer)?;
            }
            if let Some(stats) = env.stats {
                stats.add_invocation(id);
                stats.add_rows(id, group.len() as u64);
            }
            Ok(OpIter::Join(group.into_iter()))
        }
        Operator::Join { op, left, right } => {
            let mut l_iter = build_iter(env, *left, outer)?;
            let mut r_iter = build_iter(env, *right, outer)?;
            let mut rights = Vec::new();
            while let Some(t) = r_iter.next(env)? {
                rights.push(value::node_string_value(env.store, &t)?);
            }
            let mut out = Vec::new();
            while let Some(t) = l_iter.next(env)? {
                let lv = value::node_string_value(env.store, &t)?;
                let hit = rights.iter().any(|rv| {
                    let l = Value::Str(lv.clone());
                    let r = Value::Str(rv.clone());
                    value::compare(env.store, *op, &l, &r).unwrap_or(false)
                });
                if hit {
                    out.push(t);
                }
            }
            if let Some(stats) = env.stats {
                stats.add_invocation(id);
                stats.add_rows(id, out.len() as u64);
            }
            Ok(OpIter::Join(out.into_iter()))
        }
        Operator::ViewScan { entries, .. } => Ok(OpIter::View {
            op: id,
            entries: std::sync::Arc::clone(entries),
            pos: 0,
        }),
        Operator::FusedScan { .. } => Ok(OpIter::Fused(Box::new(fused::FusedIter::build(
            env, id, outer,
        )?))),
        other => Err(EngineError::Unsupported(format!(
            "operator {other:?} cannot produce a node-set stream"
        ))),
    }
}

fn anchor_for(env: Env<'_, '_>, source: ContextSource, outer: Option<&NodeEntry>) -> NodeEntry {
    match (source, outer) {
        (ContextSource::OuterTuple, Some(t)) => t.clone(),
        _ => env.root_ctx.clone(),
    }
}

impl<'s> OpIter<'s> {
    /// Pulls the next tuple.
    pub fn next(&mut self, env: Env<'_, 's>) -> Result<Option<NodeEntry>> {
        match self {
            OpIter::Anchor(item) => Ok(item.take()),
            OpIter::Step(s) => s.next(env),
            OpIter::ValueStep(s) => s.next(env),
            OpIter::Fused(f) => f.next(env),
            OpIter::Union(id, l, r) => {
                let t = match l.next(env)? {
                    Some(t) => Some(t),
                    None => r.next(env)?,
                };
                if let Some(stats) = env.stats {
                    stats.add_invocation(*id);
                    if t.is_some() {
                        stats.add_rows(*id, 1);
                    }
                }
                Ok(t)
            }
            OpIter::Join(items) => Ok(items.next()),
            OpIter::Parallel(p) => {
                let t = p.next()?;
                if let Some(stats) = env.stats {
                    stats.add_invocation(p.op);
                    if t.is_some() {
                        stats.add_rows(p.op, 1);
                    }
                }
                Ok(t)
            }
            OpIter::View { op, entries, pos } => {
                let t = entries.get(*pos).cloned();
                if t.is_some() {
                    *pos += 1;
                }
                if let Some(stats) = env.stats {
                    stats.add_invocation(*op);
                    if t.is_some() {
                        stats.add_rows(*op, 1);
                    }
                }
                Ok(t)
            }
        }
    }

    /// Pulls up to `max` tuples into `out`, returning how many were
    /// appended — the same tuple sequence [`OpIter::next`] would produce,
    /// chunked. A short (or zero) count means the operator is exhausted.
    pub fn next_batch(
        &mut self,
        env: Env<'_, 's>,
        out: &mut Vec<NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        match self {
            OpIter::Anchor(item) => {
                if max > 0 {
                    if let Some(t) = item.take() {
                        out.push(t);
                        return Ok(1);
                    }
                }
                Ok(0)
            }
            OpIter::Step(s) => s.next_batch(env, out, max),
            OpIter::ValueStep(s) => s.next_batch(env, out, max),
            OpIter::Fused(f) => f.next_batch(env, out, max),
            OpIter::Union(id, l, r) => {
                // Left stream first; a short left batch means the left
                // side is exhausted, so top up from the right.
                let mut n = l.next_batch(env, out, max)?;
                if n < max {
                    n += r.next_batch(env, out, max - n)?;
                }
                if let Some(stats) = env.stats {
                    stats.add_invocation(*id);
                    stats.add_batch(*id);
                    stats.add_rows(*id, n as u64);
                }
                Ok(n)
            }
            OpIter::Join(items) => {
                let start = out.len();
                out.extend(items.by_ref().take(max));
                Ok(out.len() - start)
            }
            OpIter::Parallel(p) => match env.stats {
                None => p.next_batch(out, max),
                Some(stats) => {
                    // The merge point sees every tuple regardless of
                    // which worker produced it, so attributing rows here
                    // matches the serial pipeline's totals exactly; the
                    // pool delta credits worker page traffic to the scan.
                    let (p0, pin0) = env.store.buffer_pool().probe_pin_counts();
                    let t0 = std::time::Instant::now();
                    let n = p.next_batch(out, max)?;
                    let (p1, pin1) = env.store.buffer_pool().probe_pin_counts();
                    stats.add_invocation(p.op);
                    stats.add_batch(p.op);
                    stats.add_rows(p.op, n as u64);
                    stats.add_nanos(p.op, t0.elapsed().as_nanos() as u64);
                    stats.add_probe_pins(p.op, p1.saturating_sub(p0), pin1.saturating_sub(pin0));
                    Ok(n)
                }
            },
            OpIter::View { op, entries, pos } => {
                let t0 = env.stats.map(|_| std::time::Instant::now());
                let end = (*pos + max).min(entries.len());
                let n = end - *pos;
                out.extend_from_slice(&entries[*pos..end]);
                *pos = end;
                if let Some(stats) = env.stats {
                    stats.add_invocation(*op);
                    stats.add_batch(*op);
                    stats.add_rows(*op, n as u64);
                    if let Some(t0) = t0 {
                        stats.add_nanos(*op, t0.elapsed().as_nanos() as u64);
                    }
                }
                Ok(n)
            }
        }
    }
}

/// Cursor for a step operator — Algorithm 1 of the paper.
pub struct StepIter<'s> {
    /// The plan operator this cursor executes (analyze attribution).
    op: OpId,
    axis: Axis,
    /// Node test resolved once at build time; `None` means the name does
    /// not occur in the store, so the step is provably empty.
    filter: Option<NodeFilter>,
    predicates: Vec<OpId>,
    context: OpIter<'s>,
    /// Paper state machine.
    state: OpState,
    /// Lazy axis stream (fast path: no predicates).
    stream: Option<AxisStream<'s>>,
    current_ctx: Option<NodeEntry>,
    /// Filtered group (predicate path).
    buffer: Vec<NodeEntry>,
    buffer_pos: usize,
    outer: Option<NodeEntry>,
}

impl<'s> StepIter<'s> {
    /// `GetNextContext()` — Algorithm 2.
    fn advance_context(&mut self, env: Env<'_, 's>) -> Result<bool> {
        match self.context.next(env)? {
            Some(ctx) => {
                self.current_ctx = Some(ctx);
                self.state = OpState::Fetching;
                Ok(true)
            }
            None => {
                self.state = OpState::OutOfTuples;
                Ok(false)
            }
        }
    }

    fn open_stream(&mut self, env: Env<'_, 's>) -> Result<bool> {
        let Some(ctx) = self.current_ctx.clone() else {
            return Ok(false);
        };
        let Some(filter) = self.filter else {
            // Unknown name: provably empty for this context.
            self.stream = None;
            self.buffer.clear();
            self.buffer_pos = 0;
            return Ok(true);
        };
        let stream = axis_stream(env.store, &ctx.key, ctx.kind, self.axis, filter)?;
        if self.predicates.is_empty() {
            self.stream = Some(stream);
        } else {
            // Materialize the group so position()/last() are available,
            // then filter through each predicate in order.
            let mut group = stream.collect()?;
            for pred in &self.predicates {
                group = apply_predicate(
                    env,
                    *pred,
                    group,
                    self.axis.is_reverse(),
                    self.outer.as_ref(),
                )?;
            }
            self.buffer = group;
            self.buffer_pos = 0;
            self.stream = None;
        }
        Ok(true)
    }

    fn next(&mut self, env: Env<'_, 's>) -> Result<Option<NodeEntry>> {
        let t = self.next_inner(env)?;
        if let Some(stats) = env.stats {
            stats.add_invocation(self.op);
            if t.is_some() {
                stats.add_rows(self.op, 1);
            }
        }
        Ok(t)
    }

    fn next_inner(&mut self, env: Env<'_, 's>) -> Result<Option<NodeEntry>> {
        loop {
            match self.state {
                OpState::OutOfTuples => return Ok(None),
                OpState::Initial => {
                    if !self.advance_context(env)? {
                        return Ok(None);
                    }
                    self.open_stream(env)?;
                }
                OpState::Fetching => {
                    if let Some(stream) = &mut self.stream {
                        if let Some(t) = stream.next()? {
                            return Ok(Some(t));
                        }
                    } else if self.buffer_pos < self.buffer.len() {
                        let t = self.buffer[self.buffer_pos].clone();
                        self.buffer_pos += 1;
                        return Ok(Some(t));
                    }
                    // Current context exhausted: pull the next one.
                    if !self.advance_context(env)? {
                        return Ok(None);
                    }
                    self.open_stream(env)?;
                }
            }
        }
    }

    /// Batched pull — the paper's INITIAL/FETCHING/OUT_OF_TUPLES machine
    /// advanced at batch granularity. The fast (no-predicate) path fills
    /// the batch straight from the axis stream, so page pinning and
    /// record decoding are amortized in `vamana-mass`; the predicate path
    /// stays scalar-materialized per context (position()/last() need the
    /// whole group) and only the copy-out is chunked. Contexts are still
    /// pulled one at a time, so the tuple sequence is byte-identical to
    /// [`StepIter::next`]'s. One batch may span several contexts.
    fn next_batch(
        &mut self,
        env: Env<'_, 's>,
        out: &mut Vec<NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        let Some(stats) = env.stats else {
            return self.next_batch_inner(env, out, max);
        };
        // Inclusive attribution at batch granularity: the pool delta and
        // the clock cover child context pulls made during this batch.
        let (p0, pin0) = env.store.buffer_pool().probe_pin_counts();
        let t0 = std::time::Instant::now();
        let got = self.next_batch_inner(env, out, max)?;
        let (p1, pin1) = env.store.buffer_pool().probe_pin_counts();
        stats.add_invocation(self.op);
        stats.add_batch(self.op);
        stats.add_rows(self.op, got as u64);
        stats.add_nanos(self.op, t0.elapsed().as_nanos() as u64);
        stats.add_probe_pins(self.op, p1.saturating_sub(p0), pin1.saturating_sub(pin0));
        Ok(got)
    }

    fn next_batch_inner(
        &mut self,
        env: Env<'_, 's>,
        out: &mut Vec<NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        let start = out.len();
        loop {
            let produced = out.len() - start;
            if produced >= max {
                return Ok(produced);
            }
            match self.state {
                OpState::OutOfTuples => return Ok(produced),
                OpState::Initial => {
                    if !self.advance_context(env)? {
                        return Ok(produced);
                    }
                    self.open_stream(env)?;
                }
                OpState::Fetching => {
                    if let Some(stream) = &mut self.stream {
                        let want = max - produced;
                        let got = stream.next_batch(out, want)?;
                        // A full batch may leave more behind; a short one
                        // cannot (the `next_batch` contract), so the
                        // context is exhausted without another probe.
                        if got >= want {
                            continue;
                        }
                    } else if self.buffer_pos < self.buffer.len() {
                        let take = (self.buffer.len() - self.buffer_pos).min(max - produced);
                        out.extend_from_slice(
                            &self.buffer[self.buffer_pos..self.buffer_pos + take],
                        );
                        self.buffer_pos += take;
                        continue;
                    }
                    // Current context exhausted: pull the next one.
                    if !self.advance_context(env)? {
                        return Ok(out.len() - start);
                    }
                    self.open_stream(env)?;
                }
            }
        }
    }
}

/// Cursor for the value-index step (`φ value::'v'`).
pub struct ValueStepIter<'s> {
    op: OpId,
    context: Box<OpIter<'s>>,
    state: OpState,
    buffer: Vec<NodeEntry>,
    buffer_pos: usize,
}

impl<'s> ValueStepIter<'s> {
    fn next(&mut self, env: Env<'_, 's>) -> Result<Option<NodeEntry>> {
        let t = self.next_inner(env)?;
        if let Some(stats) = env.stats {
            stats.add_invocation(self.op);
            if t.is_some() {
                stats.add_rows(self.op, 1);
            }
        }
        Ok(t)
    }

    fn next_inner(&mut self, env: Env<'_, 's>) -> Result<Option<NodeEntry>> {
        loop {
            match self.state {
                OpState::OutOfTuples => return Ok(None),
                OpState::Initial | OpState::Fetching => {
                    if self.buffer_pos < self.buffer.len() {
                        let t = self.buffer[self.buffer_pos].clone();
                        self.buffer_pos += 1;
                        return Ok(Some(t));
                    }
                    if !self.refill(env)? {
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// Batched pull: drains the current buffer in chunks and refills from
    /// the next context when it runs dry. Short count means exhausted.
    fn next_batch(
        &mut self,
        env: Env<'_, 's>,
        out: &mut Vec<NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        let Some(stats) = env.stats else {
            return self.next_batch_inner(env, out, max);
        };
        let (p0, pin0) = env.store.buffer_pool().probe_pin_counts();
        let t0 = std::time::Instant::now();
        let got = self.next_batch_inner(env, out, max)?;
        let (p1, pin1) = env.store.buffer_pool().probe_pin_counts();
        stats.add_invocation(self.op);
        stats.add_batch(self.op);
        stats.add_rows(self.op, got as u64);
        stats.add_nanos(self.op, t0.elapsed().as_nanos() as u64);
        stats.add_probe_pins(self.op, p1.saturating_sub(p0), pin1.saturating_sub(pin0));
        Ok(got)
    }

    fn next_batch_inner(
        &mut self,
        env: Env<'_, 's>,
        out: &mut Vec<NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        let start = out.len();
        loop {
            let produced = out.len() - start;
            if produced >= max || self.state == OpState::OutOfTuples {
                return Ok(produced);
            }
            if self.buffer_pos < self.buffer.len() {
                let take = (self.buffer.len() - self.buffer_pos).min(max - produced);
                out.extend_from_slice(&self.buffer[self.buffer_pos..self.buffer_pos + take]);
                self.buffer_pos += take;
                continue;
            }
            if !self.refill(env)? {
                return Ok(out.len() - start);
            }
        }
    }

    /// Pulls the next context tuple and rebuilds the value-index buffer
    /// for it. Returns `false` (and flips to OUT_OF_TUPLES) when the
    /// context stream is exhausted.
    fn refill(&mut self, env: Env<'_, 's>) -> Result<bool> {
        let Some(ctx) = self.context.next(env)? else {
            self.state = OpState::OutOfTuples;
            return Ok(false);
        };
        self.state = OpState::Fetching;
        enum Source {
            Eq(Box<str>, Option<bool>),
            Range(crate::plan::RangeCmp, f64, bool),
        }
        let (source, attr_name) = match env.plan.op(self.op) {
            Operator::ValueStep {
                value,
                text_only,
                attr_name,
                ..
            } => (Source::Eq(value.clone(), *text_only), attr_name.clone()),
            Operator::RangeStep {
                op,
                bound,
                text_only,
                attr_name,
                ..
            } => (Source::Range(*op, *bound, *text_only), attr_name.clone()),
            _ => unreachable!("ValueStepIter over non-value-step"),
        };
        let attr_name_id = attr_name.as_deref().map(|n| env.store.name_id(n));
        let range = if ctx.key.is_root() {
            KeyRange::all()
        } else {
            KeyRange::subtree(&ctx.key)
        };
        let (keys, text_only): (Vec<&[u8]>, Option<bool>) = match &source {
            Source::Eq(value, text_only) => {
                (env.store.value_index().keys_eq(value, &range), *text_only)
            }
            Source::Range(op, bound, text_only) => (
                env.store
                    .value_index()
                    .keys_numeric(op.to_mass(), *bound, &range),
                Some(*text_only),
            ),
        };
        let mut buffer = Vec::new();
        for flat in keys {
            let entry = entry_from_value_key(flat);
            let kind_ok = match text_only {
                Some(true) => entry.kind == RecordKind::Text,
                Some(false) => entry.kind == RecordKind::Attribute,
                None => true,
            };
            if !kind_ok {
                continue;
            }
            // Attribute rewrites must also match the attribute
            // name; one point lookup resolves it.
            if let Some(wanted) = &attr_name_id {
                let Some(wanted) = wanted else { continue };
                match env.store.get_entry(&entry.key)? {
                    Some(e) if e.name == Some(*wanted) => {}
                    _ => continue,
                }
            }
            buffer.push(entry);
        }
        self.buffer = buffer;
        self.buffer_pos = 0;
        Ok(true)
    }
}

/// Builds a [`NodeEntry`] from a value-index key without touching data
/// pages: attribute keys are recognizable from their reserved label range
/// (first byte of the last label `< 0x40`).
fn entry_from_value_key(flat: &[u8]) -> NodeEntry {
    let key = FlexKey::from_flat(flat.to_vec());
    let kind = match key.last_label().and_then(|l| l.first()) {
        Some(&b) if b < 0x40 => RecordKind::Attribute,
        _ => RecordKind::Text,
    };
    NodeEntry {
        key,
        kind,
        name: None,
    }
}

/// Applies one predicate to a materialized group with XPath position
/// semantics (reverse axes count from the end).
pub fn apply_predicate(
    env: Env<'_, '_>,
    pred: OpId,
    group: Vec<NodeEntry>,
    reverse: bool,
    _outer: Option<&NodeEntry>,
) -> Result<Vec<NodeEntry>> {
    let size = group.len();
    let mut out = Vec::with_capacity(size);
    for (i, tuple) in group.into_iter().enumerate() {
        let position = if reverse { size - i } else { i + 1 };
        let v = eval_expr(env, pred, &tuple, position, size)?;
        let keep = match v {
            Value::Num(n) => position as f64 == n,
            other => other.boolean(),
        };
        if keep {
            out.push(tuple);
        }
    }
    if let Some(stats) = env.stats {
        stats.add_predicate(pred, size as u64, out.len() as u64);
    }
    Ok(out)
}

/// Index-only evaluation of the exist-predicates the optimizer generates
/// (`[parent::S]`, `[child::S]`, `[attribute::S]` with a bare name test):
/// the answer comes from FLEX key arithmetic plus a name-index binary
/// search — no data page is touched. Returns `None` when the predicate
/// shape is more general and the cursor machinery must run.
fn exists_fast_path(env: Env<'_, '_>, path: OpId, ctx: &NodeEntry) -> Option<bool> {
    let Operator::Step {
        axis,
        test: TestSpec::Named(name),
        context: None,
        source: ContextSource::OuterTuple,
        predicates,
    } = env.plan.op(path)
    else {
        return None;
    };
    if !predicates.is_empty() {
        return None;
    }
    let Some(name_id) = env.store.name_id(name) else {
        return Some(false);
    };
    match axis {
        Axis::Parent => {
            let parent = ctx.key.parent()?;
            if parent.is_root() {
                return Some(false);
            }
            Some(
                env.store
                    .name_index()
                    .elements(name_id)
                    .contains(parent.as_flat()),
            )
        }
        Axis::Child => {
            let want_level = ctx.key.level() + 1;
            let range = KeyRange::descendants(&ctx.key);
            Some(
                env.store
                    .name_index()
                    .elements(name_id)
                    .iter_in(&range)
                    .any(|flat| flat.iter().filter(|&&b| b == 0).count() == want_level),
            )
        }
        Axis::Attribute => {
            let want_level = ctx.key.level() + 1;
            let range = KeyRange::descendants(&ctx.key);
            Some(
                env.store
                    .name_index()
                    .attributes(name_id)
                    .iter_in(&range)
                    .any(|flat| flat.iter().filter(|&&b| b == 0).count() == want_level),
            )
        }
        _ => None,
    }
}

/// Evaluates an expression operator against a context tuple.
pub fn eval_expr(
    env: Env<'_, '_>,
    id: OpId,
    ctx: &NodeEntry,
    position: usize,
    size: usize,
) -> Result<Value> {
    match env.plan.op(id) {
        Operator::Exists { path } => {
            if let Some(answer) = exists_fast_path(env, *path, ctx) {
                return Ok(Value::Bool(answer));
            }
            let mut iter = build_iter(env, *path, Some(ctx))?;
            Ok(Value::Bool(iter.next(env)?.is_some()))
        }
        Operator::Binary { op, left, right } => match op {
            BinOp::And => {
                let l = eval_expr(env, *left, ctx, position, size)?;
                if !l.boolean() {
                    return Ok(Value::Bool(false));
                }
                let r = eval_expr(env, *right, ctx, position, size)?;
                Ok(Value::Bool(r.boolean()))
            }
            BinOp::Or => {
                let l = eval_expr(env, *left, ctx, position, size)?;
                if l.boolean() {
                    return Ok(Value::Bool(true));
                }
                let r = eval_expr(env, *right, ctx, position, size)?;
                Ok(Value::Bool(r.boolean()))
            }
            cmp => {
                let l = eval_expr(env, *left, ctx, position, size)?;
                let r = eval_expr(env, *right, ctx, position, size)?;
                Ok(Value::Bool(value::compare(env.store, *cmp, &l, &r)?))
            }
        },
        Operator::Literal { value } => Ok(Value::Str(value.to_string())),
        Operator::Number { value } => Ok(Value::Num(*value)),
        Operator::Arith { op, left, right } => {
            let l = eval_expr(env, *left, ctx, position, size)?.number(env.store)?;
            let r = eval_expr(env, *right, ctx, position, size)?.number(env.store)?;
            Ok(Value::Num(match op {
                ArithOp::Add => l + r,
                ArithOp::Sub => l - r,
                ArithOp::Mul => l * r,
                ArithOp::Div => l / r,
                ArithOp::Mod => l % r,
            }))
        }
        Operator::Neg { child } => {
            let v = eval_expr(env, *child, ctx, position, size)?.number(env.store)?;
            Ok(Value::Num(-v))
        }
        Operator::Function { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(env, *a, ctx, position, size)?);
            }
            value::call_function(env.store, name, &vals, ctx, position, size)
        }
        Operator::Step { .. }
        | Operator::ValueStep { .. }
        | Operator::RangeStep { .. }
        | Operator::Union { .. }
        | Operator::Filter { .. }
        | Operator::Join { .. }
        | Operator::ViewScan { .. }
        | Operator::FusedScan { .. } => {
            // A path in expression position: collect its node-set,
            // deduplicated in document order.
            let mut iter = build_iter(env, id, Some(ctx))?;
            let mut nodes = Vec::new();
            let mut seen = HashSet::new();
            while let Some(t) = iter.next(env)? {
                if seen.insert(t.key.clone()) {
                    nodes.push(t);
                }
            }
            nodes.sort_by(|a, b| a.key.cmp(&b.key));
            Ok(Value::Nodes(nodes))
        }
        Operator::Root { .. } => Err(EngineError::Unsupported(
            "nested root operator in expression".into(),
        )),
    }
}
