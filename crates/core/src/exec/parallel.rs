//! Morsel-driven intra-query parallel scans (the `ParallelScan`
//! operator).
//!
//! The serial pipeline's unit of work is a page-pinned batch; this
//! module distributes those batches across cores without giving up the
//! strict document order the rest of the engine relies on:
//!
//! 1. The optimizer marks a plan parallel-worthy
//!    ([`crate::opt::parallel::decide`]) and records the degree.
//! 2. At execution time `build_parallel` derives *morsels* from the
//!    live store: for a single-context descendant scan, disjoint
//!    page-run key ranges from `MassStore::partition_range`; for a
//!    multi-context step, contiguous chunks of the context list. Either
//!    way, concatenating the morsel outputs in morsel order reproduces
//!    the serial tuple sequence exactly.
//! 3. Morsel tasks go to a [`ScanPool`] — an engine-level, work-stealing
//!    worker pool reused across queries (workers pop their own deque
//!    front, steal others' backs; no per-query thread spawn).
//! 4. Each worker drives the existing `next_batch` machinery over its
//!    morsel and pushes batches into a bounded per-morsel queue; the
//!    consumer ([`ParallelIter`]) drains queues strictly in morsel
//!    order, re-emitting document order downstream. While its in-order
//!    morsel has nothing ready the consumer *helps* — it steals and runs
//!    queued tasks inline — which both keeps cores busy and guarantees
//!    progress even on a saturated pool.
//!
//! Failure handling: a worker error (or panic) marks its morsel queue
//! failed and the consumer surfaces it as an [`EngineError`]; dropping a
//! `ParallelIter` mid-stream cancels outstanding tasks and waits for
//! in-flight ones, so workers never outlive the store borrow their
//! `Arc<MassStore>` clones pin.

use crate::error::{EngineError, Result};
use crate::exec::{build_iter, Env, OpIter, BATCH_SIZE};
use crate::plan::{Operator, ParallelChoice};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;
use vamana_flex::{Axis, KeyRange};
use vamana_mass::axes::{axis_stream, range_scan_stream};
use vamana_mass::{MassStore, NodeEntry, NodeFilter, RecordKind};

/// Morsels per degree of parallelism. More morsels than workers is
/// deliberate: it gives the stealing machinery slack to rebalance when
/// morsels turn out skewed (and is what the forced-stealing differential
/// tests exercise).
const MORSELS_PER_WORKER: usize = 2;

/// Bound on batches buffered per morsel queue before its producer
/// blocks. Caps memory at roughly `morsels * QUEUE_CAP * BATCH_SIZE`
/// entries per query while letting out-of-order morsels run ahead.
const QUEUE_CAP: usize = 8;

/// How long blocked parties sleep between re-checks. Purely a liveness
/// backstop — every state change also signals the relevant condvar.
const WAIT_TICK: Duration = Duration::from_millis(5);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A worker panic is reported through its morsel queue; the shared
    // state itself stays consistent, so poisoning is ignored.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Cumulative counters of a [`ScanPool`] since creation, surfaced in
/// `QueryProfile`, CLI `.stats`, and server `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelScanStats {
    /// Pool width (worker threads) — a gauge, not a counter.
    pub workers: u64,
    /// Morsel tasks submitted.
    pub morsels: u64,
    /// Batches produced by morsel tasks.
    pub worker_batches: u64,
    /// Times the consumer wanted its in-order morsel's output and had to
    /// wait (or help) because none was ready.
    pub merge_stalls: u64,
}

type Task = Box<dyn FnOnce(bool) + Send + 'static>;

struct PoolState {
    /// One deque per worker; tasks are submitted round-robin.
    queues: Vec<VecDeque<Task>>,
    shutdown: bool,
}

/// State shared with worker threads. Split from [`ScanPool`] so workers
/// hold no `Arc<ScanPool>` — otherwise the pool's drop (which joins the
/// workers) could never run.
struct PoolShared {
    state: Mutex<PoolState>,
    wake: Condvar,
    next: AtomicUsize,
    morsels: AtomicU64,
    batches: AtomicU64,
    stalls: AtomicU64,
}

impl PoolShared {
    /// Pops from `me`'s own deque front, else steals another deque's
    /// back.
    fn take(state: &mut PoolState, me: usize) -> Option<Task> {
        if let Some(t) = state.queues[me].pop_front() {
            return Some(t);
        }
        let k = state.queues.len();
        for off in 1..k {
            if let Some(t) = state.queues[(me + off) % k].pop_back() {
                return Some(t);
            }
        }
        None
    }

    fn worker_loop(&self, me: usize) {
        loop {
            let task = {
                let mut st = lock(&self.state);
                loop {
                    if st.shutdown {
                        return;
                    }
                    if let Some(t) = Self::take(&mut st, me) {
                        break t;
                    }
                    st = self.wake.wait(st).unwrap_or_else(|p| p.into_inner());
                }
            };
            // Task panics are reported through the morsel queue (see
            // `MorselTask::run`); the worker itself must survive.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(false)));
        }
    }
}

/// A shared, engine-level worker pool for morsel scans: work-stealing
/// deques, reused across queries. Created lazily by the engine at the
/// first parallel query and replaced only when the configured width
/// changes; dropping it shuts the workers down and joins them.
pub struct ScanPool {
    shared: Arc<PoolShared>,
    width: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ScanPool {
    /// Starts `width` worker threads (at least one).
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..width).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            next: AtomicUsize::new(0),
            morsels: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
        });
        let handles = (0..width)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vamana-scan-{me}"))
                    .spawn(move || shared.worker_loop(me))
                    .expect("spawn scan worker")
            })
            .collect();
        ScanPool {
            shared,
            width,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ParallelScanStats {
        ParallelScanStats {
            workers: self.width as u64,
            morsels: self.shared.morsels.load(Ordering::Relaxed),
            worker_batches: self.shared.batches.load(Ordering::Relaxed),
            merge_stalls: self.shared.stalls.load(Ordering::Relaxed),
        }
    }

    /// Enqueues one morsel task, round-robin across worker deques.
    fn submit(&self, task: Task) {
        {
            let mut st = lock(&self.shared.state);
            let w = self.shared.next.fetch_add(1, Ordering::Relaxed) % st.queues.len();
            st.queues[w].push_back(task);
        }
        self.shared.morsels.fetch_add(1, Ordering::Relaxed);
        self.shared.wake.notify_all();
    }

    /// Steals one queued task and runs it on the calling thread (the
    /// consumer "helping" while its in-order morsel is not ready).
    /// Returns `false` when no task was queued.
    fn help(&self) -> bool {
        let task = {
            let mut st = lock(&self.shared.state);
            PoolShared::take(&mut st, 0)
        };
        match task {
            Some(t) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t(true)));
                true
            }
            None => false,
        }
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct QueueState {
    batches: VecDeque<Vec<NodeEntry>>,
    finished: bool,
    failed: Option<String>,
}

struct MorselQueue {
    state: Mutex<QueueState>,
    /// Signalled on push/finish (consumer waits here).
    nonempty: Condvar,
    /// Signalled on pop/cancel (blocked producer waits here).
    nonfull: Condvar,
}

/// Per-query rendezvous between morsel tasks and the consuming
/// [`ParallelIter`]: one bounded queue per morsel plus cancellation and
/// an in-flight task count.
struct MorselSet {
    queues: Vec<MorselQueue>,
    cancelled: AtomicBool,
    inflight: AtomicUsize,
}

impl MorselSet {
    fn new(n: usize) -> Self {
        MorselSet {
            queues: (0..n)
                .map(|_| MorselQueue {
                    state: Mutex::new(QueueState {
                        batches: VecDeque::new(),
                        finished: false,
                        failed: None,
                    }),
                    nonempty: Condvar::new(),
                    nonfull: Condvar::new(),
                })
                .collect(),
            cancelled: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
        }
    }

    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Appends a batch to morsel `i`'s queue, blocking while it is full
    /// — unless `unbounded` (tasks run inline on the consumer thread
    /// must not block on a queue only they can drain). Returns `false`
    /// when the query was cancelled.
    fn push(&self, i: usize, batch: Vec<NodeEntry>, pool: &PoolShared, unbounded: bool) -> bool {
        let q = &self.queues[i];
        let mut st = lock(&q.state);
        while !unbounded && st.batches.len() >= QUEUE_CAP {
            if self.is_cancelled() {
                return false;
            }
            st = q
                .nonfull
                .wait_timeout(st, WAIT_TICK)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
        if self.is_cancelled() {
            return false;
        }
        st.batches.push_back(batch);
        drop(st);
        q.nonempty.notify_all();
        pool.batches.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Marks morsel `i` complete, recording a failure message if any.
    fn finish(&self, i: usize, failed: Option<String>) {
        let q = &self.queues[i];
        let mut st = lock(&q.state);
        st.finished = true;
        if st.failed.is_none() {
            st.failed = failed;
        }
        drop(st);
        q.nonempty.notify_all();
    }

    fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
        for q in &self.queues {
            q.nonfull.notify_all();
            q.nonempty.notify_all();
        }
    }
}

/// The work of one morsel.
enum MorselWork {
    /// One disjoint page-run sub-range of a descendant(-or-self) scan.
    Range(KeyRange),
    /// A contiguous chunk of the context list; the task runs the full
    /// per-context axis stream for each, in order.
    Contexts(Vec<NodeEntry>),
}

/// Everything a morsel task owns. `Arc<MassStore>` (not a borrow) makes
/// the task `'static` for the pool; [`ParallelIter`]'s drop keeps the
/// clone transient by joining outstanding tasks before the query ends.
struct MorselTask {
    set: Arc<MorselSet>,
    pool: Arc<PoolShared>,
    store: Arc<MassStore>,
    index: usize,
    work: MorselWork,
    axis: Axis,
    filter: NodeFilter,
}

impl MorselTask {
    /// Runs the morsel to completion (or cancellation), then marks its
    /// queue finished — also on error or panic — and decrements the
    /// in-flight count last.
    fn run(self, unbounded: bool) {
        struct Guard {
            set: Arc<MorselSet>,
            index: usize,
            clean: bool,
        }
        impl Drop for Guard {
            fn drop(&mut self) {
                if !self.clean {
                    self.set
                        .finish(self.index, Some("scan worker panicked".into()));
                }
                self.set.inflight.fetch_sub(1, Ordering::AcqRel);
                // Wake a consumer possibly waiting for in-flight tasks
                // to drain (ParallelIter::drop waits on the queues).
                self.set.queues[self.index].nonempty.notify_all();
            }
        }
        let mut guard = Guard {
            set: Arc::clone(&self.set),
            index: self.index,
            clean: false,
        };
        let index = self.index;
        let set = Arc::clone(&self.set);
        let outcome = self.scan(unbounded);
        set.finish(index, outcome.err().map(|e| e.to_string()));
        guard.clean = true;
    }

    /// Drives the existing batched scan machinery over this morsel.
    fn scan(self, unbounded: bool) -> vamana_mass::Result<()> {
        match &self.work {
            MorselWork::Range(range) => {
                let mut stream = range_scan_stream(&self.store, range.clone(), self.filter);
                loop {
                    if self.set.is_cancelled() {
                        return Ok(());
                    }
                    let mut batch = Vec::with_capacity(BATCH_SIZE);
                    let n = stream.next_batch(&mut batch, BATCH_SIZE)?;
                    if n > 0 && !self.set.push(self.index, batch, &self.pool, unbounded) {
                        return Ok(());
                    }
                    if n < BATCH_SIZE {
                        return Ok(());
                    }
                }
            }
            MorselWork::Contexts(ctxs) => {
                for ctx in ctxs {
                    let mut stream =
                        axis_stream(&self.store, &ctx.key, ctx.kind, self.axis, self.filter)?;
                    loop {
                        if self.set.is_cancelled() {
                            return Ok(());
                        }
                        let mut batch = Vec::with_capacity(BATCH_SIZE);
                        let n = stream.next_batch(&mut batch, BATCH_SIZE)?;
                        if n > 0 && !self.set.push(self.index, batch, &self.pool, unbounded) {
                            return Ok(());
                        }
                        if n < BATCH_SIZE {
                            break;
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// What the engine hands the executor to enable a parallel scan: the
/// store pinned for worker threads, the shared pool, and the plan's
/// recorded choice.
pub struct ParallelHooks {
    /// The store, pinned so worker tasks are `'static`.
    pub store: Arc<MassStore>,
    /// The engine's shared scan pool.
    pub pool: Arc<ScanPool>,
    /// The optimizer's decision carried by the plan.
    pub choice: ParallelChoice,
}

/// The ordered-merge consumer: an [`OpIter`] variant with no borrow of
/// the store (workers own `Arc` clones). Drains morsel queues strictly
/// in morsel order, which *is* document/pipeline order by construction.
pub struct ParallelIter {
    /// The plan operator the parallel scan replaces (the top step) —
    /// analyze runs attribute merged rows to it at the dispatch site.
    pub(crate) op: crate::plan::OpId,
    set: Arc<MorselSet>,
    pool: Arc<ScanPool>,
    current: usize,
    buffer: Vec<NodeEntry>,
    buffer_pos: usize,
}

impl ParallelIter {
    /// Batched pull with the usual short-count-means-exhausted contract.
    pub fn next_batch(&mut self, out: &mut Vec<NodeEntry>, max: usize) -> Result<usize> {
        let start = out.len();
        while out.len() - start < max {
            if self.buffer_pos < self.buffer.len() {
                let take = (self.buffer.len() - self.buffer_pos).min(max - (out.len() - start));
                out.extend_from_slice(&self.buffer[self.buffer_pos..self.buffer_pos + take]);
                self.buffer_pos += take;
                continue;
            }
            if self.current >= self.set.queues.len() {
                break;
            }
            match self.pull_current()? {
                Some(batch) => {
                    self.buffer = batch;
                    self.buffer_pos = 0;
                }
                None => self.current += 1,
            }
        }
        Ok(out.len() - start)
    }

    /// Scalar pull (used only when a caller mixes modes; the engine
    /// engages parallel scans in batched mode).
    #[allow(clippy::should_implement_trait)] // fallible, like QueryStream::next
    pub fn next(&mut self) -> Result<Option<NodeEntry>> {
        let mut one = Vec::with_capacity(1);
        if self.next_batch(&mut one, 1)? == 0 {
            return Ok(None);
        }
        Ok(one.pop())
    }

    /// Next batch of the in-order morsel, or `None` when that morsel is
    /// finished. Helps drain the pool instead of sleeping whenever the
    /// morsel has nothing ready — the deadlock-freedom argument: the
    /// consumer can always run the very task it is waiting on.
    fn pull_current(&mut self) -> Result<Option<Vec<NodeEntry>>> {
        let mut stalled = false;
        loop {
            {
                let q = &self.set.queues[self.current];
                let mut st = lock(&q.state);
                if let Some(batch) = st.batches.pop_front() {
                    drop(st);
                    q.nonfull.notify_all();
                    return Ok(Some(batch));
                }
                if st.finished {
                    if let Some(msg) = st.failed.take() {
                        return Err(EngineError::Unsupported(format!(
                            "parallel scan failed: {msg}"
                        )));
                    }
                    return Ok(None);
                }
            }
            if !stalled {
                stalled = true;
                self.pool.shared.stalls.fetch_add(1, Ordering::Relaxed);
            }
            if !self.pool.help() {
                let q = &self.set.queues[self.current];
                let st = lock(&q.state);
                if st.batches.is_empty() && !st.finished {
                    let _unused = q
                        .nonempty
                        .wait_timeout(st, WAIT_TICK)
                        .unwrap_or_else(|p| p.into_inner());
                }
            }
        }
    }
}

impl Drop for ParallelIter {
    fn drop(&mut self) {
        // Cancel and reap: queued tasks run inline (and exit on the
        // cancel flag), blocked producers wake via the cancel broadcast.
        // After this loop no task holds a store Arc, so the engine's
        // `store_mut` regains exclusive access.
        self.set.cancel();
        while self.set.inflight.load(Ordering::Acquire) > 0 {
            if !self.pool.help() {
                std::thread::sleep(WAIT_TICK);
            }
        }
    }
}

/// Builds the parallel scan for the plan's top step, or returns `None`
/// when the runtime shape does not qualify (the executor then falls back
/// to the serial pipeline — same output, just undistributed).
pub(crate) fn build_parallel<'s>(
    env: Env<'_, 's>,
    top: crate::plan::OpId,
    hooks: &ParallelHooks,
) -> Result<Option<OpIter<'s>>> {
    let Operator::Step {
        axis,
        test,
        context,
        predicates,
        ..
    } = env.plan.op(top)
    else {
        return Ok(None);
    };
    if !predicates.is_empty() {
        return Ok(None);
    }
    let Some(filter) = env.node_filter(*axis, test) else {
        // Unknown name: provably empty, no point spinning up workers.
        return Ok(Some(OpIter::Anchor(None)));
    };
    let degree = (hooks.choice.degree as usize)
        .min(hooks.pool.width())
        .max(1);
    if degree < 2 {
        return Ok(None);
    }
    // The context stream (everything below the top step) runs serially —
    // it is almost always index-only and tiny next to the scan.
    let mut contexts = Vec::new();
    match context {
        Some(c) => {
            let mut it = build_iter(env, *c, None)?;
            while let Some(t) = it.next(env)? {
                contexts.push(t);
            }
        }
        None => contexts.push(env.root_ctx.clone()),
    }
    let target = degree * MORSELS_PER_WORKER;
    let work: Vec<MorselWork> = if contexts.is_empty() {
        return Ok(Some(OpIter::Anchor(None)));
    } else if contexts.len() == 1 {
        // Single context: split the axis key range itself into disjoint
        // page runs. Only descendant(-or-self) maps to one contiguous
        // range; anything else falls back to serial.
        let ctx = &contexts[0];
        if ctx.kind == RecordKind::Attribute {
            return Ok(None);
        }
        let range = match axis {
            Axis::Descendant => KeyRange::descendants(&ctx.key),
            Axis::DescendantOrSelf => KeyRange::subtree(&ctx.key),
            _ => return Ok(None),
        };
        let morsels = hooks.store.partition_range(&range, target);
        if morsels.len() < 2 {
            return Ok(None);
        }
        morsels.into_iter().map(MorselWork::Range).collect()
    } else {
        // Many contexts: contiguous context chunks preserve pipeline
        // order under concatenation.
        let chunks = target.min(contexts.len());
        let per = contexts.len().div_ceil(chunks);
        let mut work = Vec::with_capacity(chunks);
        let mut rest = contexts;
        while !rest.is_empty() {
            let tail = rest.split_off(per.min(rest.len()));
            work.push(MorselWork::Contexts(std::mem::replace(&mut rest, tail)));
        }
        work
    };
    let set = Arc::new(MorselSet::new(work.len()));
    for (index, w) in work.into_iter().enumerate() {
        set.inflight.fetch_add(1, Ordering::AcqRel);
        let task = MorselTask {
            set: Arc::clone(&set),
            pool: Arc::clone(&hooks.pool.shared),
            store: Arc::clone(&hooks.store),
            index,
            work: w,
            axis: *axis,
            filter,
        };
        hooks
            .pool
            .submit(Box::new(move |unbounded| task.run(unbounded)));
    }
    Ok(Some(OpIter::Parallel(Box::new(ParallelIter {
        op: top,
        set,
        pool: Arc::clone(&hooks.pool),
        current: 0,
        buffer: Vec::new(),
        buffer_pos: 0,
    }))))
}
