//! The XPath 1.0 value model: node-sets, strings, numbers, booleans,
//! with the spec's coercion and comparison rules, plus the core function
//! library.

use crate::error::{EngineError, Result};
use crate::plan::BinOp;
use vamana_mass::{MassStore, NodeEntry, RecordKind};

/// A computed XPath value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A node-set in document order.
    Nodes(Vec<NodeEntry>),
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// `boolean()` coercion.
    pub fn boolean(&self) -> bool {
        match self {
            Value::Nodes(ns) => !ns.is_empty(),
            Value::Str(s) => !s.is_empty(),
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Bool(b) => *b,
        }
    }

    /// `string()` coercion (node-set → string-value of its first node).
    pub fn string(&self, store: &MassStore) -> Result<String> {
        Ok(match self {
            Value::Nodes(ns) => match ns.first() {
                Some(n) => node_string_value(store, n)?,
                None => String::new(),
            },
            Value::Str(s) => s.clone(),
            Value::Num(n) => format_number(*n),
            Value::Bool(b) => b.to_string(),
        })
    }

    /// `number()` coercion.
    pub fn number(&self, store: &MassStore) -> Result<f64> {
        Ok(match self {
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Num(n) => *n,
            other => str_to_number(&other.string(store)?),
        })
    }
}

/// The XPath string-value of a node.
pub fn node_string_value(store: &MassStore, node: &NodeEntry) -> Result<String> {
    Ok(store.string_value(&node.key)?)
}

/// The expanded name of a node (`name()`), empty for unnamed kinds.
pub fn node_name(store: &MassStore, node: &NodeEntry) -> String {
    node.name
        .map(|id| store.names().resolve(id).to_string())
        .unwrap_or_default()
}

/// XPath `string(number)` formatting: integers print without a decimal
/// point.
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".to_string()
        } else {
            "-Infinity".to_string()
        }
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// XPath `number(string)`: trims whitespace, `NaN` on failure.
pub fn str_to_number(s: &str) -> f64 {
    s.trim().parse::<f64>().unwrap_or(f64::NAN)
}

fn cmp_numbers(op: BinOp, a: f64, b: f64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        BinOp::And | BinOp::Or => unreachable!("boolean connectors are not comparisons"),
    }
}

/// XPath 1.0 §3.4 comparison between two values.
pub fn compare(store: &MassStore, op: BinOp, left: &Value, right: &Value) -> Result<bool> {
    debug_assert!(!matches!(op, BinOp::And | BinOp::Or));
    let relational = matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge);
    match (left, right) {
        (Value::Nodes(ls), Value::Nodes(rs)) => {
            // Existentially quantified over both sides.
            for l in ls {
                let lv = node_string_value(store, l)?;
                for r in rs {
                    let rv = node_string_value(store, r)?;
                    let hit = if relational {
                        cmp_numbers(op, str_to_number(&lv), str_to_number(&rv))
                    } else {
                        cmp_numbers(op, 0.0, if lv == rv { 0.0 } else { 1.0 })
                    };
                    if hit {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
        (Value::Nodes(ns), other) | (other, Value::Nodes(ns)) => {
            let flipped = !matches!(left, Value::Nodes(_));
            let eff_op = if flipped { flip(op) } else { op };
            match other {
                Value::Bool(b) => {
                    let l = !ns.is_empty();
                    Ok(cmp_numbers(
                        eff_op,
                        if l { 1.0 } else { 0.0 },
                        if *b { 1.0 } else { 0.0 },
                    ))
                }
                Value::Num(n) => {
                    for node in ns {
                        let v = str_to_number(&node_string_value(store, node)?);
                        if cmp_numbers(eff_op, v, *n) {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                }
                Value::Str(s) => {
                    for node in ns {
                        let v = node_string_value(store, node)?;
                        let hit = if relational {
                            cmp_numbers(eff_op, str_to_number(&v), str_to_number(s))
                        } else {
                            let eq = v == *s;
                            matches!(eff_op, BinOp::Eq) == eq
                        };
                        if hit {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                }
                Value::Nodes(_) => unreachable!("handled above"),
            }
        }
        (l, r) => {
            if relational || matches!(l, Value::Num(_)) || matches!(r, Value::Num(_)) {
                if matches!(l, Value::Bool(_)) || matches!(r, Value::Bool(_)) {
                    if relational {
                        return Ok(cmp_numbers(op, l.number(store)?, r.number(store)?));
                    }
                    return Ok(matches!(op, BinOp::Eq) == (l.boolean() == r.boolean()));
                }
                Ok(cmp_numbers(op, l.number(store)?, r.number(store)?))
            } else if matches!(l, Value::Bool(_)) || matches!(r, Value::Bool(_)) {
                Ok(matches!(op, BinOp::Eq) == (l.boolean() == r.boolean()))
            } else {
                let eq = l.string(store)? == r.string(store)?;
                Ok(matches!(op, BinOp::Eq) == eq)
            }
        }
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Dispatches an XPath core-library function.
///
/// `position`/`size` are the dynamic context; `ctx` is the context node.
#[allow(clippy::too_many_arguments)]
pub fn call_function(
    store: &MassStore,
    name: &str,
    args: &[Value],
    ctx: &NodeEntry,
    position: usize,
    size: usize,
) -> Result<Value> {
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EngineError::BadFunctionCall {
                name: name.to_string(),
                reason: format!("expected {n} argument(s), got {}", args.len()),
            })
        }
    };
    let arg_or_ctx_string = |args: &[Value]| -> Result<String> {
        match args.first() {
            Some(v) => v.string(store),
            None => node_string_value(store, ctx),
        }
    };
    Ok(match name {
        "position" => {
            arity(0)?;
            Value::Num(position as f64)
        }
        "last" => {
            arity(0)?;
            Value::Num(size as f64)
        }
        "count" => {
            arity(1)?;
            match &args[0] {
                Value::Nodes(ns) => Value::Num(ns.len() as f64),
                _ => {
                    return Err(EngineError::BadFunctionCall {
                        name: "count".into(),
                        reason: "argument must be a node-set".into(),
                    })
                }
            }
        }
        "not" => {
            arity(1)?;
            Value::Bool(!args[0].boolean())
        }
        "true" => {
            arity(0)?;
            Value::Bool(true)
        }
        "false" => {
            arity(0)?;
            Value::Bool(false)
        }
        "boolean" => {
            arity(1)?;
            Value::Bool(args[0].boolean())
        }
        "string" => Value::Str(arg_or_ctx_string(args)?),
        "number" => match args.first() {
            Some(v) => Value::Num(v.number(store)?),
            None => Value::Num(str_to_number(&node_string_value(store, ctx)?)),
        },
        "concat" => {
            if args.len() < 2 {
                return Err(EngineError::BadFunctionCall {
                    name: "concat".into(),
                    reason: "needs at least two arguments".into(),
                });
            }
            let mut out = String::new();
            for a in args {
                out.push_str(&a.string(store)?);
            }
            Value::Str(out)
        }
        "contains" => {
            arity(2)?;
            Value::Bool(args[0].string(store)?.contains(&args[1].string(store)?))
        }
        "starts-with" => {
            arity(2)?;
            Value::Bool(args[0].string(store)?.starts_with(&args[1].string(store)?))
        }
        "string-length" => Value::Num(arg_or_ctx_string(args)?.chars().count() as f64),
        "normalize-space" => {
            let s = arg_or_ctx_string(args)?;
            Value::Str(s.split_whitespace().collect::<Vec<_>>().join(" "))
        }
        "substring" => {
            if args.len() < 2 || args.len() > 3 {
                return Err(EngineError::BadFunctionCall {
                    name: "substring".into(),
                    reason: "takes two or three arguments".into(),
                });
            }
            let s = args[0].string(store)?;
            let start = args[1].number(store)?.round();
            let len = match args.get(2) {
                Some(v) => v.number(store)?.round(),
                None => f64::INFINITY,
            };
            let chars: Vec<char> = s.chars().collect();
            let mut out = String::new();
            for (i, c) in chars.iter().enumerate() {
                let pos = (i + 1) as f64;
                if pos >= start && pos < start + len {
                    out.push(*c);
                }
            }
            Value::Str(out)
        }
        "substring-before" => {
            arity(2)?;
            let s = args[0].string(store)?;
            let pat = args[1].string(store)?;
            Value::Str(s.find(&pat).map(|i| s[..i].to_string()).unwrap_or_default())
        }
        "substring-after" => {
            arity(2)?;
            let s = args[0].string(store)?;
            let pat = args[1].string(store)?;
            Value::Str(
                s.find(&pat)
                    .map(|i| s[i + pat.len()..].to_string())
                    .unwrap_or_default(),
            )
        }
        "name" | "local-name" => match args.first() {
            Some(Value::Nodes(ns)) => {
                let full = ns.first().map(|n| node_name(store, n)).unwrap_or_default();
                Value::Str(strip_prefix_if(name == "local-name", full))
            }
            None => Value::Str(strip_prefix_if(name == "local-name", node_name(store, ctx))),
            Some(_) => {
                return Err(EngineError::BadFunctionCall {
                    name: name.to_string(),
                    reason: "argument must be a node-set".into(),
                })
            }
        },
        "sum" => {
            arity(1)?;
            match &args[0] {
                Value::Nodes(ns) => {
                    let mut total = 0.0;
                    for n in ns {
                        total += str_to_number(&node_string_value(store, n)?);
                    }
                    Value::Num(total)
                }
                _ => {
                    return Err(EngineError::BadFunctionCall {
                        name: "sum".into(),
                        reason: "argument must be a node-set".into(),
                    })
                }
            }
        }
        "floor" => {
            arity(1)?;
            Value::Num(args[0].number(store)?.floor())
        }
        "ceiling" => {
            arity(1)?;
            Value::Num(args[0].number(store)?.ceil())
        }
        "round" => {
            arity(1)?;
            Value::Num(args[0].number(store)?.round())
        }
        other => return Err(EngineError::Unsupported(format!("function {other}()"))),
    })
}

fn strip_prefix_if(strip: bool, name: String) -> String {
    if strip {
        name.rsplit(':').next().unwrap_or("").to_string()
    } else {
        name
    }
}

/// True if `node` is a text node (used by value-step kind filters).
pub fn is_text(node: &NodeEntry) -> bool {
    node.kind == RecordKind::Text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MassStore {
        let mut s = MassStore::open_memory();
        s.load_xml("t", "<r><a>12</a><b>hello</b><a>3</a></r>")
            .unwrap();
        s
    }

    fn nodes_named(s: &MassStore, name: &str) -> Vec<NodeEntry> {
        let id = s.name_id(name).unwrap();
        s.name_index()
            .elements(id)
            .iter()
            .map(|k| NodeEntry {
                key: vamana_flex::FlexKey::from_flat(k.to_vec()),
                kind: RecordKind::Element,
                name: Some(id),
            })
            .collect()
    }

    #[test]
    fn boolean_coercions() {
        assert!(!Value::Str(String::new()).boolean());
        assert!(Value::Str("x".into()).boolean());
        assert!(!Value::Num(0.0).boolean());
        assert!(!Value::Num(f64::NAN).boolean());
        assert!(Value::Num(-1.0).boolean());
        assert!(!Value::Nodes(vec![]).boolean());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(3.5), "3.5");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(-0.0), "0");
    }

    #[test]
    fn string_to_number() {
        assert_eq!(str_to_number(" 42 "), 42.0);
        assert!(str_to_number("abc").is_nan());
    }

    #[test]
    fn nodeset_vs_string_equality() {
        let s = store();
        let a = Value::Nodes(nodes_named(&s, "a"));
        assert!(compare(&s, BinOp::Eq, &a, &Value::Str("12".into())).unwrap());
        assert!(compare(&s, BinOp::Eq, &a, &Value::Str("3".into())).unwrap());
        assert!(!compare(&s, BinOp::Eq, &a, &Value::Str("99".into())).unwrap());
        // != is also existential: some a != "12" (namely "3").
        assert!(compare(&s, BinOp::Ne, &a, &Value::Str("12".into())).unwrap());
    }

    #[test]
    fn nodeset_vs_number_relational() {
        let s = store();
        let a = Value::Nodes(nodes_named(&s, "a"));
        assert!(compare(&s, BinOp::Gt, &a, &Value::Num(10.0)).unwrap()); // 12 > 10
        assert!(compare(&s, BinOp::Lt, &a, &Value::Num(10.0)).unwrap()); // 3 < 10
        assert!(!compare(&s, BinOp::Gt, &a, &Value::Num(100.0)).unwrap());
        // Flipped operand order flips the operator.
        assert!(compare(&s, BinOp::Lt, &Value::Num(10.0), &a).unwrap()); // 10 < 12
    }

    #[test]
    fn nodeset_vs_nodeset_equality() {
        let s = store();
        let a = Value::Nodes(nodes_named(&s, "a"));
        let b = Value::Nodes(nodes_named(&s, "b"));
        assert!(!compare(&s, BinOp::Eq, &a, &b).unwrap());
        assert!(compare(&s, BinOp::Eq, &a, &a).unwrap());
    }

    #[test]
    fn scalar_comparisons() {
        let s = store();
        assert!(compare(
            &s,
            BinOp::Eq,
            &Value::Str("x".into()),
            &Value::Str("x".into())
        )
        .unwrap());
        assert!(compare(&s, BinOp::Lt, &Value::Num(1.0), &Value::Num(2.0)).unwrap());
        // String compared to number coerces to number.
        assert!(compare(&s, BinOp::Eq, &Value::Str("2".into()), &Value::Num(2.0)).unwrap());
        // Booleans dominate equality.
        assert!(compare(&s, BinOp::Eq, &Value::Bool(true), &Value::Str("x".into())).unwrap());
    }

    #[test]
    fn core_functions() {
        let s = store();
        let ctx = nodes_named(&s, "b").remove(0);
        let call = |name: &str, args: Vec<Value>| call_function(&s, name, &args, &ctx, 2, 5);
        assert!(matches!(call("position", vec![]).unwrap(), Value::Num(n) if n == 2.0));
        assert!(matches!(call("last", vec![]).unwrap(), Value::Num(n) if n == 5.0));
        assert!(
            matches!(call("count", vec![Value::Nodes(nodes_named(&s, "a"))]).unwrap(), Value::Num(n) if n == 2.0)
        );
        assert!(matches!(
            call("not", vec![Value::Bool(false)]).unwrap(),
            Value::Bool(true)
        ));
        assert!(matches!(
            call(
                "contains",
                vec![Value::Str("hello".into()), Value::Str("ell".into())]
            )
            .unwrap(),
            Value::Bool(true)
        ));
        assert!(matches!(
            call(
                "starts-with",
                vec![Value::Str("hello".into()), Value::Str("he".into())]
            )
            .unwrap(),
            Value::Bool(true)
        ));
        assert!(matches!(call("string-length", vec![]).unwrap(), Value::Num(n) if n == 5.0)); // "hello"
        assert!(
            matches!(call("sum", vec![Value::Nodes(nodes_named(&s, "a"))]).unwrap(), Value::Num(n) if n == 15.0)
        );
        assert!(matches!(call("name", vec![]).unwrap(), Value::Str(n) if n == "b"));
        assert!(matches!(call("floor", vec![Value::Num(2.7)]).unwrap(), Value::Num(n) if n == 2.0));
        assert!(
            matches!(call("normalize-space", vec![Value::Str("  a   b ".into())]).unwrap(), Value::Str(v) if v == "a b")
        );
        assert!(
            matches!(call("substring", vec![Value::Str("12345".into()), Value::Num(2.0), Value::Num(3.0)]).unwrap(), Value::Str(v) if v == "234")
        );
        assert!(
            matches!(call("substring-before", vec![Value::Str("a=b".into()), Value::Str("=".into())]).unwrap(), Value::Str(v) if v == "a")
        );
        assert!(
            matches!(call("substring-after", vec![Value::Str("a=b".into()), Value::Str("=".into())]).unwrap(), Value::Str(v) if v == "b")
        );
    }

    #[test]
    fn function_errors() {
        let s = store();
        let ctx = nodes_named(&s, "b").remove(0);
        assert!(call_function(&s, "count", &[], &ctx, 1, 1).is_err());
        assert!(call_function(&s, "count", &[Value::Num(1.0)], &ctx, 1, 1).is_err());
        assert!(call_function(&s, "frobnicate", &[], &ctx, 1, 1).is_err());
        assert!(call_function(&s, "concat", &[Value::Str("a".into())], &ctx, 1, 1).is_err());
    }
}
