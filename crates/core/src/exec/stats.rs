//! Per-operator runtime actuals for `EXPLAIN ANALYZE`.
//!
//! An [`ExecStats`] tree is one atomic-counter slot per plan operator,
//! indexed by [`OpId`]. It is opt-in per run: [`super::Env::stats`] is
//! `None` on the normal query path (no counter traffic at all — the
//! zero-cost-when-disabled contract) and `Some` only under
//! `Engine::analyze`, where cursors record what they actually did:
//!
//! - `rows` — tuples produced by the operator. Identical across the
//!   scalar, batched, and parallel pipelines (they produce the same
//!   tuple sequence), which is what the DOM-oracle tests pin down.
//! - `invocations` — cursor pulls (`next` calls / `next_batch` calls;
//!   for predicate operators, context tuples tested).
//! - `batches` — `next_batch` calls that reached the operator. Mode
//!   dependent by nature (scalar mode reports 0).
//! - `nanos` — inclusive wall time attributed at batch granularity
//!   (a batched pull's clock includes the child pulls it triggers).
//! - `probes` / `pins` — buffer-pool page requests and batched page
//!   pins, attributed inclusively per batch from pool counter deltas.
//!
//! Counters are relaxed atomics so morsel workers on the parallel path
//! aggregate correctly without synchronization beyond the store's own;
//! a finished run is read through [`ExecStats::snapshot`].

use crate::plan::OpId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one operator (all relaxed atomics).
#[derive(Debug, Default)]
pub struct OpActuals {
    /// Cursor pulls (or, for predicates, context tuples tested).
    pub invocations: AtomicU64,
    /// Tuples produced — the mode-independent actual cardinality.
    pub rows: AtomicU64,
    /// Batched pulls that reached this operator.
    pub batches: AtomicU64,
    /// Inclusive wall time, nanoseconds, batch granularity.
    pub nanos: AtomicU64,
    /// Buffer-pool page requests attributed to this operator (inclusive).
    pub probes: AtomicU64,
    /// Batched page pins attributed to this operator (inclusive).
    pub pins: AtomicU64,
}

impl OpActuals {
    fn snapshot(&self) -> OpActualsSnapshot {
        OpActualsSnapshot {
            invocations: self.invocations.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            nanos: self.nanos.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            pins: self.pins.load(Ordering::Relaxed),
        }
    }
}

/// The per-operator actuals tree for one run. One slot per plan
/// operator, parallel to the plan's arena.
#[derive(Debug, Default)]
pub struct ExecStats {
    ops: Vec<OpActuals>,
}

impl ExecStats {
    /// A stats tree with `len` zeroed slots (`len` = `QueryPlan::len()`).
    pub fn new(len: usize) -> Self {
        ExecStats {
            ops: (0..len).map(|_| OpActuals::default()).collect(),
        }
    }

    /// Number of operator slots.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The live counters for `id`, if the slot exists.
    #[inline]
    pub fn op(&self, id: OpId) -> Option<&OpActuals> {
        self.ops.get(id.index())
    }

    /// Adds `n` produced tuples to `id`.
    #[inline]
    pub fn add_rows(&self, id: OpId, n: u64) {
        if let Some(op) = self.op(id) {
            op.rows.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one cursor pull of `id`.
    #[inline]
    pub fn add_invocation(&self, id: OpId) {
        if let Some(op) = self.op(id) {
            op.invocations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one batched pull of `id`.
    #[inline]
    pub fn add_batch(&self, id: OpId) {
        if let Some(op) = self.op(id) {
            op.batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds inclusive wall time to `id`.
    #[inline]
    pub fn add_nanos(&self, id: OpId, n: u64) {
        if let Some(op) = self.op(id) {
            op.nanos.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds inclusive buffer-pool probe/pin deltas to `id`.
    #[inline]
    pub fn add_probe_pins(&self, id: OpId, probes: u64, pins: u64) {
        if let Some(op) = self.op(id) {
            op.probes.fetch_add(probes, Ordering::Relaxed);
            op.pins.fetch_add(pins, Ordering::Relaxed);
        }
    }

    /// Adds predicate bookkeeping to `id`: `tested` context tuples in,
    /// `kept` tuples out.
    #[inline]
    pub fn add_predicate(&self, id: OpId, tested: u64, kept: u64) {
        if let Some(op) = self.op(id) {
            op.invocations.fetch_add(tested, Ordering::Relaxed);
            op.rows.fetch_add(kept, Ordering::Relaxed);
        }
    }

    /// A plain-value snapshot of every slot.
    pub fn snapshot(&self) -> ExecStatsSnapshot {
        ExecStatsSnapshot {
            ops: self.ops.iter().map(OpActuals::snapshot).collect(),
        }
    }
}

/// Plain-value counters for one operator (see [`OpActuals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpActualsSnapshot {
    /// Cursor pulls (or context tuples tested for predicates).
    pub invocations: u64,
    /// Tuples produced — mode independent.
    pub rows: u64,
    /// Batched pulls.
    pub batches: u64,
    /// Inclusive wall time in nanoseconds.
    pub nanos: u64,
    /// Inclusive buffer-pool page requests.
    pub probes: u64,
    /// Inclusive batched page pins.
    pub pins: u64,
}

/// Frozen per-operator actuals of a finished run, indexed like the plan
/// arena.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStatsSnapshot {
    /// One entry per plan operator, in arena order.
    pub ops: Vec<OpActualsSnapshot>,
}

impl ExecStatsSnapshot {
    /// The counters for `id`, if the slot exists.
    pub fn op(&self, id: OpId) -> Option<&OpActualsSnapshot> {
        self.ops.get(id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_ids_are_ignored() {
        let stats = ExecStats::new(2);
        stats.add_rows(OpId(7), 5);
        stats.add_invocation(OpId(7));
        let snap = stats.snapshot();
        assert_eq!(snap.ops.len(), 2);
        assert!(snap.op(OpId(7)).is_none());
        assert_eq!(snap.op(OpId(0)).unwrap().rows, 0);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = ExecStats::new(3);
        let id = OpId(1);
        stats.add_rows(id, 4);
        stats.add_rows(id, 6);
        stats.add_batch(id);
        stats.add_nanos(id, 100);
        stats.add_probe_pins(id, 3, 1);
        stats.add_predicate(OpId(2), 10, 7);
        let snap = stats.snapshot();
        let op = snap.op(id).unwrap();
        assert_eq!(op.rows, 10);
        assert_eq!(op.batches, 1);
        assert_eq!(op.nanos, 100);
        assert_eq!(op.probes, 3);
        assert_eq!(op.pins, 1);
        let pred = snap.op(OpId(2)).unwrap();
        assert_eq!(pred.invocations, 10);
        assert_eq!(pred.rows, 7);
    }
}
