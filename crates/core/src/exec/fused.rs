//! Execution of [`Operator::FusedScan`]: a whole step chain evaluated
//! in one page-pinned scan.
//!
//! Instead of materializing a node set per location step, the fused
//! cursor walks the clustered index once (per context anchor) and runs
//! a small path-matching automaton over every record, entirely on FLEX
//! flat-key arithmetic:
//!
//! * the automaton keeps the stack of element ancestors of the current
//!   scan position; each stack entry carries a bitmask of the spine
//!   levels that ancestor matched, plus the OR over the masks of *its*
//!   ancestors — so "some ancestor matched level `l-1`" (descendant
//!   edge) and "my parent matched level `l-1`" (child edge) are both
//!   O(1) bit tests;
//! * child vs descendant containment is flat-key prefix arithmetic
//!   ([`FlexKey::is_ancestor_of`], level = terminator count) — no data
//!   page is touched beyond the single clustered scan;
//! * existential predicate branches (`[b[c]]`) are verified per
//!   matching record through the name index
//!   (`verify_pred`), the same index-only probe
//!   `exists_fast_path` uses for pushed-down predicates.
//!
//! The record feed itself goes through
//! [`MassCursor::next_batch_where`], so every page the chain touches is
//! pinned exactly once regardless of how many steps were collapsed.

use super::{anchor_for, build_iter, Env, OpIter, OpState};
use crate::error::{EngineError, Result};
use crate::plan::{ContextSource, FusedNode, OpId, Operator, TestSpec};
use vamana_flex::{Axis, FlexKey, KeyRange};
use vamana_mass::axes::NodeFilter;
use vamana_mass::{MassCursor, MassStore, NodeEntry, NodeRecord, RecordKind};

/// One resolved spine level of the fused chain.
struct LevelSpec {
    /// Descendant (`true`) or child (`false`) edge from the previous
    /// level (or the scan anchor for level 0).
    descendant: bool,
    /// Node test resolved against the store's name table.
    filter: NodeFilter,
    /// For level 0 only: the element name id, used to narrow the scan
    /// range to the envelope of the name's clustered keys.
    name: Option<vamana_mass::NameId>,
    /// Resolved existential predicate branches.
    preds: Vec<PredNode>,
}

/// A resolved predicate branch node (Named tests only — the fusion
/// pass admits nothing else into predicates).
struct PredNode {
    descendant: bool,
    name: vamana_mass::NameId,
    children: Vec<PredNode>,
}

/// Number of terminator bytes in a flat key = the key's level.
fn flat_level(flat: &[u8]) -> usize {
    flat.iter().filter(|&&b| b == 0).count()
}

/// Index-only existential check: does `base` have a descendant/child
/// subtree matching the branch? Every probe is a name-index range scan
/// plus flat-key level arithmetic.
fn verify_pred(store: &MassStore, base: &FlexKey, node: &PredNode) -> bool {
    let range = KeyRange::descendants(base);
    let want_level = (!node.descendant).then(|| base.level() + 1);
    store
        .name_index()
        .elements(node.name)
        .iter_in(&range)
        .any(|flat| {
            if let Some(wl) = want_level {
                if flat_level(flat) != wl {
                    return false;
                }
            }
            node.children.is_empty() || {
                let key = FlexKey::from_flat(flat.to_vec());
                node.children.iter().all(|c| verify_pred(store, &key, c))
            }
        })
}

/// One ancestor on the automaton's stack.
struct StackEntry {
    key: FlexKey,
    /// Spine levels this element matched.
    mask: u32,
    /// OR of `mask` over this entry and all its stacked ancestors.
    cum: u32,
}

/// The per-anchor path-matching automaton.
struct Matcher {
    anchor_level: usize,
    stack: Vec<StackEntry>,
}

impl Matcher {
    fn reset(&mut self, anchor_level: usize) {
        self.anchor_level = anchor_level;
        self.stack.clear();
    }

    /// Feeds one record in document order; returns whether it matched
    /// the full spine (and thus is an output tuple).
    fn feed(&mut self, store: &MassStore, levels: &[LevelSpec], rec: &NodeRecord) -> bool {
        if rec.kind == RecordKind::Attribute {
            return false;
        }
        while let Some(top) = self.stack.last() {
            if top.key.is_ancestor_of(&rec.key) {
                break;
            }
            self.stack.pop();
        }
        let (cum, parent_mask, parent_level) = match self.stack.last() {
            Some(top) => (top.cum, top.mask, top.key.level()),
            None => (0, 0, self.anchor_level),
        };
        let rec_level = rec.key.level();
        let mut mask = 0u32;
        for (l, level) in levels.iter().enumerate() {
            let reachable = if l == 0 {
                // Edge from the anchor: every record in the scan range is
                // a descendant of it; child edges additionally pin the
                // level.
                level.descendant || rec_level == self.anchor_level + 1
            } else if level.descendant {
                cum & (1 << (l - 1)) != 0
            } else {
                // The stack top is the record's parent exactly when its
                // level is one less (the stack holds all element
                // ancestors seen in range).
                parent_level + 1 == rec_level && parent_mask & (1 << (l - 1)) != 0
            };
            if !reachable || !level.filter.matches_parts(rec.kind, rec.name) {
                continue;
            }
            if !level.preds.iter().all(|p| verify_pred(store, &rec.key, p)) {
                continue;
            }
            mask |= 1 << l;
        }
        let emit = mask & (1 << (levels.len() - 1)) != 0;
        // Only elements can have children, so only they go on the stack.
        if rec.kind == RecordKind::Element {
            self.stack.push(StackEntry {
                key: rec.key.clone(),
                mask,
                cum: cum | mask,
            });
        }
        emit
    }
}

/// Cursor for a [`Operator::FusedScan`]: one clustered scan per context
/// anchor, the whole chain matched per record.
pub struct FusedIter<'s> {
    op: OpId,
    state: OpState,
    /// Context stream, drained once at initialization.
    context: Option<Box<OpIter<'s>>>,
    /// `true` when a spine or predicate name does not occur in the
    /// store — the chain is provably empty.
    empty: bool,
    levels: Vec<LevelSpec>,
    contexts: Vec<NodeEntry>,
    ctx_pos: usize,
    cursor: Option<MassCursor<'s>>,
    matcher: Matcher,
    /// Fallback for nested (overlapping) context anchors: the full
    /// result, sorted and deduplicated, served in chunks.
    materialized: Option<Vec<NodeEntry>>,
    mat_pos: usize,
    /// Scalar-`next` staging buffer.
    scratch: Vec<NodeEntry>,
    scratch_pos: usize,
}

impl<'s> FusedIter<'s> {
    /// Builds the cursor: resolves every spine test and predicate name
    /// once, then waits for the first pull to drain contexts.
    pub fn build(env: Env<'_, 's>, id: OpId, outer: Option<&NodeEntry>) -> Result<FusedIter<'s>> {
        let Operator::FusedScan { spine, context } = env.plan.op(id) else {
            return Err(EngineError::Unsupported(
                "FusedIter over a non-fused operator".into(),
            ));
        };
        let context_iter = match context {
            Some(c) => Some(Box::new(build_iter(env, *c, outer)?)),
            None => None,
        };
        let mut empty = false;
        let mut levels = Vec::with_capacity(spine.len());
        for node in spine {
            let filter = match env.node_filter(Axis::Child, &node.test) {
                Some(f) => f,
                None => {
                    empty = true;
                    NodeFilter::any()
                }
            };
            let name = match &node.test {
                TestSpec::Named(n) => env.store.name_id(n),
                _ => None,
            };
            let mut preds = Vec::with_capacity(node.predicates.len());
            for p in &node.predicates {
                match resolve_pred(env.store, p) {
                    Some(Some(resolved)) => preds.push(resolved),
                    Some(None) => empty = true,
                    None => {
                        return Err(EngineError::Unsupported(
                            "fused predicate branch with a non-name test".into(),
                        ))
                    }
                }
            }
            levels.push(LevelSpec {
                descendant: node.descendant,
                filter,
                name,
                preds,
            });
        }
        if levels.is_empty() || levels.len() > 32 {
            return Err(EngineError::Unsupported(
                "fused chain length outside 1..=32".into(),
            ));
        }
        Ok(FusedIter {
            op: id,
            state: OpState::Initial,
            context: context_iter,
            empty,
            levels,
            contexts: Vec::new(),
            ctx_pos: 0,
            cursor: None,
            matcher: Matcher {
                anchor_level: 0,
                stack: Vec::new(),
            },
            materialized: None,
            mat_pos: 0,
            scratch: Vec::new(),
            scratch_pos: 0,
        })
    }

    /// Drains the context stream (or anchors at the query root), picks
    /// streaming vs materialized mode, and opens the first scan.
    fn init(&mut self, env: Env<'_, 's>) -> Result<()> {
        self.state = OpState::Fetching;
        if self.empty {
            self.state = OpState::OutOfTuples;
            return Ok(());
        }
        match self.context.take() {
            Some(mut ctx) => {
                while let Some(t) = ctx.next(env)? {
                    self.contexts.push(t);
                }
                self.contexts.sort_by(|a, b| a.key.cmp(&b.key));
                self.contexts.dedup_by(|a, b| a.key == b.key);
            }
            None => self
                .contexts
                .push(anchor_for(env, ContextSource::QueryRoot, None)),
        }
        if self.contexts.is_empty() {
            self.state = OpState::OutOfTuples;
            return Ok(());
        }
        // Nested anchors would emit the same record from two scans (with
        // chain matches relative to different anchors), out of global
        // document order — materialize and dedup in that rare case.
        let nested = self
            .contexts
            .windows(2)
            .any(|w| w[0].key.is_ancestor_of(&w[1].key));
        if nested {
            let mut all = Vec::new();
            loop {
                let before = all.len();
                self.fill_streaming(env, &mut all, usize::MAX)?;
                if all.len() == before {
                    break;
                }
            }
            all.sort_by(|a, b| a.key.cmp(&b.key));
            all.dedup_by(|a, b| a.key == b.key);
            self.materialized = Some(all);
        }
        Ok(())
    }

    /// Opens the scan for the next context anchor. Returns `false` when
    /// every anchor is exhausted.
    fn advance_context(&mut self, env: Env<'_, 's>) -> bool {
        while self.ctx_pos < self.contexts.len() {
            let anchor = &self.contexts[self.ctx_pos];
            self.ctx_pos += 1;
            let base = KeyRange::descendants(&anchor.key);
            let range = match self.narrow_range(env, anchor, &base) {
                Some(r) => r,
                None => continue, // provably empty below this anchor
            };
            if range.is_empty() {
                continue;
            }
            self.matcher.reset(anchor.key.level());
            self.cursor = Some(MassCursor::new(env.store, range));
            return true;
        }
        false
    }

    /// Narrows the scan to the envelope of level 0's clustered name keys
    /// below `anchor` — a chain headed by a named step only ever
    /// produces records between the first matching element and the end
    /// of the last one's subtree. Returns `None` when the name does not
    /// occur below the anchor at all.
    fn narrow_range(
        &self,
        env: Env<'_, 's>,
        anchor: &NodeEntry,
        base: &KeyRange,
    ) -> Option<KeyRange> {
        let Some(name) = self.levels[0].name else {
            return Some(base.clone());
        };
        let keys = env.store.name_index().elements(name).slice_in(base);
        let (first, last) = if self.levels[0].descendant {
            let first = keys.first()?;
            let deepest_last = keys.last()?;
            // Matches can nest: an earlier, shallower match's subtree
            // may extend past the last match's. Any match reaching
            // beyond `subtree_upper(last)` must contain `last` (a
            // disjoint earlier subtree ends before `last` starts), so
            // the widest subtree belongs to the first ancestor-or-self
            // of `last` in the slice — flat ancestor keys are byte
            // prefixes of their descendants'.
            let outer = keys
                .iter()
                .find(|k| deepest_last.starts_with(&k[..]))
                .unwrap_or(deepest_last);
            (first, outer)
        } else {
            // Child edge: every match sits at the anchor's child level,
            // so subtrees are disjoint and the last one ends the range.
            let want = anchor.key.level() + 1;
            let first = keys.iter().find(|k| flat_level(k) == want)?;
            let last = keys.iter().rev().find(|k| flat_level(k) == want)?;
            (first, last)
        };
        let envelope = KeyRange {
            lo: first.clone(),
            hi: FlexKey::from_flat(last.clone()).subtree_upper(),
        };
        Some(envelope.intersect(base))
    }

    /// The streaming engine: fills `out` with up to `max` matches,
    /// advancing through context anchors as scans drain. A short count
    /// means every anchor is exhausted.
    fn fill_streaming(
        &mut self,
        env: Env<'_, 's>,
        out: &mut Vec<NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        let start = out.len();
        loop {
            let produced = out.len() - start;
            if produced >= max {
                return Ok(produced);
            }
            let Some(cursor) = self.cursor.as_mut() else {
                if !self.advance_context(env) {
                    return Ok(out.len() - start);
                }
                continue;
            };
            let want = max - produced;
            let store = env.store;
            let matcher = &mut self.matcher;
            let levels = &self.levels;
            let got = cursor.next_batch_where(|rec| matcher.feed(store, levels, rec), out, want)?;
            if got < want {
                // Short count: this anchor's scan is exhausted.
                self.cursor = None;
            }
        }
    }

    fn next_batch_inner(
        &mut self,
        env: Env<'_, 's>,
        out: &mut Vec<NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        if self.state == OpState::Initial {
            self.init(env)?;
        }
        if self.state == OpState::OutOfTuples {
            return Ok(0);
        }
        if let Some(all) = &self.materialized {
            let end = (self.mat_pos + max).min(all.len());
            let n = end - self.mat_pos;
            out.extend_from_slice(&all[self.mat_pos..end]);
            self.mat_pos = end;
            if n < max {
                self.state = OpState::OutOfTuples;
            }
            return Ok(n);
        }
        let n = self.fill_streaming(env, out, max)?;
        if n < max {
            self.state = OpState::OutOfTuples;
        }
        Ok(n)
    }

    /// Batched pull with the standard analyze instrumentation (pool
    /// probe/pin deltas credit the scan's page traffic to this operator).
    pub fn next_batch(
        &mut self,
        env: Env<'_, 's>,
        out: &mut Vec<NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        let Some(stats) = env.stats else {
            return self.next_batch_inner(env, out, max);
        };
        let (p0, pin0) = env.store.buffer_pool().probe_pin_counts();
        let t0 = std::time::Instant::now();
        let got = self.next_batch_inner(env, out, max)?;
        let (p1, pin1) = env.store.buffer_pool().probe_pin_counts();
        stats.add_invocation(self.op);
        stats.add_batch(self.op);
        stats.add_rows(self.op, got as u64);
        stats.add_nanos(self.op, t0.elapsed().as_nanos() as u64);
        stats.add_probe_pins(self.op, p1.saturating_sub(p0), pin1.saturating_sub(pin0));
        Ok(got)
    }

    /// Scalar pull: staged through an internal batch so the scan still
    /// amortizes page pins; the tuple sequence is identical to the
    /// batched one.
    pub fn next(&mut self, env: Env<'_, 's>) -> Result<Option<NodeEntry>> {
        if self.scratch_pos >= self.scratch.len() {
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.clear();
            self.scratch_pos = 0;
            self.next_batch_inner(env, &mut scratch, super::BATCH_SIZE)?;
            self.scratch = scratch;
        }
        let t = self.scratch.get(self.scratch_pos).cloned();
        if t.is_some() {
            self.scratch_pos += 1;
        }
        if let Some(stats) = env.stats {
            stats.add_invocation(self.op);
            if t.is_some() {
                stats.add_rows(self.op, 1);
            }
        }
        Ok(t)
    }
}

/// Resolves one predicate branch. `None` = branch holds a non-name
/// test (a planner bug — the fusion pass never emits it);
/// `Some(None)` = a name that does not occur in the store, so the
/// branch (and thus its spine level) is provably unsatisfiable.
#[allow(clippy::option_option)]
fn resolve_pred(store: &MassStore, node: &FusedNode) -> Option<Option<PredNode>> {
    let TestSpec::Named(name) = &node.test else {
        return None;
    };
    let Some(id) = store.name_id(name) else {
        return Some(None);
    };
    let mut children = Vec::with_capacity(node.predicates.len());
    for c in &node.predicates {
        match resolve_pred(store, c)? {
            Some(r) => children.push(r),
            None => return Some(None),
        }
    }
    Some(Some(PredNode {
        descendant: node.descendant,
        name: id,
        children,
    }))
}
