//! Shared-engine concurrency: many readers, one writer.
//!
//! [`Engine`]'s API already splits naturally — every query path takes
//! `&self`, only document loads and option changes take `&mut self` — so
//! a plain [`RwLock`] turns one engine into a concurrent query service:
//! queries run in parallel under read locks while loads take the write
//! lock and (by bumping the store generation) invalidate any plans cached
//! against the old contents. `vamana-server` builds its worker pool on
//! this type.

use crate::engine::Engine;
use crate::error::Result;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};
use vamana_mass::{BufferStats, DocId, NodeEntry};

/// Per-query execution counters: wall-clock time plus the buffer-pool
/// traffic observed while the query ran.
///
/// Buffer counters are *deltas of pool-wide totals* taken before and
/// after execution. Single-threaded they are exact; under concurrency
/// they attribute other queries' overlapping page traffic to this query,
/// so treat them as "pool activity during this query", not a precise
/// per-query charge (exact attribution would need per-thread counters
/// threaded through every operator).
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// Wall-clock execution time (compile + optimize + execute).
    pub elapsed: Duration,
    /// Buffer-pool page hits observed during the query.
    pub buffer_hits: u64,
    /// Buffer-pool page misses (store reads) observed during the query.
    pub buffer_misses: u64,
    /// Pages pinned once by batched scans during the query.
    pub batch_pins: u64,
    /// Per-record pool entries batched scans avoided during the query.
    pub pins_saved: u64,
    /// Morsels dispatched to the scan pool during the query (zero when
    /// the query ran serially).
    pub morsels: u64,
    /// Batches produced by scan-pool workers during the query.
    pub worker_batches: u64,
    /// Times the ordered-merge consumer had to wait for the in-order
    /// morsel to produce a batch.
    pub merge_stalls: u64,
    /// Fused step-chain operators executed by the query (zero when the
    /// plan ran unfused).
    pub fused_chains: u64,
    /// Location steps those fused operators collapsed.
    pub fused_steps: u64,
    /// Uncompressed (v1) page decodes during the query — data-page
    /// reads that missed the decoded-page cache.
    pub decodes_v1: u64,
    /// Front-coded (v2) page decodes during the query. Together with
    /// `decodes_v1` this is the storage tier's share of the misses.
    pub decodes_v2: u64,
    /// Result cardinality.
    pub rows: u64,
    /// Time a writer spent parked at the epoch gate waiting for pinned
    /// readers to drain ([`Engine::store_mut`]); always zero on the
    /// read-only profiled paths.
    pub writer_wait: Duration,
    /// Per-operator actuals of the run — populated only by
    /// `EXPLAIN ANALYZE` ([`crate::engine::Engine::analyze_doc`]);
    /// `None` on the plain profiled query paths, which record no
    /// per-operator counters at all.
    pub operators: Option<crate::exec::stats::ExecStatsSnapshot>,
}

struct BufferDelta {
    hits: u64,
    misses: u64,
    batch_pins: u64,
    pins_saved: u64,
    decodes_v1: u64,
    decodes_v2: u64,
}

fn delta(before: BufferStats, after: BufferStats) -> BufferDelta {
    BufferDelta {
        hits: after.hits.saturating_sub(before.hits),
        misses: after.misses.saturating_sub(before.misses),
        batch_pins: after.batch_pins.saturating_sub(before.batch_pins),
        pins_saved: after.pins_saved.saturating_sub(before.pins_saved),
        decodes_v1: after.decodes_v1.saturating_sub(before.decodes_v1),
        decodes_v2: after.decodes_v2.saturating_sub(before.decodes_v2),
    }
}

impl Engine {
    /// [`Engine::query_doc`] plus a [`QueryProfile`] of the run.
    pub fn query_doc_profiled(
        &self,
        doc: DocId,
        xpath: &str,
    ) -> Result<(Vec<NodeEntry>, QueryProfile)> {
        let before = self.store().buffer_pool().stats();
        let par_before = self.parallel_stats();
        let fused_before = self.fused_stats();
        let start = Instant::now();
        let rows = self.query_doc(doc, xpath)?;
        let elapsed = start.elapsed();
        let d = delta(before, self.store().buffer_pool().stats());
        let par = self.parallel_stats();
        let fused = self.fused_stats();
        let profile = QueryProfile {
            elapsed,
            buffer_hits: d.hits,
            buffer_misses: d.misses,
            batch_pins: d.batch_pins,
            pins_saved: d.pins_saved,
            morsels: par.morsels.saturating_sub(par_before.morsels),
            worker_batches: par.worker_batches.saturating_sub(par_before.worker_batches),
            merge_stalls: par.merge_stalls.saturating_sub(par_before.merge_stalls),
            fused_chains: fused.0.saturating_sub(fused_before.0),
            fused_steps: fused.1.saturating_sub(fused_before.1),
            decodes_v1: d.decodes_v1,
            decodes_v2: d.decodes_v2,
            rows: rows.len() as u64,
            writer_wait: Duration::ZERO,
            operators: None,
        };
        Ok((rows, profile))
    }

    /// [`Engine::execute_plan`] plus a [`QueryProfile`] of the run — the
    /// serving layer uses this to execute cached plans while still
    /// reporting per-query buffer traffic.
    pub fn execute_plan_profiled(
        &self,
        plan: &crate::plan::QueryPlan,
        doc: DocId,
    ) -> Result<(Vec<NodeEntry>, QueryProfile)> {
        let before = self.store().buffer_pool().stats();
        let par_before = self.parallel_stats();
        let fused_before = self.fused_stats();
        let start = Instant::now();
        let rows = self.execute_plan(plan, doc)?;
        let elapsed = start.elapsed();
        let d = delta(before, self.store().buffer_pool().stats());
        let par = self.parallel_stats();
        let fused = self.fused_stats();
        let profile = QueryProfile {
            elapsed,
            buffer_hits: d.hits,
            buffer_misses: d.misses,
            batch_pins: d.batch_pins,
            pins_saved: d.pins_saved,
            morsels: par.morsels.saturating_sub(par_before.morsels),
            worker_batches: par.worker_batches.saturating_sub(par_before.worker_batches),
            merge_stalls: par.merge_stalls.saturating_sub(par_before.merge_stalls),
            fused_chains: fused.0.saturating_sub(fused_before.0),
            fused_steps: fused.1.saturating_sub(fused_before.1),
            decodes_v1: d.decodes_v1,
            decodes_v2: d.decodes_v2,
            rows: rows.len() as u64,
            writer_wait: Duration::ZERO,
            operators: None,
        };
        Ok((rows, profile))
    }
}

/// An [`Engine`] behind a [`RwLock`]: clone the surrounding `Arc`, hand
/// it to any number of threads, and call [`read`](SharedEngine::read) on
/// the query path and [`write`](SharedEngine::write) on the load path.
pub struct SharedEngine {
    inner: RwLock<Engine>,
}

impl SharedEngine {
    /// Wraps an engine for shared use.
    pub fn new(engine: Engine) -> Self {
        SharedEngine {
            inner: RwLock::new(engine),
        }
    }

    /// Read access for the query path: any number of concurrent holders.
    ///
    /// Lock poisoning is ignored: the engine's `&self` methods never
    /// leave it in a broken state, and queries are independent, so a
    /// panicked holder should not take the service down.
    pub fn read(&self) -> RwLockReadGuard<'_, Engine> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Write access for the load/update path: exclusive.
    pub fn write(&self) -> RwLockWriteGuard<'_, Engine> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Convenience: load a document under the write lock.
    pub fn load_xml(&self, name: &str, xml: &str) -> Result<DocId> {
        self.write().load_xml(name, xml)
    }

    /// Store generation at this instant (see
    /// [`MassStore::generation`](vamana_mass::MassStore::generation));
    /// taken under the read lock.
    pub fn generation(&self) -> u64 {
        self.read().store().generation()
    }

    /// Consumes the wrapper, returning the engine.
    pub fn into_inner(self) -> Engine {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl From<Engine> for SharedEngine {
    fn from(engine: Engine) -> Self {
        SharedEngine::new(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vamana_mass::MassStore;

    fn shared() -> Arc<SharedEngine> {
        let mut store = MassStore::open_memory();
        store
            .load_xml("doc", "<r><a>1</a><a>2</a><b>3</b></r>")
            .unwrap();
        Arc::new(SharedEngine::new(Engine::new(store)))
    }

    #[test]
    fn readers_run_concurrently_with_consistent_results() {
        let shared = shared();
        let expected = shared.read().query("//a").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let shared = Arc::clone(&shared);
                let expected = expected.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(shared.read().query("//a").unwrap(), expected);
                    }
                });
            }
        });
    }

    #[test]
    fn writer_load_is_visible_to_readers_and_bumps_generation() {
        let shared = shared();
        let g0 = shared.generation();
        shared.load_xml("second", "<r><a>4</a></r>").unwrap();
        assert!(shared.generation() > g0, "load must bump the generation");
        assert_eq!(shared.read().query("//a").unwrap().len(), 3);
    }

    #[test]
    fn profiled_query_counts_time_rows_and_pages() {
        let shared = shared();
        let engine = shared.read();
        // `//a` alone is answered from the name index without touching
        // pages; the `.='1'` predicate forces string-value page reads.
        let (rows, profile) = engine.query_doc_profiled(DocId(0), "//a[.='1']").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(profile.rows, 1);
        assert!(profile.buffer_hits + profile.buffer_misses > 0);
    }
}
