//! `EXPLAIN` / `EXPLAIN ANALYZE` rendering: estimated-vs-actual
//! per-operator cardinalities, the optimizer pass log, and a
//! misestimation summary.
//!
//! The central figure of merit is the **q-error** of an operator:
//!
//! ```text
//! q-error(est, act) = max(est, act) / min(est, act)
//! ```
//!
//! A q-error of 1.0 means the cost model predicted the operator's output
//! cardinality exactly; ×N means it was off by a factor of N in either
//! direction (the ratio is symmetric, which is why it is preferred over
//! signed relative error in the cardinality-estimation literature). Both
//! sides zero is a perfect prediction (1.0); exactly one side zero is an
//! unbounded miss (∞).
//!
//! [`Analysis::render`] is deliberately **mode stable**: it prints only
//! quantities that are identical across the scalar, batched, and
//! parallel pipelines (estimates, actual rows, q-errors) — never batch
//! counts or timings, which vary run to run. The golden-file tests pin
//! this down. Timings and buffer traffic appear in
//! [`Analysis::render_json`] and the [`crate::QueryProfile`].

use crate::cost::EstimateCard;
use crate::exec::stats::ExecStatsSnapshot;
use crate::opt::{OptEvent, OptTrace};
use crate::plan::{display, OpId, Operator, QueryPlan};
use crate::shared::QueryProfile;
use std::fmt::Write as _;

/// The symmetric cardinality-estimation error `max/min`, with the usual
/// conventions: both zero → `1.0`, exactly one zero → `∞`.
///
/// ```
/// assert_eq!(vamana_core::explain::qerror(10, 10), 1.0);
/// assert_eq!(vamana_core::explain::qerror(5, 50), 10.0);
/// assert_eq!(vamana_core::explain::qerror(0, 0), 1.0);
/// assert!(vamana_core::explain::qerror(0, 3).is_infinite());
/// ```
pub fn qerror(est: u64, act: u64) -> f64 {
    match (est, act) {
        (0, 0) => 1.0,
        (0, _) | (_, 0) => f64::INFINITY,
        (e, a) => {
            let (hi, lo) = if e > a { (e, a) } else { (a, e) };
            hi as f64 / lo as f64
        }
    }
}

fn fmt_err(q: f64) -> String {
    if q.is_infinite() {
        "err ×∞".to_string()
    } else {
        format!("err ×{q:.1}")
    }
}

/// One row of the misestimation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Misestimate {
    /// The operator, in the executed plan's arena.
    pub op: OpId,
    /// Estimated output cardinality (`OUT`).
    pub est: u64,
    /// Actual rows produced.
    pub act: u64,
    /// q-error of the pair.
    pub qerror: f64,
}

/// The result of `EXPLAIN ANALYZE`: the executed plan with estimate
/// cards, the per-operator actuals of the run, the optimizer's pass log,
/// and the run profile.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The query text.
    pub xpath: String,
    /// The plan that was executed (optimized when the engine's optimizer
    /// is on), carrying its [`EstimateCard`]s.
    pub plan: QueryPlan,
    /// Whether the optimizer produced this plan.
    pub optimized: bool,
    /// Σ tuple volume of the default (cleaned-up) plan.
    pub default_cost: u64,
    /// Σ tuple volume of the executed plan.
    pub final_cost: u64,
    /// Applied rule names, in order.
    pub applied: Vec<&'static str>,
    /// The optimizer's ordered pass log.
    pub opt_trace: OptTrace,
    /// Per-operator actuals recorded during execution.
    pub actuals: ExecStatsSnapshot,
    /// Result cardinality (after set-semantics dedup).
    pub rows: u64,
    /// Wall-time/buffer profile of the run, with
    /// [`QueryProfile::operators`] set to the same actuals tree.
    pub profile: QueryProfile,
}

impl Analysis {
    /// The XPath of the materialized view that answered this query, when
    /// the plan went through a semantic-cache rewrite.
    pub fn view(&self) -> Option<&str> {
        crate::views::plan_view(&self.plan)
    }

    /// Fused chains in the executed plan and the location steps they
    /// collapsed — `(0, 0)` when nothing was fused.
    pub fn fused(&self) -> (u64, u64) {
        crate::plan::fused_in_plan(&self.plan)
    }

    /// Misestimated operators, worst q-error first. Only operators with
    /// both an estimate and recorded actuals participate; pairs within
    /// `threshold` (e.g. `1.05` = 5 %) are not reported.
    pub fn misestimates(&self, threshold: f64) -> Vec<Misestimate> {
        let mut out: Vec<Misestimate> = self
            .plan
            .live_ops()
            .into_iter()
            .filter_map(|op| {
                let est = self.plan.estimate(op)?.output;
                let act = self.actuals.op(op)?.rows;
                let q = qerror(est, act);
                (q > threshold).then_some(Misestimate {
                    op,
                    est,
                    act,
                    qerror: q,
                })
            })
            .collect();
        out.sort_by(|a, b| {
            b.qerror
                .partial_cmp(&a.qerror)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.op.0.cmp(&b.op.0))
        });
        out
    }

    /// Renders the annotated tree plus the misestimation summary. Mode
    /// stable: identical output whether the run was scalar, batched, or
    /// parallel (see the module docs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} plan (Σ tuple volume {}, {} rule{} applied), {} row{}:",
            if self.optimized {
                "optimized"
            } else {
                "default"
            },
            self.final_cost,
            self.applied.len(),
            if self.applied.len() == 1 { "" } else { "s" },
            self.rows,
            if self.rows == 1 { "" } else { "s" },
        );
        // Only view-answered queries gain a line, so the golden files of
        // plain runs are untouched.
        if let Some(view) = self.view() {
            let _ = writeln!(out, "answered from view: {view}");
        }
        // Likewise only fused plans gain a line.
        let (fused_chains, fused_steps) = self.fused();
        if fused_chains > 0 {
            let _ = writeln!(
                out,
                "fused: {fused_chains} chain{} ({fused_steps} steps collapsed)",
                if fused_chains == 1 { "" } else { "s" },
            );
        }
        out.push_str(&render_tree(&self.plan, Some(&self.actuals)));
        let worst = self.misestimates(1.05);
        if worst.is_empty() {
            out.push_str("misestimations: none above ×1.05\n");
        } else {
            out.push_str("misestimations (worst first):\n");
            for m in worst.iter().take(5) {
                let _ = writeln!(
                    out,
                    "  {}: est={} act={} ({})",
                    display::op_symbol(&self.plan, m.op),
                    m.est,
                    m.act,
                    fmt_err(m.qerror)
                );
            }
        }
        out
    }

    /// Renders the full analysis as a single JSON object — the `--json`
    /// rendering shared by the CLI and the server's `ANALYZE` verb. This
    /// form *does* include mode-dependent counters (batches, timings,
    /// probes/pins) alongside the stable ones.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"xpath\":\"{}\",", escape_json(&self.xpath));
        let _ = write!(s, "\"optimized\":{},", self.optimized);
        let _ = write!(s, "\"rows\":{},", self.rows);
        let _ = write!(s, "\"default_cost\":{},", self.default_cost);
        let _ = write!(s, "\"final_cost\":{},", self.final_cost);
        let _ = write!(s, "\"elapsed_us\":{},", self.profile.elapsed.as_micros());
        match self.view() {
            Some(view) => {
                let _ = write!(s, "\"view\":\"{}\",", escape_json(view));
            }
            None => s.push_str("\"view\":null,"),
        }
        let (fused_chains, fused_steps) = self.fused();
        let _ = write!(
            s,
            "\"fused_chains\":{fused_chains},\"fused_steps\":{fused_steps},"
        );
        s.push_str("\"applied\":[");
        for (i, rule) in self.applied.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\"", escape_json(rule));
        }
        s.push_str("],\"operators\":[");
        for (i, op) in self.plan.live_ops().into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"id\":{},\"symbol\":\"{}\"",
                op.0,
                escape_json(&display::op_symbol(&self.plan, op))
            );
            if let Some(card) = self.plan.estimate(op) {
                let _ = write!(
                    s,
                    ",\"est\":{{\"in\":{},\"out\":{},\"selectivity\":{:.6},\"cost\":{},\
                     \"pages\":{}",
                    card.input, card.output, card.selectivity, card.cost, card.pages as u64
                );
                if let Some(count) = card.count {
                    let _ = write!(s, ",\"count\":{count}");
                }
                if let Some(tc) = card.tc {
                    let _ = write!(s, ",\"tc\":{tc}");
                }
                s.push('}');
            }
            if let Some(act) = self.actuals.op(op) {
                let _ = write!(
                    s,
                    ",\"act\":{{\"rows\":{},\"invocations\":{},\"batches\":{},\
                     \"nanos\":{},\"probes\":{},\"pins\":{}}}",
                    act.rows, act.invocations, act.batches, act.nanos, act.probes, act.pins
                );
                if let Some(card) = self.plan.estimate(op) {
                    let q = qerror(card.output, act.rows);
                    if q.is_finite() {
                        let _ = write!(s, ",\"qerror\":{q:.3}");
                    } else {
                        s.push_str(",\"qerror\":null");
                    }
                }
            }
            s.push('}');
        }
        s.push_str("],\"trace\":[");
        for (i, event) in self.opt_trace.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match event {
                OptEvent::Cleanup => s.push_str("{\"event\":\"clean-up\"}"),
                OptEvent::CostGathering { total } => {
                    let _ = write!(s, "{{\"event\":\"cost-gathering\",\"total\":{total}}}");
                }
                OptEvent::Rule(d) => {
                    let _ = write!(
                        s,
                        "{{\"event\":\"rule\",\"rule\":\"{}\",\"iteration\":{},\"target\":{},",
                        escape_json(d.rule),
                        d.iteration,
                        d.target.0
                    );
                    match d.local_before {
                        Some(v) => {
                            let _ = write!(s, "\"local_before\":{v},");
                        }
                        None => s.push_str("\"local_before\":null,"),
                    }
                    match d.local_after {
                        Some(v) => {
                            let _ = write!(s, "\"local_after\":{v},");
                        }
                        None => s.push_str("\"local_after\":null,"),
                    }
                    let _ = write!(
                        s,
                        "\"total_before\":{},\"total_after\":{},\"applied\":{}}}",
                        d.total_before, d.total_after, d.applied
                    );
                }
                OptEvent::ViewRewrite {
                    view,
                    total_before,
                    total_after,
                    applied,
                    reason,
                } => {
                    let _ = write!(
                        s,
                        "{{\"event\":\"view-rewrite\",\"view\":\"{}\",\"total_before\":{},",
                        escape_json(view),
                        total_before
                    );
                    match total_after {
                        Some(v) => {
                            let _ = write!(s, "\"total_after\":{v},");
                        }
                        None => s.push_str("\"total_after\":null,"),
                    }
                    let _ = write!(
                        s,
                        "\"applied\":{},\"reason\":\"{}\"}}",
                        applied,
                        escape_json(reason)
                    );
                }
                OptEvent::Fuse {
                    label,
                    steps,
                    total_before,
                    total_after,
                    applied,
                    reason,
                } => {
                    let _ = write!(
                        s,
                        "{{\"event\":\"fuse\",\"label\":\"{}\",\"steps\":{},\"total_before\":{},",
                        escape_json(label),
                        steps,
                        total_before
                    );
                    match total_after {
                        Some(v) => {
                            let _ = write!(s, "\"total_after\":{v},");
                        }
                        None => s.push_str("\"total_after\":null,"),
                    }
                    let _ = write!(
                        s,
                        "\"applied\":{},\"reason\":\"{}\"}}",
                        applied,
                        escape_json(reason)
                    );
                }
            }
        }
        s.push_str("]}");
        s
    }
}

/// Renders `plan` as an indented tree with `est=… act=… (err ×N.N)`
/// annotations. `actuals = None` gives the estimate-only `EXPLAIN` form.
pub fn render_tree(plan: &QueryPlan, actuals: Option<&ExecStatsSnapshot>) -> String {
    let mut out = String::new();
    render_node(plan, plan.root(), actuals, 0, "", &mut out);
    out
}

fn annotate(card: Option<EstimateCard>, act: Option<u64>, out: &mut String) {
    if let Some(c) = card {
        out.push_str("  [");
        if let Some(count) = c.count {
            let _ = write!(out, "COUNT={count} ");
        }
        if let Some(tc) = c.tc {
            let _ = write!(out, "TC={tc} ");
        }
        let _ = write!(
            out,
            "IN={} OUT={} δ={:.3}]",
            c.input, c.output, c.selectivity
        );
        let _ = write!(out, " est={}", c.output);
    }
    if let Some(act) = act {
        if card.is_some() {
            let _ = write!(
                out,
                " act={} ({})",
                act,
                fmt_err(qerror(card.map(|c| c.output).unwrap_or(0), act))
            );
        } else {
            let _ = write!(out, " act={act}");
        }
    }
}

fn render_node(
    plan: &QueryPlan,
    id: OpId,
    actuals: Option<&ExecStatsSnapshot>,
    depth: usize,
    edge: &str,
    out: &mut String,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    if !edge.is_empty() {
        out.push_str(edge);
        out.push(' ');
    }
    out.push_str(&display::op_symbol(plan, id));
    annotate(
        plan.estimate(id),
        actuals.and_then(|a| a.op(id)).map(|a| a.rows),
        out,
    );
    out.push('\n');
    match plan.op(id) {
        Operator::Step {
            context,
            predicates,
            ..
        } => {
            for p in predicates {
                render_node(plan, *p, actuals, depth + 1, "⟨pred⟩", out);
            }
            if let Some(c) = context {
                render_node(plan, *c, actuals, depth + 1, "└─", out);
            }
        }
        _ => {
            for c in plan.children_of(id) {
                render_node(plan, c, actuals, depth + 1, "└─", out);
            }
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qerror_conventions() {
        assert_eq!(qerror(0, 0), 1.0);
        assert!(qerror(0, 1).is_infinite());
        assert!(qerror(1, 0).is_infinite());
        assert_eq!(qerror(10, 10), 1.0);
        assert_eq!(qerror(2, 20), 10.0);
        assert_eq!(qerror(20, 2), 10.0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
