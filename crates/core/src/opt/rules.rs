//! The transformation library (paper §VI-C, Figs 8 & 9).
//!
//! Each rule is a pure function: given a plan and a target operator, it
//! returns the rewritten plan or `None` when the pattern does not match.
//! The optimizer applies a rule only when re-estimation shows the cost
//! does not increase, so rules themselves only need to be *equivalence*
//! preserving, not improvements.

use crate::plan::{ContextSource, OpId, Operator, QueryPlan, RangeCmp, TestSpec};
use vamana_flex::Axis;

/// A named rewrite rule.
///
/// `apply` returns the rewritten plan together with the id of the
/// operator that *replaces* the target; the driver compares the two
/// operators' local costs (paper §VI-C: a transformation is discarded if
/// it makes the current operator filter fewer tuples).
pub struct Rule {
    /// Rule name (reported in [`crate::opt::OptimizeOutcome::applied`]).
    pub name: &'static str,
    /// Attempts the rewrite on operator `target`.
    pub apply: fn(&QueryPlan, OpId, &RuleCtx) -> Option<(QueryPlan, OpId)>,
}

/// Context flags the rules may consult.
#[derive(Debug, Clone, Copy)]
pub struct RuleCtx {
    /// Whether the engine runs under node-set (duplicate-free) semantics;
    /// required by the ancestor-fold rule.
    pub set_semantics: bool,
}

/// The rule library, in the order rules are tried per operator.
pub const LIBRARY: &[Rule] = &[
    Rule {
        name: "value-index-step",
        apply: value_index_step,
    },
    Rule {
        name: "range-index-step",
        apply: range_index_step,
    },
    Rule {
        name: "parent-inversion",
        apply: parent_inversion,
    },
    Rule {
        name: "child-pushdown",
        apply: child_pushdown,
    },
    Rule {
        name: "ancestor-context-fold",
        apply: ancestor_context_fold,
    },
    Rule {
        name: "predicate-reorder",
        apply: predicate_reorder,
    },
];

/// **Fig 8, first transformation** — invert a `parent::T` step over a
/// descendant leaf:
///
/// `descendant::S (leaf) / parent::T` ⇒
/// `descendant-or-self::T (leaf) [ exists(child::S[preds(S)]) ]`
///
/// Sound because `{parent(x) : x ∈ descendant(C), x ~ S}` is exactly the
/// descendant-or-self nodes of `C` with a child matching `S`.
fn parent_inversion(plan: &QueryPlan, target: OpId, _ctx: &RuleCtx) -> Option<(QueryPlan, OpId)> {
    let Operator::Step {
        axis: Axis::Parent,
        test: parent_test,
        context: Some(inner_id),
        predicates: parent_preds,
        ..
    } = plan.op(target).clone()
    else {
        return None;
    };
    let Operator::Step {
        axis: inner_axis @ (Axis::Descendant | Axis::DescendantOrSelf),
        test: inner_test,
        context: None,
        source,
        predicates: inner_preds,
    } = plan.op(inner_id).clone()
    else {
        return None;
    };
    // Only name/wildcard tests make sense for an inverted child check.
    if !matches!(
        inner_test,
        TestSpec::Named(_) | TestSpec::Wildcard | TestSpec::Text
    ) {
        return None;
    }
    // Moving predicates to differently-grouped steps is only sound when
    // they cannot observe position()/last().
    if !super::cleanup::all_position_free(plan, &inner_preds)
        || !super::cleanup::all_position_free(plan, &parent_preds)
    {
        return None;
    }
    let _ = inner_axis;
    let mut new_plan = plan.clone();
    let child_check = new_plan.push(Operator::Step {
        axis: Axis::Child,
        test: inner_test,
        context: None,
        source: ContextSource::OuterTuple,
        predicates: inner_preds,
    });
    let exists = new_plan.push(Operator::Exists { path: child_check });
    let mut predicates = vec![exists];
    predicates.extend(parent_preds);
    let replacement = new_plan.push(Operator::Step {
        axis: Axis::DescendantOrSelf,
        test: parent_test,
        context: None,
        source,
        predicates,
    });
    super::cleanup::replace_edges(&mut new_plan, target, replacement);
    Some((new_plan, replacement))
}

/// **Fig 8 second transformation / Fig 11, and Q1 of the evaluation** —
/// push a selective child step below a descendant step:
///
/// `descendant::S (leaf)[preds(S)] / child::T[preds(T)]` ⇒
/// `descendant::T (leaf) [ exists(parent::S[preds(S)]) ][preds(T)]`
///
/// Requires the inner step to be the context-path leaf so that the
/// context node (a document node) can never itself satisfy `S`.
fn child_pushdown(plan: &QueryPlan, target: OpId, _ctx: &RuleCtx) -> Option<(QueryPlan, OpId)> {
    let Operator::Step {
        axis: Axis::Child,
        test: child_test,
        context: Some(inner_id),
        predicates: child_preds,
        ..
    } = plan.op(target).clone()
    else {
        return None;
    };
    let Operator::Step {
        axis: Axis::Descendant | Axis::DescendantOrSelf,
        test: inner_test,
        context: None,
        source: source @ ContextSource::QueryRoot,
        predicates: inner_preds,
    } = plan.op(inner_id).clone()
    else {
        return None;
    };
    if !matches!(inner_test, TestSpec::Named(_)) {
        return None;
    }
    if !super::cleanup::all_position_free(plan, &inner_preds)
        || !super::cleanup::all_position_free(plan, &child_preds)
    {
        return None;
    }
    let mut new_plan = plan.clone();
    let parent_check = new_plan.push(Operator::Step {
        axis: Axis::Parent,
        test: inner_test,
        context: None,
        source: ContextSource::OuterTuple,
        predicates: inner_preds,
    });
    let exists = new_plan.push(Operator::Exists { path: parent_check });
    let mut predicates = vec![exists];
    predicates.extend(child_preds);
    let replacement = new_plan.push(Operator::Step {
        axis: Axis::Descendant,
        test: child_test,
        context: None,
        source,
        predicates,
    });
    super::cleanup::replace_edges(&mut new_plan, target, replacement);
    Some((new_plan, replacement))
}

/// **Fig 9 / Q5 of the evaluation** — translate a value comparison into a
/// value-index location step:
///
/// `descendant::E (leaf)[ child::text() = 'v' ]` ⇒
/// `value::'v' (leaf) / parent::E`
///
/// The value index returns the text nodes with value `v` directly; one
/// `parent` lookup recovers the candidate elements.
fn value_index_step(plan: &QueryPlan, target: OpId, _ctx: &RuleCtx) -> Option<(QueryPlan, OpId)> {
    let Operator::Step {
        axis: Axis::Descendant | Axis::DescendantOrSelf,
        test: elem_test @ TestSpec::Named(_),
        context: None,
        source,
        predicates,
    } = plan.op(target).clone()
    else {
        return None;
    };
    if !super::cleanup::all_position_free(plan, &predicates) {
        return None;
    }
    // Find a predicate of the shape `text() = 'literal'` or
    // `@attr = 'literal'`.
    let (pred_idx, literal, attr_name) = predicates.iter().enumerate().find_map(|(i, p)| {
        let Operator::Binary {
            op: crate::plan::BinOp::Eq,
            left,
            right,
        } = plan.op(*p)
        else {
            return None;
        };
        let (path_side, lit_side) = match (plan.op(*left), plan.op(*right)) {
            (_, Operator::Literal { value }) => (*left, value.clone()),
            (Operator::Literal { value }, _) => (*right, value.clone()),
            _ => return None,
        };
        // The path side must be exactly `child::text()`/`self::text()` or
        // `attribute::name`, anchored at the tuple.
        match plan.op(path_side) {
            Operator::Step {
                axis: Axis::Child | Axis::SelfAxis,
                test: TestSpec::Text,
                context: None,
                source: ContextSource::OuterTuple,
                predicates: inner,
            } if inner.is_empty() => Some((i, lit_side, None)),
            Operator::Step {
                axis: Axis::Attribute,
                test: TestSpec::Named(attr),
                context: None,
                source: ContextSource::OuterTuple,
                predicates: inner,
            } if inner.is_empty() => Some((i, lit_side, Some(attr.clone()))),
            _ => None,
        }
    })?;
    let mut new_plan = plan.clone();
    let value_step = new_plan.push(Operator::ValueStep {
        value: literal,
        text_only: Some(attr_name.is_none()),
        attr_name,
        context: None,
        source,
    });
    let mut remaining: Vec<OpId> = predicates.clone();
    remaining.remove(pred_idx);
    let parent_step = new_plan.push(Operator::Step {
        axis: Axis::Parent,
        test: elem_test,
        context: Some(value_step),
        source: ContextSource::QueryRoot,
        predicates: remaining,
    });
    super::cleanup::replace_edges(&mut new_plan, target, parent_step);
    Some((new_plan, parent_step))
}

/// **Range predicates via the numeric value index** — an extension in
/// the spirit of Fig 9 (the paper lists range predicates among the
/// index-supported conditions):
///
/// `descendant::E (leaf)[ text() > n ]` ⇒ `range::(> n) / parent::E`
/// `descendant::E (leaf)[ @a >= n ]` ⇒ `range::(>= n)(@a) / parent::E`
///
/// Sound because the comparison applies per text/attribute node, which
/// is exactly what the numeric index stores. (Comparisons against an
/// *element* path like `[price > n]` are not rewritten: their operand is
/// the element's whole string-value, which a single text node may not
/// equal in mixed content.)
fn range_index_step(plan: &QueryPlan, target: OpId, _ctx: &RuleCtx) -> Option<(QueryPlan, OpId)> {
    let Operator::Step {
        axis: Axis::Descendant | Axis::DescendantOrSelf,
        test: elem_test @ TestSpec::Named(_),
        context: None,
        source,
        predicates,
    } = plan.op(target).clone()
    else {
        return None;
    };
    if !super::cleanup::all_position_free(plan, &predicates) {
        return None;
    }
    let (pred_idx, cmp, bound, attr_name) = predicates.iter().enumerate().find_map(|(i, p)| {
        let Operator::Binary { op, left, right } = plan.op(*p) else {
            return None;
        };
        let cmp = RangeCmp::from_binop(*op)?;
        // Identify which side is the number.
        let (path_side, cmp, bound) = match (plan.op(*left), plan.op(*right)) {
            (_, Operator::Number { value }) => (*left, cmp, *value),
            (Operator::Number { value }, _) => (*right, cmp.flip(), *value),
            _ => return None,
        };
        match plan.op(path_side) {
            Operator::Step {
                axis: Axis::Child | Axis::SelfAxis,
                test: TestSpec::Text,
                context: None,
                source: ContextSource::OuterTuple,
                predicates: inner,
            } if inner.is_empty() => Some((i, cmp, bound, None)),
            Operator::Step {
                axis: Axis::Attribute,
                test: TestSpec::Named(attr),
                context: None,
                source: ContextSource::OuterTuple,
                predicates: inner,
            } if inner.is_empty() => Some((i, cmp, bound, Some(attr.clone()))),
            _ => None,
        }
    })?;
    let mut new_plan = plan.clone();
    let range_step = new_plan.push(Operator::RangeStep {
        op: cmp,
        bound,
        text_only: attr_name.is_none(),
        attr_name,
        context: None,
        source,
    });
    let mut remaining: Vec<OpId> = predicates.clone();
    remaining.remove(pred_idx);
    let parent_step = new_plan.push(Operator::Step {
        axis: Axis::Parent,
        test: elem_test,
        context: Some(range_step),
        source: ContextSource::QueryRoot,
        predicates: remaining,
    });
    super::cleanup::replace_edges(&mut new_plan, target, parent_step);
    Some((new_plan, parent_step))
}

/// **Q2 of the evaluation** — fold a duplicate-generating context into an
/// exist predicate before an ancestor step:
///
/// `A / child::S[preds] / ancestor::T` ⇒ `A[ exists(child::S[preds]) ] /
/// ancestor::T`
///
/// Valid under set semantics when `T` and `S` are distinct names (the
/// two context sets then reach identical `T` ancestors), and it
/// eliminates the duplicate ancestor chains the paper's Q2 discussion
/// describes.
fn ancestor_context_fold(
    plan: &QueryPlan,
    target: OpId,
    ctx: &RuleCtx,
) -> Option<(QueryPlan, OpId)> {
    if !ctx.set_semantics {
        return None;
    }
    let Operator::Step {
        axis: axis @ (Axis::Ancestor | Axis::AncestorOrSelf),
        test: anc_test @ TestSpec::Named(_),
        context: Some(mid_id),
        predicates: anc_preds,
        ..
    } = plan.op(target).clone()
    else {
        return None;
    };
    let Operator::Step {
        axis: Axis::Child,
        test: mid_test @ TestSpec::Named(_),
        context: Some(base_id),
        predicates: mid_preds,
        ..
    } = plan.op(mid_id).clone()
    else {
        return None;
    };
    if anc_test == mid_test {
        return None; // the folded node itself could match T
    }
    // The base must be a step we can attach a predicate to.
    let Operator::Step { .. } = plan.op(base_id) else {
        return None;
    };
    let mut new_plan = plan.clone();
    let child_check = new_plan.push(Operator::Step {
        axis: Axis::Child,
        test: mid_test,
        context: None,
        source: ContextSource::OuterTuple,
        predicates: mid_preds,
    });
    let exists = new_plan.push(Operator::Exists { path: child_check });
    if let Operator::Step { predicates, .. } = new_plan.op_mut(base_id) {
        predicates.push(exists);
    }
    if let Operator::Step { context, .. } = new_plan.op_mut(target) {
        *context = Some(base_id);
    }
    let _ = (axis, anc_preds);
    Some((new_plan, target))
}

/// **Predicate reordering** — under `and`, evaluate the more selective
/// side first so the short-circuit saves the expensive side. The cost
/// check in the driver confirms the benefit.
fn predicate_reorder(plan: &QueryPlan, target: OpId, _ctx: &RuleCtx) -> Option<(QueryPlan, OpId)> {
    let Operator::Binary {
        op: crate::plan::BinOp::And,
        left,
        right,
    } = plan.op(target).clone()
    else {
        return None;
    };
    // Heuristic without costs: a pure-literal/value comparison is cheaper
    // than an exists-path; move comparisons before exists.
    let is_cheap = |id: OpId| {
        matches!(
            plan.op(id),
            Operator::Binary { .. } | Operator::Number { .. } | Operator::Literal { .. }
        )
    };
    if is_cheap(right) && !is_cheap(left) {
        let mut new_plan = plan.clone();
        *new_plan.op_mut(target) = Operator::Binary {
            op: crate::plan::BinOp::And,
            left: right,
            right: left,
        };
        return Some((new_plan, target));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::cleanup::cleanup;
    use crate::plan::builder::build_plan;
    use vamana_xpath::parse;

    fn cleaned(q: &str) -> QueryPlan {
        let mut p = build_plan(&parse(q).unwrap()).unwrap();
        cleanup(&mut p);
        p
    }

    const CTX: RuleCtx = RuleCtx {
        set_semantics: true,
    };

    #[test]
    fn parent_inversion_matches_fig8() {
        let plan = cleaned("descendant::name/parent::*/self::person/address");
        // After cleanup: descendant::name / parent::person / child::address.
        let path = plan.context_path();
        let parent_step = path[1];
        let (rewritten, _) = parent_inversion(&plan, parent_step, &CTX).expect("rule should fire");
        // New context path: descendant-or-self::person[exists child::name] / address.
        let new_path = rewritten.context_path();
        assert_eq!(new_path.len(), 2);
        match rewritten.op(new_path[1]) {
            Operator::Step {
                axis: Axis::DescendantOrSelf,
                test: TestSpec::Named(n),
                predicates,
                ..
            } => {
                assert_eq!(&**n, "person");
                assert_eq!(predicates.len(), 1);
                assert!(matches!(
                    rewritten.op(predicates[0]),
                    Operator::Exists { .. }
                ));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn child_pushdown_matches_q1() {
        let plan = cleaned("//person/address");
        let addr = plan.context_path()[0];
        let (rewritten, _) = child_pushdown(&plan, addr, &CTX).expect("rule should fire");
        let path = rewritten.context_path();
        assert_eq!(path.len(), 1);
        match rewritten.op(path[0]) {
            Operator::Step {
                axis: Axis::Descendant,
                test: TestSpec::Named(n),
                predicates,
                ..
            } => {
                assert_eq!(&**n, "address");
                let Operator::Exists { path: p } = rewritten.op(predicates[0]) else {
                    panic!()
                };
                assert!(matches!(
                    rewritten.op(*p),
                    Operator::Step {
                        axis: Axis::Parent,
                        test: TestSpec::Named(_),
                        ..
                    }
                ));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn value_index_step_matches_fig9() {
        let plan = cleaned("//name[text() = 'Yung Flach']");
        let name_step = plan.context_path()[0];
        let (rewritten, _) = value_index_step(&plan, name_step, &CTX).expect("rule should fire");
        let path = rewritten.context_path();
        assert_eq!(path.len(), 2);
        assert!(matches!(
            rewritten.op(path[0]),
            Operator::Step {
                axis: Axis::Parent,
                test: TestSpec::Named(_),
                ..
            }
        ));
        match rewritten.op(path[1]) {
            Operator::ValueStep {
                value,
                text_only: Some(true),
                ..
            } => {
                assert_eq!(&**value, "Yung Flach")
            }
            other => panic!("wrong leaf: {other:?}"),
        }
    }

    #[test]
    fn ancestor_fold_matches_q2() {
        let plan = cleaned("//watches/watch/ancestor::person");
        let anc = plan.context_path()[0];
        let (rewritten, _) = ancestor_context_fold(&plan, anc, &CTX).expect("rule should fire");
        let path = rewritten.context_path();
        // ancestor::person / descendant::watches[exists child::watch]
        assert_eq!(path.len(), 2);
        match rewritten.op(path[1]) {
            Operator::Step {
                test: TestSpec::Named(n),
                predicates,
                ..
            } => {
                assert_eq!(&**n, "watches");
                assert_eq!(predicates.len(), 1);
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn ancestor_fold_requires_set_semantics_and_distinct_names() {
        let plan = cleaned("//watches/watch/ancestor::person");
        let anc = plan.context_path()[0];
        let bag = RuleCtx {
            set_semantics: false,
        };
        assert!(ancestor_context_fold(&plan, anc, &bag).is_none());
        // Same names: //a/a/ancestor::a must not fold.
        let plan = cleaned("//a/a/ancestor::a");
        let anc = plan.context_path()[0];
        assert!(ancestor_context_fold(&plan, anc, &CTX).is_none());
    }

    #[test]
    fn rules_do_not_fire_on_wrong_shapes() {
        let plan = cleaned("//person/address");
        for id in plan.live_ops() {
            assert!(parent_inversion(&plan, id, &CTX).is_none());
            assert!(value_index_step(&plan, id, &CTX).is_none());
        }
        let plan = cleaned("//name[text() != 'x']"); // != is not indexable
        for id in plan.live_ops() {
            assert!(value_index_step(&plan, id, &CTX).is_none());
        }
    }

    #[test]
    fn predicate_reorder_puts_comparison_first() {
        let plan = cleaned("//person[watches and @id = 'p1']");
        let person = plan.context_path()[0];
        let Operator::Step { predicates, .. } = plan.op(person) else {
            panic!()
        };
        let and_op = predicates[0];
        let (rewritten, _) = predicate_reorder(&plan, and_op, &CTX).expect("should swap");
        let Operator::Binary { left, .. } = rewritten.op(and_op) else {
            panic!()
        };
        assert!(matches!(rewritten.op(*left), Operator::Binary { .. }));
        // Already-ordered plans are left alone.
        assert!(predicate_reorder(&rewritten, and_op, &CTX).is_none());
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use crate::opt::cleanup::cleanup;
    use crate::plan::builder::build_plan;
    use vamana_xpath::parse;

    fn cleaned(q: &str) -> QueryPlan {
        let mut p = build_plan(&parse(q).unwrap()).unwrap();
        cleanup(&mut p);
        p
    }

    const CTX: RuleCtx = RuleCtx {
        set_semantics: true,
    };

    #[test]
    fn range_rewrite_fires_on_text_comparison() {
        let plan = cleaned("//price[text() > 450]");
        let price = plan.context_path()[0];
        let (rewritten, _) = range_index_step(&plan, price, &CTX).expect("rule fires");
        let path = rewritten.context_path();
        assert_eq!(path.len(), 2);
        assert!(matches!(
            rewritten.op(path[1]),
            Operator::RangeStep {
                op: RangeCmp::Gt,
                text_only: true,
                ..
            }
        ));
        assert!(matches!(
            rewritten.op(path[0]),
            Operator::Step {
                axis: Axis::Parent,
                ..
            }
        ));
    }

    #[test]
    fn range_rewrite_flips_reversed_operands() {
        let plan = cleaned("//price[100 >= text()]");
        let price = plan.context_path()[0];
        let (rewritten, _) = range_index_step(&plan, price, &CTX).expect("rule fires");
        let path = rewritten.context_path();
        // 100 >= text()  ⇔  text() <= 100
        assert!(matches!(
            rewritten.op(path[1]),
            Operator::RangeStep { op: RangeCmp::Le, bound, .. } if *bound == 100.0
        ));
    }

    #[test]
    fn range_rewrite_fires_on_attribute_comparison() {
        let plan = cleaned("//item[@quantity >= 3]");
        let item = plan.context_path()[0];
        let (rewritten, _) = range_index_step(&plan, item, &CTX).expect("rule fires");
        let path = rewritten.context_path();
        assert!(matches!(
            rewritten.op(path[1]),
            Operator::RangeStep { op: RangeCmp::Ge, text_only: false, attr_name: Some(a), .. }
                if &**a == "quantity"
        ));
    }

    #[test]
    fn range_rewrite_skips_element_paths() {
        // [price > n] compares the element's string-value — not
        // rewritable per node.
        let plan = cleaned("//closed_auction[price > 450]");
        let ca = plan.context_path()[0];
        assert!(range_index_step(&plan, ca, &CTX).is_none());
    }

    #[test]
    fn range_rewrite_skips_equality() {
        let plan = cleaned("//price[text() = 450]");
        let price = plan.context_path()[0];
        assert!(range_index_step(&plan, price, &CTX).is_none());
    }
}
