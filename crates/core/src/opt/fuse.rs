//! Whole-query fusion: collapsing a location-step chain suffix into a
//! single page-pinned [`Operator::FusedScan`].
//!
//! The unfused pipeline materializes a node set per step — `k` steps
//! mean `k` index scans over overlapping key ranges, each re-pinning
//! the same pages. Fusion rewrites the *scan-bound suffix* of the chain
//! (everything past the index-resolvable named head steps) into one
//! operator that evaluates the combined structural condition per record
//! inside one clustered scan (see [`crate::exec::fused`]).
//!
//! The fragment mirrors the one [`crate::views`] delimits, restricted to
//! the forward downward axes:
//!
//! * spine steps: `child`/`descendant` with name, `*`, `text()` or
//!   `node()` tests,
//! * predicates: conjunctions of existential relative paths over
//!   `child`/`descendant` edges with *name* tests only (the executor
//!   verifies them with name-index probes).
//!
//! Extraction is shape-only; the engine prices the candidate with the
//! Table I cost model and keeps it only when the estimated tuple volume
//! drops ([`crate::engine::Engine::optimize_plan`]), recording the
//! decision — accepted or rejected — in the optimizer trace.

use crate::plan::{
    fused_label, fused_steps, ContextSource, FusedNode, OpId, Operator, QueryPlan, TestSpec,
};
use vamana_flex::Axis;

/// A priced fusion candidate: `plan` is a clone of the base plan whose
/// chain suffix was replaced by a [`Operator::FusedScan`].
pub struct FuseCandidate {
    /// The rewritten plan.
    pub plan: QueryPlan,
    /// The [`Operator::FusedScan`] inside `plan`.
    pub fused_op: OpId,
    /// Rendered chain label (`a/b[c]//d`).
    pub label: String,
    /// Location steps collapsed into the operator (spine + predicates).
    pub steps: usize,
}

/// Extracts the fusion candidate from `base` (a *cleaned* plan — the
/// optimizer's push-down rules introduce reverse-axis predicates the
/// fragment excludes). `Err` carries the reason no candidate exists.
///
/// The fused suffix starts after the longest head run of bare
/// `child::name` steps: those are resolved by pure name-index lookups
/// in the unfused pipeline and narrow the scan enormously when kept as
/// the fused operator's context. The suffix must still span at least
/// two steps — fusing a single step would reproduce the plain batched
/// scan it replaces.
pub fn extract_candidate(base: &QueryPlan) -> Result<FuseCandidate, &'static str> {
    let path = base.context_path();
    if path.is_empty() {
        return Err("query has no location-step chain");
    }
    // Root side first.
    let chain: Vec<OpId> = path.iter().rev().copied().collect();
    let nodes: Vec<Option<FusedNode>> = chain.iter().map(|&id| fused_node_of(base, id)).collect();
    let m = chain.len();
    // Longest all-fusable suffix.
    let mut start = m;
    while start > 0 && nodes[start - 1].is_some() {
        start -= 1;
    }
    // Skip index-friendly head steps.
    let mut k = start;
    while k < m {
        let n = nodes[k].as_ref().expect("suffix is fusable");
        let cheap =
            !n.descendant && matches!(n.test, TestSpec::Named(_)) && n.predicates.is_empty();
        if !cheap {
            break;
        }
        k += 1;
    }
    if m - start < 2 {
        return Err("no fusable suffix of at least two steps");
    }
    if m - k < 2 {
        return Err("scan-bound suffix shorter than two steps");
    }
    let context = if k == 0 {
        // Preserve the head step's own context edge (a `ViewScan`
        // residual, for instance). With no context the fused operator
        // anchors at the query root — a chain rooted at an outer tuple
        // cannot fuse.
        match base.op(chain[0]) {
            Operator::Step {
                context: Some(c), ..
            } => Some(*c),
            Operator::Step {
                context: None,
                source: ContextSource::QueryRoot,
                ..
            } => None,
            _ => return Err("chain anchored at an outer tuple"),
        }
    } else {
        Some(chain[k - 1])
    };
    let spine: Vec<FusedNode> = nodes
        .into_iter()
        .skip(k)
        .map(|n| n.expect("suffix is fusable"))
        .collect();
    let label = fused_label(&spine);
    let steps = fused_steps(&spine);
    let mut plan = base.clone();
    let fused_op = chain[m - 1];
    *plan.op_mut(fused_op) = Operator::FusedScan { spine, context };
    Ok(FuseCandidate {
        plan,
        fused_op,
        label,
        steps,
    })
}

/// Converts one spine step into a [`FusedNode`], or `None` when the
/// step falls outside the fusable fragment.
fn fused_node_of(plan: &QueryPlan, id: OpId) -> Option<FusedNode> {
    let Operator::Step {
        axis,
        test,
        predicates,
        ..
    } = plan.op(id)
    else {
        return None;
    };
    let descendant = match axis {
        Axis::Child => false,
        Axis::Descendant => true,
        _ => return None,
    };
    if !matches!(
        test,
        TestSpec::Named(_) | TestSpec::Wildcard | TestSpec::Text | TestSpec::AnyNode
    ) {
        return None;
    }
    let mut preds = Vec::new();
    for &p in predicates {
        collect_pred(plan, p, &mut preds)?;
    }
    Some(FusedNode {
        descendant,
        test: test.clone(),
        predicates: preds,
    })
}

/// Flattens a predicate operator into existential branches: `and`
/// conjunctions split, bare paths and `Exists` wrappers become
/// branches; anything else rejects the step.
fn collect_pred(plan: &QueryPlan, p: OpId, out: &mut Vec<FusedNode>) -> Option<()> {
    match plan.op(p) {
        Operator::Binary {
            op: crate::plan::BinOp::And,
            left,
            right,
        } => {
            collect_pred(plan, *left, out)?;
            collect_pred(plan, *right, out)
        }
        Operator::Exists { path } => {
            out.push(branch_of(plan, *path)?);
            Some(())
        }
        Operator::Step { .. } => {
            out.push(branch_of(plan, p)?);
            Some(())
        }
        _ => None,
    }
}

/// Converts a predicate path (output step `head` back to its leaf) into
/// a nested [`FusedNode`] branch. Branch tests must be names — the
/// executor verifies branches with name-index probes, which have no
/// kind-test form.
fn branch_of(plan: &QueryPlan, head: OpId) -> Option<FusedNode> {
    // Collect output-side first, then fold so `b/c` nests as `b[c]`
    // (the same existential).
    let mut chain = Vec::new();
    let mut cur = Some(head);
    while let Some(id) = cur {
        let Operator::Step {
            axis,
            test,
            context,
            source,
            predicates,
        } = plan.op(id)
        else {
            return None;
        };
        if context.is_none() && *source != ContextSource::OuterTuple {
            return None;
        }
        let descendant = match axis {
            Axis::Child => false,
            Axis::Descendant => true,
            _ => return None,
        };
        if !matches!(test, TestSpec::Named(_)) {
            return None;
        }
        chain.push((descendant, test.clone(), predicates.clone()));
        cur = *context;
    }
    let mut acc: Option<FusedNode> = None;
    for (descendant, test, pred_ids) in chain {
        let mut preds = Vec::new();
        for p in pred_ids {
            collect_pred(plan, p, &mut preds)?;
        }
        if let Some(inner) = acc.take() {
            preds.push(inner);
        }
        acc = Some(FusedNode {
            descendant,
            test,
            predicates: preds,
        });
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::builder::build_plan;
    use vamana_xpath::parse;

    fn candidate(q: &str) -> Result<FuseCandidate, &'static str> {
        let mut plan = build_plan(&parse(q).unwrap()).unwrap();
        crate::opt::cleanup::cleanup(&mut plan);
        extract_candidate(&plan)
    }

    #[test]
    fn fuses_scan_bound_suffixes() {
        let c = candidate("/site/*//*").unwrap();
        // The bare child::name head stays as the context chain.
        assert_eq!(c.label, "*//*");
        assert_eq!(c.steps, 2);
        let Operator::FusedScan { spine, context } = c.plan.op(c.fused_op) else {
            panic!("not fused");
        };
        assert_eq!(spine.len(), 2);
        assert!(context.is_some());
    }

    #[test]
    fn index_resolvable_chains_are_not_fused() {
        // Every step past the head run is a bare child::name lookup —
        // there is no scan-bound suffix left to collapse.
        assert!(candidate("/site/open_auctions/open_auction//*").is_err());
    }

    #[test]
    fn fuses_whole_descendant_chains_from_the_root() {
        let c = candidate("//person/address").unwrap();
        assert_eq!(c.label, "//person/address");
        let Operator::FusedScan { context, .. } = c.plan.op(c.fused_op) else {
            panic!("not fused");
        };
        assert!(context.is_none());
    }

    #[test]
    fn predicates_become_nested_branches() {
        let c = candidate("//person[watches/watch]/name").unwrap();
        assert_eq!(c.label, "//person[watches[watch]]/name");
        assert_eq!(c.steps, 4);
    }

    #[test]
    fn rejects_short_and_foreign_chains() {
        assert!(candidate("//person").is_err());
        assert!(candidate("/site/people//*").is_err(), "suffix is one step");
        assert!(candidate("//name/parent::person").is_err());
        assert!(candidate("//person[@id='p1']/name").is_err());
        assert!(candidate("//person[1]/name").is_err());
    }

    #[test]
    fn positional_and_value_predicates_reject_the_step() {
        assert!(candidate("//open_auction[price>5]//*").is_err());
    }
}
