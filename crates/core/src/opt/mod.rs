//! The cost-driven optimizer (paper §VI).
//!
//! Each iteration runs three phases: **clean-up** ([`cleanup`]),
//! **cost gathering** ([`crate::cost::estimate`]) and **re-writing**.
//! Re-writing walks the selectivity-ordered operator list `L(P)`
//! (most selective first) and tries the transformation library on each
//! operator; a candidate is kept only if re-estimation shows its total
//! cost does not increase — which is what guarantees the paper's claim
//! that the optimized plan is never slower than the default plan.

pub mod cleanup;
pub mod fuse;
pub mod parallel;
pub mod rules;

use crate::cost::{estimate, PlanCosts};
use crate::error::Result;
use crate::plan::{OpId, QueryPlan};
use rules::{RuleCtx, LIBRARY};
use std::fmt::Write as _;
use vamana_flex::KeyRange;
use vamana_mass::MassStore;

/// One rule considered during re-writing: the paper's "apply only if the
/// re-estimated cost does not increase" decision, made visible. A
/// decision is recorded for *every* candidate a rule produced, applied
/// or not; rules that did not match an operator at all leave no entry.
#[derive(Debug, Clone)]
pub struct RuleDecision {
    /// The clean-up/cost/rewrite iteration this decision belongs to
    /// (1-based).
    pub iteration: usize,
    /// Rule name from the transformation library.
    pub rule: &'static str,
    /// The operator the rule was tried on (id in the *pre-rewrite* plan).
    pub target: OpId,
    /// Local cost `IN + OUT` of the target before the rewrite.
    pub local_before: Option<u64>,
    /// Local cost of the replacement operator in the candidate plan.
    pub local_after: Option<u64>,
    /// Plan-wide tuple volume before the rewrite.
    pub total_before: u64,
    /// Plan-wide tuple volume of the candidate.
    pub total_after: u64,
    /// Whether the candidate was kept.
    pub applied: bool,
}

/// One event in the optimizer's ordered pass log.
#[derive(Debug, Clone)]
pub enum OptEvent {
    /// A clean-up pass ran (redundant-step elimination).
    Cleanup,
    /// A cost-gathering pass ran; `total` is the plan-wide tuple volume
    /// it measured.
    CostGathering {
        /// Σ (IN + OUT) over live operators after this pass.
        total: u64,
    },
    /// A rewrite rule produced a candidate and the acceptance test ran.
    Rule(RuleDecision),
    /// The view-rewrite pass considered answering the query from a
    /// materialized view (see [`crate::views`]). Recorded for accepted
    /// *and* rejected candidates, and once per query when the query
    /// itself falls outside the containment fragment.
    ViewRewrite {
        /// The candidate view's XPath (`-` when no candidate applies).
        view: String,
        /// Plan-wide tuple volume of the rule-optimized base plan.
        total_before: u64,
        /// Tuple volume of the view-rewritten candidate (`None` when no
        /// candidate plan was built).
        total_after: Option<u64>,
        /// Whether the candidate was kept.
        applied: bool,
        /// Why the candidate was kept or rejected.
        reason: &'static str,
    },
    /// The fusion pass considered collapsing a step-chain suffix into a
    /// single page-pinned [`crate::plan::Operator::FusedScan`]. Recorded
    /// for accepted *and* rejected candidates, and once per query when
    /// the plan has no fusable suffix at all.
    Fuse {
        /// Rendered chain label (`-` when no candidate applies).
        label: String,
        /// Steps collapsed into the fused operator (0 when none).
        steps: usize,
        /// Plan-wide tuple volume before fusion.
        total_before: u64,
        /// Tuple volume of the fused candidate (`None` when no
        /// candidate plan was built).
        total_after: Option<u64>,
        /// Whether the candidate was kept.
        applied: bool,
        /// Why the candidate was kept or rejected.
        reason: &'static str,
    },
}

/// The ordered log of optimizer passes — clean-up, cost gathering, and
/// every rewrite decision — that EXPLAIN renders so a user can see *why*
/// the optimizer kept or rejected each transformation.
#[derive(Debug, Clone, Default)]
pub struct OptTrace {
    /// Events in the order they happened.
    pub events: Vec<OptEvent>,
}

impl OptTrace {
    /// The rule decisions, in order (skipping pass markers).
    pub fn decisions(&self) -> impl Iterator<Item = &RuleDecision> {
        self.events.iter().filter_map(|e| match e {
            OptEvent::Rule(d) => Some(d),
            _ => None,
        })
    }

    /// Renders the log as indented text, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            match event {
                OptEvent::Cleanup => {
                    let _ = writeln!(out, "pass: clean-up");
                }
                OptEvent::CostGathering { total } => {
                    let _ = writeln!(out, "pass: cost gathering (Σ tuple volume {total})");
                }
                OptEvent::Rule(d) => {
                    let local = match (d.local_before, d.local_after) {
                        (Some(b), Some(a)) => format!("local {b}→{a}, "),
                        _ => String::new(),
                    };
                    let _ = writeln!(
                        out,
                        "iter {}: {} on op{} — {}total {}→{} {}",
                        d.iteration,
                        d.rule,
                        d.target.0,
                        local,
                        d.total_before,
                        d.total_after,
                        if d.applied {
                            "✓ applied"
                        } else {
                            "✗ rejected"
                        }
                    );
                }
                OptEvent::ViewRewrite {
                    view,
                    total_before,
                    total_after,
                    applied,
                    reason,
                } => {
                    let after = match total_after {
                        Some(a) => format!("total {total_before}→{a}"),
                        None => format!("total {total_before}"),
                    };
                    let _ = writeln!(
                        out,
                        "view {view}: {after} {} ({reason})",
                        if *applied {
                            "✓ applied"
                        } else {
                            "✗ rejected"
                        }
                    );
                }
                OptEvent::Fuse {
                    label,
                    steps,
                    total_before,
                    total_after,
                    applied,
                    reason,
                } => {
                    let after = match total_after {
                        Some(a) => format!("total {total_before}→{a}"),
                        None => format!("total {total_before}"),
                    };
                    let _ = writeln!(
                        out,
                        "fuse {label} ({steps} steps): {after} {} ({reason})",
                        if *applied {
                            "✓ applied"
                        } else {
                            "✗ rejected"
                        }
                    );
                }
            }
        }
        out
    }
}

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerOptions {
    /// Upper bound on clean-up/cost/rewrite iterations.
    pub max_iterations: usize,
    /// Node-set (duplicate-free) semantics — enables the ancestor fold.
    pub set_semantics: bool,
    /// Rule names to skip (ablation experiments).
    pub disabled_rules: Vec<String>,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            max_iterations: 8,
            set_semantics: true,
            disabled_rules: Vec::new(),
        }
    }
}

/// What the optimizer did to a plan.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The final plan.
    pub plan: QueryPlan,
    /// Cost annotations of the final plan.
    pub costs: PlanCosts,
    /// Σ OUT of the default plan (after clean-up).
    pub initial_cost: u64,
    /// Σ OUT of the final plan.
    pub final_cost: u64,
    /// Names of the applied rules, in order.
    pub applied: Vec<&'static str>,
    /// Iterations executed.
    pub iterations: usize,
    /// Intermediate plans: one snapshot per applied rule, paired with the
    /// rule name (drives the Fig 8-style transformation traces).
    pub trace: Vec<(&'static str, QueryPlan)>,
    /// Ordered pass log with every rule decision, applied or rejected.
    pub opt_trace: OptTrace,
}

/// Optimizes `plan` against live statistics from `store`, scoped to
/// `scope`.
pub fn optimize(
    mut plan: QueryPlan,
    store: &MassStore,
    scope: &KeyRange,
    options: &OptimizerOptions,
) -> Result<OptimizeOutcome> {
    let rule_ctx = RuleCtx {
        set_semantics: options.set_semantics,
    };
    let mut opt_trace = OptTrace::default();
    cleanup::cleanup(&mut plan);
    opt_trace.events.push(OptEvent::Cleanup);
    let mut costs = estimate(&plan, store, scope)?;
    let initial_cost = costs.total();
    opt_trace.events.push(OptEvent::CostGathering {
        total: initial_cost,
    });
    let mut applied = Vec::new();
    let mut trace: Vec<(&'static str, QueryPlan)> = Vec::new();
    let mut iterations = 0;

    'outer: while iterations < options.max_iterations {
        iterations += 1;
        // Phase: re-writing, most selective operator first.
        for (op, _delta) in costs.ordered.clone() {
            for rule in LIBRARY {
                if options.disabled_rules.iter().any(|d| d == rule.name) {
                    continue;
                }
                let Some((mut candidate, replacement)) = (rule.apply)(&plan, op, &rule_ctx) else {
                    continue;
                };
                cleanup::cleanup(&mut candidate);
                let cand_costs = estimate(&candidate, store, scope)?;
                // The paper's acceptance test is local: the transformed
                // operator (or sub-query) must not handle more tuples
                // than the operator it replaces. Ties fall back to the
                // plan-wide tuple volume so a rewrite can never regress.
                let old_local = costs.get(op).map(|c| c.input + c.output);
                let new_local = cand_costs.get(replacement).map(|c| c.input + c.output);
                let accept = match (old_local, new_local) {
                    (Some(o), Some(n)) if n < o => true,
                    (Some(o), Some(n)) if n == o => cand_costs.total() <= costs.total(),
                    (Some(_), Some(_)) => false,
                    _ => cand_costs.total() <= costs.total(),
                };
                opt_trace.events.push(OptEvent::Rule(RuleDecision {
                    iteration: iterations,
                    rule: rule.name,
                    target: op,
                    local_before: old_local,
                    local_after: new_local,
                    total_before: costs.total(),
                    total_after: cand_costs.total(),
                    applied: accept,
                }));
                if accept {
                    plan = candidate;
                    costs = cand_costs;
                    applied.push(rule.name);
                    trace.push((rule.name, plan.clone()));
                    continue 'outer; // re-cost and restart the ordered walk
                }
            }
        }
        break;
    }

    let final_cost = costs.total();
    plan.set_estimates(costs.cards(plan.len(), store.tuples_per_page()));
    Ok(OptimizeOutcome {
        plan,
        costs,
        initial_cost,
        final_cost,
        applied,
        iterations,
        trace,
        opt_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::builder::build_plan;
    use crate::plan::{Operator, TestSpec};
    use vamana_flex::Axis;
    use vamana_xpath::parse;

    /// XMark-shaped mini store: person > name/address structure with a
    /// unique literal, watches, and sibling prices.
    fn store() -> MassStore {
        // Mirrors the paper's XMark proportions: names outnumber persons
        // (items/categories have names too), addresses cover only part of
        // the population (2550 persons vs 1256 addresses in Fig 6).
        let mut xml = String::from("<site><people>");
        for i in 0..30 {
            xml.push_str(&format!("<person id='p{i}'><name>N{i}</name>"));
            if i == 7 {
                xml.push_str("<address><province>Vermont</province></address>");
            } else if i % 3 == 0 {
                xml.push_str("<address><city>C</city></address>");
            }
            xml.push_str("<watches><watch/><watch/></watches></person>");
        }
        xml.push_str("</people><open_auctions>");
        for i in 0..10 {
            xml.push_str(&format!(
                "<open_auction><itemref/><price>9</price><item><name>item{i}</name></item></open_auction>"
            ));
        }
        xml.push_str("</open_auctions></site>");
        let mut s = MassStore::open_memory();
        s.load_xml("x", &xml).unwrap();
        s
    }

    fn optimize_query(store: &MassStore, q: &str) -> OptimizeOutcome {
        let plan = build_plan(&parse(q).unwrap()).unwrap();
        let scope = KeyRange::subtree(&store.documents()[0].doc_key);
        optimize(plan, store, &scope, &OptimizerOptions::default()).unwrap()
    }

    #[test]
    fn q1_is_pushed_down() {
        let s = store();
        let out = optimize_query(&s, "//person/address");
        assert!(
            out.applied.contains(&"child-pushdown"),
            "applied: {:?}",
            out.applied
        );
        assert!(out.final_cost < out.initial_cost);
        let path = out.plan.context_path();
        assert!(matches!(
            out.plan.op(path[0]),
            Operator::Step { axis: Axis::Descendant, test: TestSpec::Named(n), .. } if &**n == "address"
        ));
    }

    #[test]
    fn q3_gets_both_fig8_transformations() {
        let s = store();
        let out = optimize_query(&s, "/descendant::name/parent::*/self::person/address");
        assert!(
            out.applied.contains(&"parent-inversion"),
            "applied: {:?}",
            out.applied
        );
        assert!(
            out.applied.contains(&"child-pushdown"),
            "applied: {:?}",
            out.applied
        );
        assert!(out.final_cost < out.initial_cost);
        // Final shape per Fig 11: descendant::address with nested exists.
        let path = out.plan.context_path();
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn q5_uses_the_value_index() {
        let s = store();
        let out = optimize_query(&s, "//province[text()='Vermont']/ancestor::person");
        assert!(
            out.applied.contains(&"value-index-step"),
            "applied: {:?}",
            out.applied
        );
        let path = out.plan.context_path();
        assert!(
            path.iter()
                .any(|id| matches!(out.plan.op(*id), Operator::ValueStep { .. })),
            "no value step in context path"
        );
        assert!(out.final_cost < out.initial_cost);
    }

    #[test]
    fn q2_folds_duplicate_context() {
        let s = store();
        let out = optimize_query(&s, "//watches/watch/ancestor::person");
        assert!(
            out.applied.contains(&"ancestor-context-fold"),
            "applied: {:?}",
            out.applied
        );
    }

    #[test]
    fn optimizer_never_increases_cost() {
        let s = store();
        for q in [
            "//person/address",
            "//watches/watch/ancestor::person",
            "/descendant::name/parent::*/self::person/address",
            "//itemref/following-sibling::price/parent::*",
            "//province[text()='Vermont']/ancestor::person",
            "//person[name]/watches",
            "//person[@id='p3']",
        ] {
            let out = optimize_query(&s, q);
            assert!(
                out.final_cost <= out.initial_cost,
                "{q}: {} > {}",
                out.final_cost,
                out.initial_cost
            );
        }
    }

    #[test]
    fn optimizer_terminates_on_fixpoints() {
        let s = store();
        let out = optimize_query(&s, "//name");
        assert!(out.iterations <= 8);
        assert!(
            out.applied.is_empty(),
            "no rule should fire on //name: {:?}",
            out.applied
        );
    }

    #[test]
    fn disabled_set_semantics_blocks_fold() {
        let s = store();
        let plan = build_plan(&parse("//watches/watch/ancestor::person").unwrap()).unwrap();
        let scope = KeyRange::subtree(&s.documents()[0].doc_key);
        let opts = OptimizerOptions {
            set_semantics: false,
            ..Default::default()
        };
        let out = optimize(plan, &s, &scope, &opts).unwrap();
        assert!(!out.applied.contains(&"ancestor-context-fold"));
    }
}
