//! The parallelism decision: *whether and how wide* to fan a scan out,
//! driven by the same index statistics the rewrite rules consult.
//!
//! The paper's thesis is that the index answers `COUNT`/selectivity
//! questions cheaply enough to drive every plan choice; this module
//! extends that to the degree of parallelism. A scan is worth splitting
//! only when it is going to touch a lot of data (threshold on the
//! estimated output) and only as wide as leaves each worker a meaningful
//! morsel (`count / MIN_MORSEL`), so small queries never pay thread
//! hand-off costs and large ones never shred into confetti.
//!
//! The decision is recorded on the plan ([`QueryPlan::set_parallel`]),
//! which makes it survive plan caching: a cached plan replays the same
//! fan-out without touching the index again. Actual morsel boundaries
//! are re-derived from the live index at execution time, so the cached
//! choice is a performance hint, never a correctness hazard (see
//! `MassStore::generation`).

use crate::cost::count_nodetest;
use crate::plan::{Operator, ParallelChoice, QueryPlan, TestSpec};
use vamana_flex::{Axis, KeyRange};
use vamana_mass::MassStore;

/// Decides whether (and how wide) to parallelize the plan's output step.
///
/// Only the *top* step of the context path — the one producing the
/// query's output — is considered: everything below it is the context
/// stream, which the parallel scan materializes serially (it is almost
/// always index-only and cheap). The step must be a forward,
/// non-attribute, predicate-free `*`/`node()` test: exactly the shapes
/// the executor evaluates as clustered page scans, which are the only
/// ones where splitting pages across workers buys anything (named tests
/// stream from the name index and are already index-only).
///
/// `workers` caps the degree; `threshold` is the minimum estimated
/// output for parallelism to pay at all; `min_morsel` is the smallest
/// worthwhile per-worker slice. Returns `None` (stay serial) unless the
/// resulting degree is at least 2.
pub fn decide(
    plan: &QueryPlan,
    store: &MassStore,
    scope: &KeyRange,
    workers: usize,
    threshold: u64,
    min_morsel: u64,
) -> Option<ParallelChoice> {
    let &top = plan.context_path().first()?;
    let Operator::Step {
        axis,
        test,
        predicates,
        ..
    } = plan.op(top)
    else {
        return None;
    };
    if !predicates.is_empty() || axis.is_reverse() || axis.principal_is_attribute() {
        return None;
    }
    if !matches!(test, TestSpec::Wildcard | TestSpec::AnyNode) {
        return None;
    }
    if *axis == Axis::Namespace {
        return None;
    }
    let estimated = count_nodetest(store, *axis, test, scope);
    if estimated < threshold.max(1) {
        return None;
    }
    let degree = (workers as u64).min(estimated / min_morsel.max(1)).max(1);
    if degree < 2 {
        return None;
    }
    Some(ParallelChoice {
        degree: degree as u32,
        estimated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::builder::build_plan;
    use vamana_mass::MassStore;
    use vamana_xpath::parse;

    fn store_with(n: usize) -> MassStore {
        let mut xml = String::from("<root>");
        for i in 0..n {
            xml.push_str(&format!("<e>{i}</e>"));
        }
        xml.push_str("</root>");
        let mut store = MassStore::open_memory();
        store.load_xml("doc", &xml).unwrap();
        store
    }

    fn plan_for(xpath: &str) -> QueryPlan {
        build_plan(&parse(xpath).unwrap()).unwrap()
    }

    #[test]
    fn wide_scan_clears_threshold() {
        let store = store_with(500);
        let plan = plan_for("//*");
        let choice = decide(&plan, &store, &KeyRange::all(), 4, 100, 50).unwrap();
        assert!(choice.degree >= 2 && choice.degree <= 4);
        assert!(choice.estimated >= 500);
    }

    #[test]
    fn small_scan_stays_serial() {
        let store = store_with(20);
        let plan = plan_for("//*");
        assert!(decide(&plan, &store, &KeyRange::all(), 4, 100, 50).is_none());
    }

    #[test]
    fn min_morsel_caps_degree() {
        let store = store_with(500);
        let plan = plan_for("//*");
        // ~501 elements / 200 per morsel => degree 2 even with 8 workers.
        let choice = decide(&plan, &store, &KeyRange::all(), 8, 100, 200).unwrap();
        assert_eq!(choice.degree, 2);
        // A min-morsel bigger than the data forces serial.
        assert!(decide(&plan, &store, &KeyRange::all(), 8, 100, 400).is_none());
    }

    #[test]
    fn named_and_predicated_steps_stay_serial() {
        let store = store_with(500);
        for q in ["//e", "//*[1]", "//@*", "//e/ancestor::*"] {
            let plan = plan_for(q);
            assert!(
                decide(&plan, &store, &KeyRange::all(), 4, 1, 1).is_none(),
                "{q} must stay serial"
            );
        }
    }
}
