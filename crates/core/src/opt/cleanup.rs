//! Query clean-up (paper §VI-A).
//!
//! Two always-safe canonicalizations run before every costing pass:
//!
//! 1. **Self merge** (Fig 5): a `self::T` step collapses into its context
//!    child when the node tests are compatible —
//!    `parent::*/self::person` ⇒ `parent::person`.
//! 2. **`//` collapse**: the expansion `descendant-or-self::node()/
//!    child::T` produced by abbreviated syntax becomes `descendant::T`,
//!    giving the rewrite rules a single step to match on.

use crate::plan::{OpId, Operator, QueryPlan, TestSpec};
use vamana_flex::Axis;

/// Runs clean-up to a fixpoint; returns how many merges were applied.
pub fn cleanup(plan: &mut QueryPlan) -> usize {
    let mut total = 0;
    loop {
        let n = merge_self_steps(plan) + collapse_double_slash(plan);
        if n == 0 {
            return total;
        }
        total += n;
    }
}

/// True when the predicate tree at `id` cannot observe the dynamic
/// context position: no bare numbers, no `position()`/`last()` calls.
/// Transformations that change an operator's candidate *group* (merging,
/// axis collapse, push-down) are only sound for position-free predicates.
pub(crate) fn position_free(plan: &QueryPlan, id: OpId) -> bool {
    // A *bare* number predicate is positional (`[2]` ⇔ `[position()=2]`);
    // numbers nested inside comparisons are just numbers.
    if matches!(plan.op(id), Operator::Number { .. }) {
        return false;
    }
    position_free_inner(plan, id)
}

fn position_free_inner(plan: &QueryPlan, id: OpId) -> bool {
    match plan.op(id) {
        Operator::Function { name, .. } => {
            !matches!(&**name, "position" | "last")
                && plan
                    .children_of(id)
                    .iter()
                    .all(|c| position_free_inner(plan, *c))
        }
        // A nested path restarts the position context: predicates inside
        // it apply to its own groups, which the rewrite does not touch.
        Operator::Step { .. }
        | Operator::ValueStep { .. }
        | Operator::RangeStep { .. }
        | Operator::Exists { .. } => true,
        _ => plan
            .children_of(id)
            .iter()
            .all(|c| position_free_inner(plan, *c)),
    }
}

/// All of `preds` are position-free.
pub(crate) fn all_position_free(plan: &QueryPlan, preds: &[OpId]) -> bool {
    preds.iter().all(|p| position_free(plan, *p))
}

/// Can `outer` (the `self` step's test) refine `inner`?
/// Returns the merged test when the merge is safe.
fn merge_tests(outer: &TestSpec, inner: &TestSpec) -> Option<TestSpec> {
    match (outer, inner) {
        (TestSpec::AnyNode, t) => Some(t.clone()),
        (t, TestSpec::AnyNode) => Some(t.clone()),
        (TestSpec::Wildcard, TestSpec::Wildcard) => Some(TestSpec::Wildcard),
        (TestSpec::Named(n), TestSpec::Wildcard) | (TestSpec::Wildcard, TestSpec::Named(n)) => {
            Some(TestSpec::Named(n.clone()))
        }
        (TestSpec::Named(a), TestSpec::Named(b)) if a == b => Some(TestSpec::Named(a.clone())),
        (TestSpec::Text, TestSpec::Text) => Some(TestSpec::Text),
        (TestSpec::Comment, TestSpec::Comment) => Some(TestSpec::Comment),
        _ => None,
    }
}

/// Replaces every edge pointing at `old` with `new`.
pub(crate) fn replace_edges(plan: &mut QueryPlan, old: OpId, new: OpId) {
    for id in plan.live_ops() {
        if id == old {
            continue;
        }
        match plan.op_mut(id) {
            Operator::Root { child } => {
                if *child == Some(old) {
                    *child = Some(new);
                }
            }
            Operator::Step {
                context,
                predicates,
                ..
            } => {
                if *context == Some(old) {
                    *context = Some(new);
                }
                for p in predicates {
                    if *p == old {
                        *p = new;
                    }
                }
            }
            Operator::ValueStep { context, .. }
            | Operator::RangeStep { context, .. }
            | Operator::FusedScan { context, .. } => {
                if *context == Some(old) {
                    *context = Some(new);
                }
            }
            Operator::Exists { path } => {
                if *path == old {
                    *path = new;
                }
            }
            Operator::Binary { left, right, .. }
            | Operator::Arith { left, right, .. }
            | Operator::Union { left, right }
            | Operator::Join { left, right, .. } => {
                if *left == old {
                    *left = new;
                }
                if *right == old {
                    *right = new;
                }
            }
            Operator::Function { args, .. } => {
                for a in args {
                    if *a == old {
                        *a = new;
                    }
                }
            }
            Operator::Neg { child } => {
                if *child == old {
                    *child = new;
                }
            }
            Operator::Filter { input, predicates } => {
                if *input == old {
                    *input = new;
                }
                for p in predicates {
                    if *p == old {
                        *p = new;
                    }
                }
            }
            Operator::Literal { .. } | Operator::Number { .. } | Operator::ViewScan { .. } => {}
        }
    }
    if plan.root() == old {
        plan.set_root(new);
    }
}

fn merge_self_steps(plan: &mut QueryPlan) -> usize {
    let mut merged = 0;
    for id in plan.live_ops() {
        let Operator::Step {
            axis: Axis::SelfAxis,
            test,
            context: Some(ctx_id),
            predicates,
            ..
        } = plan.op(id).clone()
        else {
            continue;
        };
        let Operator::Step {
            axis: inner_axis,
            test: inner_test,
            context: inner_ctx,
            source: inner_source,
            predicates: inner_preds,
        } = plan.op(ctx_id).clone()
        else {
            continue;
        };
        let Some(new_test) = merge_tests(&test, &inner_test) else {
            continue;
        };
        // Merging narrows the inner step's candidate group (when the test
        // tightens) and re-groups the self step's predicates, so
        // positional predicates must not be involved (`descendant::*[1]/
        // self::c` is NOT `descendant::c[1]`).
        if !all_position_free(plan, &predicates) {
            continue;
        }
        if new_test != inner_test && !all_position_free(plan, &inner_preds) {
            continue;
        }
        // The merged step keeps the inner step's axis/context and gains
        // the self step's predicates (they filter after the inner ones).
        let mut preds = inner_preds;
        preds.extend(predicates);
        *plan.op_mut(ctx_id) = Operator::Step {
            axis: inner_axis,
            test: new_test,
            context: inner_ctx,
            source: inner_source,
            predicates: preds,
        };
        replace_edges(plan, id, ctx_id);
        merged += 1;
    }
    merged
}

fn collapse_double_slash(plan: &mut QueryPlan) -> usize {
    let mut collapsed = 0;
    for id in plan.live_ops() {
        // Outer: child::T (no restriction on predicates).
        let Operator::Step {
            axis: Axis::Child,
            test,
            context: Some(ctx_id),
            predicates,
            ..
        } = plan.op(id).clone()
        else {
            continue;
        };
        // Inner: descendant-or-self::node() with no predicates.
        let Operator::Step {
            axis: Axis::DescendantOrSelf,
            test: TestSpec::AnyNode,
            context: inner_ctx,
            source: inner_source,
            predicates: inner_preds,
        } = plan.op(ctx_id).clone()
        else {
            continue;
        };
        if !inner_preds.is_empty() {
            continue;
        }
        // `//a[1]` means "every a that is the first a-child of its
        // parent", which `descendant::a[1]` does not — positional
        // predicates block the collapse.
        if !all_position_free(plan, &predicates) {
            continue;
        }
        *plan.op_mut(id) = Operator::Step {
            axis: Axis::Descendant,
            test,
            context: inner_ctx,
            source: inner_source,
            predicates,
        };
        collapsed += 1;
    }
    collapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::builder::build_plan;
    use vamana_xpath::parse;

    fn plan_for(q: &str) -> QueryPlan {
        build_plan(&parse(q).unwrap()).unwrap()
    }

    #[test]
    fn fig5_self_merge() {
        // descendant::name/parent::*/self::person/address
        // ⇒ descendant::name/parent::person/address (3 steps).
        let mut plan = plan_for("descendant::name/parent::*/self::person/address");
        let n = cleanup(&mut plan);
        assert!(n >= 1);
        let path = plan.context_path();
        assert_eq!(path.len(), 3);
        match plan.op(path[1]) {
            Operator::Step {
                axis: Axis::Parent,
                test: TestSpec::Named(n),
                ..
            } => {
                assert_eq!(&**n, "person")
            }
            other => panic!("merge failed: {other:?}"),
        }
    }

    #[test]
    fn double_slash_collapses_to_descendant() {
        let mut plan = plan_for("//person/address");
        cleanup(&mut plan);
        let path = plan.context_path();
        assert_eq!(path.len(), 2);
        assert!(matches!(
            plan.op(path[1]),
            Operator::Step {
                axis: Axis::Descendant,
                test: TestSpec::Named(_),
                ..
            }
        ));
    }

    #[test]
    fn nested_double_slash_collapses_in_predicates() {
        let mut plan = plan_for("//person[.//name]");
        cleanup(&mut plan);
        // All descendant-or-self::node() helper steps with child consumers
        // are gone (the leading `.//` inside the predicate keeps a self
        // step only if tests are incompatible).
        let live = plan.live_ops();
        let leftovers = live
            .iter()
            .filter(|id| {
                matches!(
                    plan.op(**id),
                    Operator::Step {
                        axis: Axis::DescendantOrSelf,
                        test: TestSpec::AnyNode,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(leftovers, 0);
    }

    #[test]
    fn self_with_incompatible_test_is_kept() {
        let mut plan = plan_for("descendant::name/self::person");
        cleanup(&mut plan);
        // name vs person cannot merge.
        assert_eq!(plan.context_path().len(), 2);
    }

    #[test]
    fn self_predicates_move_to_merged_step() {
        let mut plan = plan_for("descendant::*/self::person[name]");
        cleanup(&mut plan);
        let path = plan.context_path();
        assert_eq!(path.len(), 1);
        let Operator::Step {
            predicates, test, ..
        } = plan.op(path[0])
        else {
            panic!()
        };
        assert_eq!(predicates.len(), 1);
        assert_eq!(*test, TestSpec::Named("person".into()));
    }

    #[test]
    fn cleanup_is_idempotent() {
        let mut plan = plan_for("//person/address");
        cleanup(&mut plan);
        let snapshot = plan.clone();
        assert_eq!(cleanup(&mut plan), 0);
        assert_eq!(plan, snapshot);
    }
}
