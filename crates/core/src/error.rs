//! Engine error type.

use std::fmt;

/// Errors raised while compiling, optimizing or executing a query.
#[derive(Debug)]
pub enum EngineError {
    /// The XPath expression did not parse.
    Parse(vamana_xpath::ParseError),
    /// Storage-level failure.
    Storage(vamana_mass::MassError),
    /// The expression uses a feature the engine does not support
    /// (e.g. unbound variables).
    Unsupported(String),
    /// A function was called with the wrong arguments.
    BadFunctionCall { name: String, reason: String },
    /// The store has no documents to query.
    NoDocuments,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Unsupported(what) => write!(f, "unsupported: {what}"),
            EngineError::BadFunctionCall { name, reason } => {
                write!(f, "bad call to {name}(): {reason}")
            }
            EngineError::NoDocuments => write!(f, "no documents loaded"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vamana_xpath::ParseError> for EngineError {
    fn from(e: vamana_xpath::ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<vamana_mass::MassError> for EngineError {
    fn from(e: vamana_mass::MassError) -> Self {
        EngineError::Storage(e)
    }
}

/// Result alias for the engine.
pub type Result<T> = std::result::Result<T, EngineError>;
