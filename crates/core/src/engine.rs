//! The [`Engine`] facade: parse → compile → optimize → execute.
//!
//! This is the public face of VAMANA (paper Fig 2): it owns a
//! [`MassStore`], compiles XPath text through the XPath compiler and plan
//! builder, runs the cost-driven optimizer, and executes plans with the
//! pipelined engine.

use crate::cost::estimate;
use crate::error::{EngineError, Result};
use crate::exec::parallel::{ParallelHooks, ParallelScanStats, ScanPool};
use crate::exec::{self, value::Value, Env};
use crate::explain::Analysis;
use crate::opt::{self, OptEvent, OptimizeOutcome, OptimizerOptions};
use crate::plan::{builder::build_plan, display, Operator, QueryPlan};
use crate::shared::QueryProfile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vamana_flex::KeyRange;
use vamana_mass::{DocId, MassError, MassStore, NodeEntry, RecordKind, WalStats};
use vamana_xpath::{parse, Expr};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Run the cost-driven optimizer (`false` = execute default plans,
    /// the paper's "VQP" configuration; `true` = "VQP-OPT").
    pub optimize: bool,
    /// XPath node-set semantics: results sorted in document order with
    /// duplicates removed.
    pub set_semantics: bool,
    /// Optimizer iteration bound.
    pub max_opt_iterations: usize,
    /// Batched (vectorized) execution: pull [`exec::BATCH_SIZE`]-tuple
    /// batches through the pipeline instead of one tuple at a time.
    /// Produces the identical tuple sequence; `false` is the scalar
    /// baseline kept for benchmarking and differential testing.
    pub batched: bool,
    /// Morsel-parallel scans: plans whose output step the optimizer
    /// marked parallel-worthy fan out over the engine's shared scan
    /// pool (requires `batched`). Identical output either way; `false`
    /// keeps serial-batched as the differential oracle and baseline.
    pub parallel: bool,
    /// Scan-pool width. `0` means one worker per available core.
    pub parallel_workers: usize,
    /// Minimum estimated `COUNT` of the output step before the optimizer
    /// considers fanning out — below this, thread hand-off costs more
    /// than the scan.
    pub parallel_threshold: u64,
    /// Smallest worthwhile per-worker slice of the estimate; the degree
    /// is capped at `count / parallel_min_morsel`.
    pub parallel_min_morsel: u64,
    /// How long a writer waits at the epoch gate for in-flight readers
    /// (parallel morsel workers, open streams) to drop their store
    /// handles before giving up with
    /// [`vamana_mass::MassError::WriterConflict`].
    pub writer_drain_timeout: Duration,
    /// Semantic result caching ([`crate::views`]): materialize the
    /// results of hot fragment queries and answer later queries from
    /// them when containment holds and the cost model agrees. Off by
    /// default; requires `set_semantics` (views hold set-semantics
    /// results).
    pub views: bool,
    /// Byte budget for materialized views; least-recently-used views are
    /// evicted past it.
    pub view_budget_bytes: u64,
    /// How many times a fragment query must be seen before its result is
    /// materialized.
    pub view_admit_after: u32,
    /// Accept every *sound* view rewrite regardless of estimated cost —
    /// for differential testing and diagnostics, where the goal is to
    /// exercise the rewrite path, not to win the cost race.
    pub view_greedy: bool,
    /// Whole-query fusion ([`crate::opt::fuse`]): collapse the
    /// scan-bound suffix of a step chain into a single page-pinned
    /// [`Operator::FusedScan`] when the cost model agrees. Off by
    /// default; requires `set_semantics` (a fused scan emits each
    /// matching node exactly once).
    pub fuse: bool,
    /// Accept every extractable fusion candidate regardless of
    /// estimated cost — for differential testing and benchmarking the
    /// fused execution path itself.
    pub fuse_force: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            optimize: true,
            set_semantics: true,
            max_opt_iterations: 8,
            batched: true,
            parallel: true,
            parallel_workers: 0,
            parallel_threshold: 4096,
            parallel_min_morsel: 1024,
            writer_drain_timeout: Duration::from_secs(2),
            views: false,
            view_budget_bytes: 64 << 20,
            view_admit_after: 2,
            view_greedy: false,
            fuse: false,
            fuse_force: false,
        }
    }
}

/// A logical update routed through [`Engine::apply_update`]: targets are
/// named by XPath, content arrives as an XML fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Append `fragment` as the last child of the first node matching
    /// `target`.
    Insert {
        /// XPath selecting the insertion parent (first match wins).
        target: String,
        /// XML fragment with a single root element.
        fragment: String,
    },
    /// Delete the subtrees of *all* nodes matching `target`.
    Delete {
        /// XPath selecting the nodes to remove.
        target: String,
    },
}

/// What an [`Engine::apply_update`] did.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// Document the update ran against.
    pub doc: DocId,
    /// Nodes matched by the target XPath.
    pub matched: u64,
    /// Records inserted (fragment size, attributes and text included).
    pub inserted: u64,
    /// Records deleted (whole subtrees).
    pub deleted: u64,
    /// WAL commit LSN of the last logged operation (0 for volatile
    /// stores).
    pub lsn: u64,
    /// The document's generation *after* the update — plan caches keyed
    /// on `(doc, doc_generation)` use this to invalidate.
    pub doc_generation: u64,
    /// Execution profile: target resolution + apply, including the time
    /// spent waiting at the writer epoch gate.
    pub profile: QueryProfile,
}

/// A compiled-and-explained query (used by examples and the figures
/// harness to show before/after plans).
#[derive(Debug, Clone)]
pub struct Explain {
    /// Rendered default plan with cost annotations.
    pub default_plan: String,
    /// Rendered optimized plan with cost annotations.
    pub optimized_plan: String,
    /// Σ OUT of the default plan.
    pub default_cost: u64,
    /// Σ OUT of the optimized plan.
    pub optimized_cost: u64,
    /// Applied rule names, in order.
    pub applied: Vec<&'static str>,
    /// Optimizer iterations.
    pub iterations: usize,
    /// The optimizer's ordered pass log: clean-up / cost-gathering /
    /// every rule decision with before/after costs (render with
    /// [`crate::opt::OptTrace::render`]).
    pub opt_trace: crate::opt::OptTrace,
}

/// A streaming query cursor: owns its plan and pulls tuples through the
/// pipelined executor one at a time (see [`Engine::stream`]).
pub struct QueryStream<'s> {
    store: &'s MassStore,
    plan: Box<QueryPlan>,
    root_ctx: NodeEntry,
    iter: exec::OpIter<'s>,
    done: bool,
    /// Batched mode: `next` refills from `pending`, which holds the
    /// remainder of the last batch *in reverse* so each pull is an O(1)
    /// pop without cloning.
    batched: bool,
    pending: Vec<NodeEntry>,
}

impl<'s> QueryStream<'s> {
    fn new(engine: &'s Engine, plan: QueryPlan, root_ctx: NodeEntry) -> Result<Self> {
        if engine.options().views {
            if crate::views::plan_view(&plan).is_some() {
                engine.views().record_hit();
            } else {
                engine.views().record_miss();
            }
        }
        engine.record_fused(&plan);
        let plan = Box::new(plan);
        let top = match plan.op(plan.root()) {
            Operator::Root { child } => *child,
            _ => Some(plan.root()),
        };
        let iter = match top {
            Some(top) => {
                let env = Env {
                    plan: &plan,
                    store: engine.store(),
                    root_ctx: &root_ctx,
                    stats: None,
                };
                let mut iter = None;
                if engine.options().batched {
                    if let Some(hooks) = engine.parallel_hooks(&plan) {
                        iter = exec::parallel::build_parallel(env, top, &hooks)?;
                    }
                }
                match iter {
                    Some(it) => it,
                    None => exec::build_iter(env, top, None)?,
                }
            }
            None => exec::OpIter::Anchor(None),
        };
        Ok(QueryStream {
            store: engine.store(),
            plan,
            root_ctx,
            iter,
            done: false,
            batched: engine.options().batched,
            pending: Vec::new(),
        })
    }

    /// Pulls the next tuple in pipeline order, or `None` when exhausted.
    ///
    /// In batched mode this refills an internal batch every
    /// [`exec::BATCH_SIZE`] pulls; the observable tuple sequence is
    /// identical to scalar mode.
    #[allow(clippy::should_implement_trait)] // fallible
    pub fn next(&mut self) -> Result<Option<NodeEntry>> {
        if let Some(t) = self.pending.pop() {
            return Ok(Some(t));
        }
        if self.done {
            return Ok(None);
        }
        let env = Env {
            plan: &self.plan,
            store: self.store,
            root_ctx: &self.root_ctx,
            stats: None,
        };
        if self.batched {
            if self
                .iter
                .next_batch(env, &mut self.pending, exec::BATCH_SIZE)?
                == 0
            {
                self.done = true;
                return Ok(None);
            }
            self.pending.reverse();
            Ok(self.pending.pop())
        } else {
            let item = self.iter.next(env)?;
            if item.is_none() {
                self.done = true;
            }
            Ok(item)
        }
    }

    /// Pulls up to `max` tuples into `out`, returning how many were
    /// appended. Zero means the stream is exhausted. This is the
    /// materialization-free consumption path: the serving layer drains
    /// whole batches into its result buffer without per-tuple dispatch.
    pub fn next_batch(&mut self, out: &mut Vec<NodeEntry>, max: usize) -> Result<usize> {
        let start = out.len();
        // Leftovers from interleaved scalar pulls come first (reversed).
        while out.len() - start < max {
            match self.pending.pop() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        if self.done || out.len() - start >= max {
            return Ok(out.len() - start);
        }
        let env = Env {
            plan: &self.plan,
            store: self.store,
            root_ctx: &self.root_ctx,
            stats: None,
        };
        let budget = max - (out.len() - start);
        let produced = if self.batched {
            self.iter.next_batch(env, out, budget)?
        } else {
            let mut n = 0;
            while n < budget {
                match self.iter.next(env)? {
                    Some(t) => {
                        out.push(t);
                        n += 1;
                    }
                    None => break,
                }
            }
            n
        };
        if produced == 0 {
            self.done = true;
        }
        Ok(out.len() - start)
    }

    /// The (possibly optimized) plan this stream executes.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }
}

/// The VAMANA XPath engine.
pub struct Engine {
    /// Shared so parallel scan workers can hold the store across their
    /// morsel; all clones are transient (reaped before a query returns),
    /// which keeps [`Engine::store_mut`] available between queries.
    store: Arc<MassStore>,
    options: EngineOptions,
    /// Lazily created engine-level worker pool, reused across queries and
    /// rebuilt only when the configured width changes.
    scan_pool: Mutex<Option<Arc<ScanPool>>>,
    /// Cumulative microseconds writers spent at the epoch gate waiting
    /// for reader-held store clones to drain.
    writer_wait_us: AtomicU64,
    /// Materialized-view cache (consulted only when `options.views`).
    views: crate::views::ViewCache,
    /// Cumulative count of queries executed through a fused chain.
    fused_chains: AtomicU64,
    /// Cumulative count of location steps those chains collapsed.
    fused_steps: AtomicU64,
}

impl Engine {
    /// Wraps a store with default options (optimizer on).
    pub fn new(store: MassStore) -> Self {
        Self::with_options(store, EngineOptions::default())
    }

    /// Wraps a store with explicit options.
    pub fn with_options(store: MassStore, options: EngineOptions) -> Self {
        Engine {
            store: Arc::new(store),
            options,
            scan_pool: Mutex::new(None),
            writer_wait_us: AtomicU64::new(0),
            views: crate::views::ViewCache::new(),
            fused_chains: AtomicU64::new(0),
            fused_steps: AtomicU64::new(0),
        }
    }

    /// The materialized-view cache (counters, listing, manual clears).
    pub fn views(&self) -> &crate::views::ViewCache {
        &self.views
    }

    /// The underlying store.
    pub fn store(&self) -> &MassStore {
        &self.store
    }

    /// A shared handle on the store, as held by parallel scan workers
    /// for the duration of a morsel. While any such handle is alive,
    /// [`Engine::store_mut`] waits at the epoch gate.
    pub fn store_handle(&self) -> Arc<MassStore> {
        Arc::clone(&self.store)
    }

    /// Mutable store access (loading documents, updates), behind the
    /// *epoch gate*: store clones held by in-flight parallel scans or
    /// open streams are normally reaped before their query returns, but
    /// a writer arriving while one is still alive waits (bounded by
    /// [`EngineOptions::writer_drain_timeout`]) for the readers to
    /// drain instead of panicking. On timeout the caller gets
    /// [`MassError::WriterConflict`] and the store is untouched.
    pub fn store_mut(&mut self) -> Result<&mut MassStore> {
        let start = Instant::now();
        let deadline = start + self.options.writer_drain_timeout;
        loop {
            if Arc::get_mut(&mut self.store).is_some() {
                break;
            }
            if Instant::now() >= deadline {
                return Err(EngineError::Storage(MassError::WriterConflict));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let waited = start.elapsed();
        if !waited.is_zero() {
            self.writer_wait_us
                .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
        }
        Ok(Arc::get_mut(&mut self.store).expect("gate drained"))
    }

    /// Total time writers have spent waiting at the epoch gate.
    pub fn writer_wait_total(&self) -> Duration {
        Duration::from_micros(self.writer_wait_us.load(Ordering::Relaxed))
    }

    /// Swaps the underlying store wholesale — a replica installing a
    /// snapshot shipped from its primary. Waits at the same epoch gate as
    /// [`Engine::store_mut`] so no in-flight scan still holds the old
    /// store. Callers owning plan caches must clear them: the new store's
    /// document generations restart at zero.
    pub fn replace_store(&mut self, store: MassStore) -> Result<()> {
        self.store_mut()?;
        self.store = Arc::new(store);
        // The new store's generations restart at zero; every resident
        // view is untrusted.
        self.views.clear();
        Ok(())
    }

    /// The scan-pool width this engine resolves to: the configured
    /// [`EngineOptions::parallel_workers`], or one per available core.
    pub fn effective_workers(&self) -> usize {
        if self.options.parallel_workers > 0 {
            self.options.parallel_workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }

    /// Cumulative parallel-scan counters (all zero until the first
    /// parallel query creates the pool).
    pub fn parallel_stats(&self) -> ParallelScanStats {
        let guard = self.scan_pool.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(pool) => pool.stats(),
            None => ParallelScanStats::default(),
        }
    }

    /// The shared scan pool, created on first use and recreated when the
    /// configured width changes.
    fn scan_pool(&self) -> Arc<ScanPool> {
        let width = self.effective_workers().max(1);
        let mut guard = self.scan_pool.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(pool) if pool.width() == width => Arc::clone(pool),
            _ => {
                let pool = Arc::new(ScanPool::new(width));
                *guard = Some(Arc::clone(&pool));
                pool
            }
        }
    }

    /// Execution-time gate for the optimizer's parallel choice: only when
    /// parallel + batched execution are enabled and the plan carries a
    /// degree ≥ 2 does a query fan out.
    pub(crate) fn parallel_hooks(&self, plan: &QueryPlan) -> Option<ParallelHooks> {
        if !self.options.parallel || !self.options.batched {
            return None;
        }
        let choice = plan.parallel()?;
        if choice.degree < 2 {
            return None;
        }
        Some(ParallelHooks {
            store: Arc::clone(&self.store),
            pool: self.scan_pool(),
            choice,
        })
    }

    /// Current options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Mutable options (toggle the optimizer between runs).
    pub fn options_mut(&mut self) -> &mut EngineOptions {
        &mut self.options
    }

    /// Convenience: parse and load an XML string as a document.
    pub fn load_xml(&mut self, name: &str, xml: &str) -> Result<DocId> {
        Ok(self.store_mut()?.load_xml(name, xml)?)
    }

    /// Applies a logical update to `doc`: resolves the target XPath under
    /// shared access, then routes the mutation through the store's
    /// WAL-logged update path behind the epoch gate. Inserts append the
    /// fragment to the *first* match; deletes remove the subtrees of
    /// *every* match (skipping nodes already removed as part of an
    /// earlier match's subtree).
    pub fn apply_update(&mut self, doc: DocId, op: &UpdateOp) -> Result<UpdateOutcome> {
        let start = Instant::now();
        let buffer_before = self.store().buffer_pool().stats();
        let target = match op {
            UpdateOp::Insert { target, .. } | UpdateOp::Delete { target } => target,
        };
        let matched = self.query_doc(doc, target)?;
        if let UpdateOp::Insert { .. } = op {
            if let Some(first) = matched.first() {
                if !matches!(first.kind, RecordKind::Element | RecordKind::Document) {
                    return Err(EngineError::Unsupported(
                        "insert target must be an element or document node".into(),
                    ));
                }
            }
        }
        let wait_start = Instant::now();
        let store = self.store_mut()?;
        let writer_wait = wait_start.elapsed();
        let tuples_before = store.stats().tuples;
        let mut deleted = 0u64;
        match op {
            UpdateOp::Insert { fragment, .. } => {
                if let Some(first) = matched.first() {
                    store.append_fragment(&first.key, fragment)?;
                }
            }
            UpdateOp::Delete { .. } => {
                for entry in &matched {
                    if store.contains(&entry.key)? {
                        deleted += store.delete_subtree(&entry.key)?;
                    }
                }
            }
        }
        let inserted = store.stats().tuples.saturating_sub(tuples_before);
        let lsn = store.wal_stats().last_lsn;
        let doc_generation = store.doc_generation(doc);
        // Eager invalidation on the primary's write path; replica replay
        // bumps generations without coming through here and is covered by
        // the lazy generation check in `ViewCache::candidates`.
        self.views.invalidate_doc(doc.0);
        let buffer_after = self.store().buffer_pool().stats();
        let profile = QueryProfile {
            elapsed: start.elapsed(),
            buffer_hits: buffer_after.hits.saturating_sub(buffer_before.hits),
            buffer_misses: buffer_after.misses.saturating_sub(buffer_before.misses),
            rows: matched.len() as u64,
            writer_wait,
            ..QueryProfile::default()
        };
        Ok(UpdateOutcome {
            doc,
            matched: matched.len() as u64,
            inserted,
            deleted,
            lsn,
            doc_generation,
            profile,
        })
    }

    /// Folds the WAL into the page store and truncates it (see
    /// [`MassStore::checkpoint`]), behind the epoch gate. Returns the
    /// post-checkpoint WAL counters.
    pub fn checkpoint(&mut self) -> Result<WalStats> {
        let store = self.store_mut()?;
        store.checkpoint()?;
        Ok(store.wal_stats())
    }

    fn doc_entry(&self, doc: DocId) -> Result<NodeEntry> {
        let info = self.store.document(doc).ok_or(EngineError::NoDocuments)?;
        Ok(NodeEntry {
            key: info.doc_key.clone(),
            kind: RecordKind::Document,
            name: None,
        })
    }

    fn doc_scope(&self, doc: DocId) -> Result<KeyRange> {
        let info = self.store.document(doc).ok_or(EngineError::NoDocuments)?;
        Ok(KeyRange::subtree(&info.doc_key))
    }

    /// Compiles an XPath expression to its default plan.
    pub fn compile(&self, xpath: &str) -> Result<QueryPlan> {
        let expr = parse(xpath)?;
        build_plan(&expr)
    }

    /// Optimizes a plan for `doc` and reports the outcome. The parallel
    /// decision is always recorded on the resulting plan (even when
    /// `options.parallel` is off) so precompiled/cached plans carry it;
    /// execution gates on the option separately.
    pub fn optimize_plan(&self, plan: QueryPlan, doc: DocId) -> Result<OptimizeOutcome> {
        let scope = self.doc_scope(doc)?;
        let opts = OptimizerOptions {
            max_iterations: self.options.max_opt_iterations,
            set_semantics: self.options.set_semantics,
            disabled_rules: Vec::new(),
        };
        // The view/fusion probe is the *cleaned compiled* plan:
        // optimizer rules (child push-down, parent inversion) introduce
        // reverse-axis predicates that fall outside both the
        // containment fragment and the fusable fragment, so pattern
        // extraction must see the plan before they run.
        let probe =
            ((self.options.views || self.options.fuse) && self.options.set_semantics).then(|| {
                let mut p = plan.clone();
                opt::cleanup::cleanup(&mut p);
                p
            });
        let mut outcome = opt::optimize(plan, self.store(), &scope, &opts)?;
        if let Some(probe) = &probe {
            if self.options.views {
                self.apply_view_rewrite(&mut outcome, probe, doc, &scope)?;
            }
            if self.options.fuse {
                self.apply_fuse(&mut outcome, probe, &scope)?;
            }
        }
        outcome.plan.set_parallel(opt::parallel::decide(
            &outcome.plan,
            self.store(),
            &scope,
            self.effective_workers(),
            self.options.parallel_threshold,
            self.options.parallel_min_morsel,
        ));
        Ok(outcome)
    }

    /// The semantic-cache rewrite stage: try to answer the query from a
    /// materialized view. For each spine prefix of the query's tree
    /// pattern (longest first) and each valid view of `doc`, a
    /// homomorphism check decides containment; a sound rewrite replaces
    /// the covered steps with a [`Operator::ViewScan`] (plus
    /// compensation when the containment is strict) and is kept only
    /// when re-estimation beats the optimizer's plan — unless
    /// `view_greedy`. Every considered rewrite lands in the optimizer
    /// trace, accepted or rejected.
    fn apply_view_rewrite(
        &self,
        outcome: &mut OptimizeOutcome,
        probe: &QueryPlan,
        doc: DocId,
        scope: &KeyRange,
    ) -> Result<()> {
        let base_total = outcome.costs.total();
        let trace = &mut outcome.opt_trace.events;
        let Some(pattern) = crate::views::extract(probe) else {
            trace.push(OptEvent::ViewRewrite {
                view: "-".to_string(),
                total_before: base_total,
                total_after: None,
                applied: false,
                reason: "query outside the containment fragment",
            });
            return Ok(());
        };
        let generation = self.store.doc_generation(doc);
        let candidates = self.views.candidates(doc.0, generation);
        if candidates.is_empty() {
            trace.push(OptEvent::ViewRewrite {
                view: "-".to_string(),
                total_before: base_total,
                total_after: None,
                applied: false,
                reason: "no valid views for this document",
            });
            return Ok(());
        }
        // (plan, costs, total, trace index, view key)
        let mut best: Option<(QueryPlan, crate::cost::PlanCosts, u64, usize, String)> = None;
        for j in (1..=pattern.spine.len()).rev() {
            let prefix = pattern.prefix(j);
            let full = j == pattern.spine.len();
            for cand in &candidates {
                if !crate::views::contains(&cand.pattern, &prefix) {
                    if full {
                        trace.push(OptEvent::ViewRewrite {
                            view: cand.xpath.clone(),
                            total_before: base_total,
                            total_after: None,
                            applied: false,
                            reason: "containment not proven",
                        });
                    }
                    continue;
                }
                let equivalent = crate::views::contains(&prefix, &cand.pattern);
                if !equivalent && !prefix.descendant_rooted() {
                    trace.push(OptEvent::ViewRewrite {
                        view: cand.xpath.clone(),
                        total_before: base_total,
                        total_after: None,
                        applied: false,
                        reason: "absolute prefix requires an exact view",
                    });
                    continue;
                }
                let rewritten = crate::views::rewrite_with_view(
                    probe,
                    j,
                    equivalent,
                    &cand.xpath,
                    &cand.entries,
                );
                let costs = estimate(&rewritten, self.store(), scope)?;
                let total = costs.total();
                let accept = self.options.view_greedy || total < base_total;
                trace.push(OptEvent::ViewRewrite {
                    view: cand.xpath.clone(),
                    total_before: base_total,
                    total_after: Some(total),
                    applied: false,
                    reason: if accept {
                        if equivalent {
                            "equivalent — answered from view"
                        } else {
                            "contained — view scan + compensation"
                        }
                    } else {
                        "costlier than the optimized plan"
                    },
                });
                if accept && best.as_ref().is_none_or(|(_, _, t, _, _)| total < *t) {
                    let idx = trace.len() - 1;
                    best = Some((rewritten, costs, total, idx, cand.key.clone()));
                }
            }
            if best.is_some() {
                break; // longest covered prefix wins
            }
        }
        if let Some((mut plan, costs, total, idx, key)) = best {
            if let OptEvent::ViewRewrite { applied, .. } = &mut outcome.opt_trace.events[idx] {
                *applied = true;
            }
            plan.set_estimates(costs.cards(plan.len(), self.store.tuples_per_page()));
            self.views.touch(doc.0, &key);
            outcome.plan = plan;
            outcome.costs = costs;
            outcome.final_cost = total;
        }
        Ok(())
    }

    /// The whole-query fusion stage: collapse the plan's scan-bound
    /// step-chain suffix into a single page-pinned
    /// [`Operator::FusedScan`]. When a view rewrite was applied, the
    /// fused chain is the residual on top of the `ViewScan`; otherwise
    /// candidates come from the cleaned pre-rewrite probe. The
    /// candidate is kept only when re-estimation beats the current plan
    /// — unless `fuse_force` — and the decision lands in the optimizer
    /// trace either way.
    fn apply_fuse(
        &self,
        outcome: &mut OptimizeOutcome,
        probe: &QueryPlan,
        scope: &KeyRange,
    ) -> Result<()> {
        let base_total = outcome.costs.total();
        let base = if crate::views::plan_view(&outcome.plan).is_some() {
            &outcome.plan
        } else {
            probe
        };
        let cand = match opt::fuse::extract_candidate(base) {
            Ok(c) => c,
            Err(reason) => {
                outcome.opt_trace.events.push(OptEvent::Fuse {
                    label: "-".to_string(),
                    steps: 0,
                    total_before: base_total,
                    total_after: None,
                    applied: false,
                    reason,
                });
                return Ok(());
            }
        };
        let costs = estimate(&cand.plan, self.store(), scope)?;
        let total = costs.total();
        let accept = self.options.fuse_force || total < base_total;
        outcome.opt_trace.events.push(OptEvent::Fuse {
            label: cand.label,
            steps: cand.steps,
            total_before: base_total,
            total_after: Some(total),
            applied: accept,
            reason: if self.options.fuse_force {
                "forced"
            } else if accept {
                "fused scan beats the step pipeline"
            } else {
                "costlier than the step pipeline"
            },
        });
        if accept {
            let mut plan = cand.plan;
            plan.set_estimates(costs.cards(plan.len(), self.store.tuples_per_page()));
            outcome.plan = plan;
            outcome.costs = costs;
            outcome.final_cost = total;
        }
        Ok(())
    }

    /// Cumulative fused-execution counters: queries answered through a
    /// fused chain, and the location steps those chains collapsed.
    pub fn fused_stats(&self) -> (u64, u64) {
        (
            self.fused_chains.load(Ordering::Relaxed),
            self.fused_steps.load(Ordering::Relaxed),
        )
    }

    /// Bumps the cumulative fused counters for one execution of `plan`.
    pub(crate) fn record_fused(&self, plan: &QueryPlan) {
        let (chains, steps) = crate::plan::fused_in_plan(plan);
        if chains > 0 {
            self.fused_chains.fetch_add(chains, Ordering::Relaxed);
            self.fused_steps.fetch_add(steps, Ordering::Relaxed);
        }
    }

    /// Records a set-semantics query result with the view cache:
    /// admission counting for fragment queries and materialization once
    /// the frequency threshold is met. Returns `true` when this call
    /// *newly* materialized a view — callers holding compiled-plan
    /// caches should drop their entry for `xpath` so the next
    /// compilation sees the view.
    pub fn observe_result(&self, doc: DocId, xpath: &str, entries: &[NodeEntry]) -> bool {
        if !self.options.views || !self.options.set_semantics {
            return false;
        }
        let Ok(compiled) = self.compile(xpath) else {
            return false;
        };
        let mut compiled = compiled;
        opt::cleanup::cleanup(&mut compiled);
        let Some(pattern) = crate::views::extract(&compiled) else {
            return false;
        };
        let key = pattern.key();
        let generation = self.store.doc_generation(doc);
        if !self
            .views
            .observe(doc.0, generation, &key, self.options.view_admit_after)
        {
            return false;
        }
        let mut sorted = entries.to_vec();
        sorted.sort_by(|a, b| a.key.cmp(&b.key));
        sorted.dedup_by(|a, b| a.key == b.key);
        self.views.admit(
            doc.0,
            generation,
            key,
            xpath.to_string(),
            pattern,
            Arc::new(sorted),
            self.options.view_budget_bytes,
        )
    }

    /// Executes a plan against `doc`.
    pub fn execute_plan(&self, plan: &QueryPlan, doc: DocId) -> Result<Vec<NodeEntry>> {
        if self.options.views {
            if crate::views::plan_view(plan).is_some() {
                self.views.record_hit();
            } else {
                self.views.record_miss();
            }
        }
        self.record_fused(plan);
        let root_ctx = self.doc_entry(doc)?;
        let env = Env {
            plan,
            store: self.store(),
            root_ctx: &root_ctx,
            stats: None,
        };
        let hooks = self.parallel_hooks(plan);
        exec::run_plan(
            env,
            None,
            self.options.set_semantics,
            self.options.batched,
            hooks.as_ref(),
        )
    }

    /// Compiles, (optionally) optimizes, and executes `xpath` on `doc`.
    pub fn query_doc(&self, doc: DocId, xpath: &str) -> Result<Vec<NodeEntry>> {
        let plan = self.compile(xpath)?;
        let plan = if self.options.optimize {
            self.optimize_plan(plan, doc)?.plan
        } else {
            plan
        };
        let out = self.execute_plan(&plan, doc)?;
        self.observe_result(doc, xpath, &out);
        Ok(out)
    }

    /// Evaluates `xpath` with the context node set to `ctx` (relative
    /// paths start there; absolute paths still start at the containing
    /// document's root). This is the §VII XQuery hook: "the context node
    /// could be provided from another XPath expression".
    pub fn query_from(&self, ctx: &NodeEntry, xpath: &str) -> Result<Vec<NodeEntry>> {
        let expr = parse(xpath)?;
        let plan = crate::plan::builder::build_relative_plan(&expr)?;
        let doc = self
            .store
            .document_of(&ctx.key)
            .ok_or_else(|| EngineError::Unsupported("context node is not stored".into()))?;
        let plan = if self.options.optimize {
            self.optimize_plan(plan, doc)?.plan
        } else {
            plan
        };
        let root_ctx = self.doc_entry(doc)?;
        let env = Env {
            plan: &plan,
            store: self.store(),
            root_ctx: &root_ctx,
            stats: None,
        };
        exec::run_from_mode(
            env,
            Some(ctx),
            self.options.set_semantics,
            self.options.batched,
        )
    }

    /// Runs `xpath` against every loaded document, concatenating results
    /// in document order.
    pub fn query(&self, xpath: &str) -> Result<Vec<NodeEntry>> {
        if self.store.documents().is_empty() {
            return Err(EngineError::NoDocuments);
        }
        let mut out = Vec::new();
        for i in 0..self.store.documents().len() {
            out.extend(self.query_doc(DocId(i as u32), xpath)?);
        }
        Ok(out)
    }

    /// Opens a *streaming* cursor over `xpath` on `doc`: tuples are
    /// produced one `next()` at a time through the pipelined executor,
    /// without materializing the result set (the paper's §VII execution
    /// model as a public API). Tuples arrive in pipeline order; duplicate
    /// elimination and document-order sorting are the caller's choice.
    pub fn stream<'a>(&'a self, doc: DocId, xpath: &str) -> Result<QueryStream<'a>> {
        let plan = self.compile(xpath)?;
        let plan = if self.options.optimize {
            self.optimize_plan(plan, doc)?.plan
        } else {
            plan
        };
        let root_ctx = self.doc_entry(doc)?;
        QueryStream::new(self, plan, root_ctx)
    }

    /// Opens a streaming cursor over an already-compiled (and possibly
    /// cached) `plan` on `doc`. The serving layer executes plan-cache
    /// hits through this, pulling tuples so it can enforce per-query
    /// deadlines between pulls.
    pub fn stream_plan(&self, plan: QueryPlan, doc: DocId) -> Result<QueryStream<'_>> {
        let root_ctx = self.doc_entry(doc)?;
        QueryStream::new(self, plan, root_ctx)
    }

    /// Resolves the string values of a result set (element string-value,
    /// attribute/text value).
    pub fn string_values(&self, entries: &[NodeEntry]) -> Result<Vec<String>> {
        entries
            .iter()
            .map(|e| Ok(self.store.string_value(&e.key)?))
            .collect()
    }

    /// Resolves the names of a result set (empty string for unnamed
    /// nodes). A value-index tuple's name is recovered from its record.
    pub fn names_of(&self, entries: &[NodeEntry]) -> Result<Vec<String>> {
        entries
            .iter()
            .map(|e| {
                if let Some(n) = e.name {
                    return Ok(self.store.names().resolve(n).to_string());
                }
                match self.store.get(&e.key)? {
                    Some(rec) => Ok(rec
                        .name
                        .map(|n| self.store.names().resolve(n).to_string())
                        .unwrap_or_default()),
                    None => Ok(String::new()),
                }
            })
            .collect()
    }

    /// Shows default vs optimized plan, annotated with live costs
    /// (the paper's Figs 6–9 as text).
    pub fn explain(&self, doc: DocId, xpath: &str) -> Result<Explain> {
        let scope = self.doc_scope(doc)?;
        let mut default_plan = self.compile(xpath)?;
        // Clean-up is part of the default pipeline in the paper's figures.
        opt::cleanup::cleanup(&mut default_plan);
        let default_costs = estimate(&default_plan, self.store(), &scope)?;
        let outcome = self.optimize_plan(default_plan.clone(), doc)?;
        Ok(Explain {
            default_plan: display::render(&default_plan, Some(&default_costs)),
            optimized_plan: display::render(&outcome.plan, Some(&outcome.costs)),
            default_cost: default_costs.total(),
            optimized_cost: outcome.final_cost,
            applied: outcome.applied,
            iterations: outcome.iterations,
            opt_trace: outcome.opt_trace,
        })
    }

    /// `EXPLAIN ANALYZE`: compiles, (optionally) optimizes, and executes
    /// `xpath` on `doc` with per-operator instrumentation enabled,
    /// returning an [`Analysis`] holding the estimate-stamped plan, the
    /// optimizer's pass log, and the recorded actuals.
    ///
    /// Execution follows the engine's configured mode (scalar, batched,
    /// or parallel) exactly as [`Engine::query_doc`] would — the actual
    /// row counts are identical in every mode; only batch/timing counters
    /// differ.
    pub fn analyze_doc(&self, doc: DocId, xpath: &str) -> Result<Analysis> {
        let buffer_before = self.store().buffer_pool().stats();
        let par_before = self.parallel_stats();
        let start = std::time::Instant::now();
        let scope = self.doc_scope(doc)?;
        let mut plan = self.compile(xpath)?;
        opt::cleanup::cleanup(&mut plan);
        let default_costs = estimate(&plan, self.store(), &scope)?;
        let default_cost = default_costs.total();
        let (plan, final_cost, applied, opt_trace) = if self.options.optimize {
            let outcome = self.optimize_plan(plan, doc)?;
            (
                outcome.plan,
                outcome.final_cost,
                outcome.applied,
                outcome.opt_trace,
            )
        } else {
            // Default-plan analysis: stamp the default estimates and log
            // the two passes that did run (no rewriting).
            plan.set_estimates(default_costs.cards(plan.len(), self.store.tuples_per_page()));
            let opt_trace = crate::opt::OptTrace {
                events: vec![
                    crate::opt::OptEvent::Cleanup,
                    crate::opt::OptEvent::CostGathering {
                        total: default_cost,
                    },
                ],
            };
            (plan, default_cost, Vec::new(), opt_trace)
        };
        let stats = exec::stats::ExecStats::new(plan.len());
        let root_ctx = self.doc_entry(doc)?;
        let env = Env {
            plan: &plan,
            store: self.store(),
            root_ctx: &root_ctx,
            stats: Some(&stats),
        };
        let hooks = self.parallel_hooks(&plan);
        let out = exec::run_plan(
            env,
            None,
            self.options.set_semantics,
            self.options.batched,
            hooks.as_ref(),
        )?;
        let elapsed = start.elapsed();
        let actuals = stats.snapshot();
        let buffer_after = self.store().buffer_pool().stats();
        let par = self.parallel_stats();
        let (fused_chains, fused_steps) = crate::plan::fused_in_plan(&plan);
        let profile = QueryProfile {
            elapsed,
            buffer_hits: buffer_after.hits.saturating_sub(buffer_before.hits),
            buffer_misses: buffer_after.misses.saturating_sub(buffer_before.misses),
            batch_pins: buffer_after
                .batch_pins
                .saturating_sub(buffer_before.batch_pins),
            pins_saved: buffer_after
                .pins_saved
                .saturating_sub(buffer_before.pins_saved),
            morsels: par.morsels.saturating_sub(par_before.morsels),
            worker_batches: par.worker_batches.saturating_sub(par_before.worker_batches),
            merge_stalls: par.merge_stalls.saturating_sub(par_before.merge_stalls),
            fused_chains,
            fused_steps,
            decodes_v1: buffer_after
                .decodes_v1
                .saturating_sub(buffer_before.decodes_v1),
            decodes_v2: buffer_after
                .decodes_v2
                .saturating_sub(buffer_before.decodes_v2),
            rows: out.len() as u64,
            writer_wait: Duration::ZERO,
            operators: Some(actuals.clone()),
        };
        Ok(Analysis {
            xpath: xpath.to_string(),
            plan,
            optimized: self.options.optimize,
            default_cost,
            final_cost,
            applied,
            opt_trace,
            actuals,
            rows: out.len() as u64,
            profile,
        })
    }

    /// Answers `count(simple-path)` straight from the name index when the
    /// path is a bare descendant step — the paper's "count on the index
    /// level without going to data". Returns `None` for anything more
    /// complex.
    fn try_count_fast(&self, doc: DocId, expr: &Expr) -> Result<Option<f64>> {
        let Expr::FunctionCall(name, args) = expr else {
            return Ok(None);
        };
        if &**name != "count" || args.len() != 1 {
            return Ok(None);
        }
        let Ok(mut plan) = build_plan(&args[0]) else {
            return Ok(None);
        };
        opt::cleanup::cleanup(&mut plan);
        let path = plan.context_path();
        if path.len() != 1 {
            return Ok(None);
        }
        let Operator::Step {
            axis: axis @ (vamana_flex::Axis::Descendant | vamana_flex::Axis::DescendantOrSelf),
            test,
            context: None,
            predicates,
            ..
        } = plan.op(path[0])
        else {
            return Ok(None);
        };
        if !predicates.is_empty() || matches!(test, crate::plan::TestSpec::AnyNode) {
            return Ok(None);
        }
        let scope = self.doc_scope(doc)?;
        Ok(Some(
            crate::cost::count_nodetest(self.store(), *axis, test, &scope) as f64,
        ))
    }

    /// Evaluates an arbitrary XPath expression on `doc`, returning an
    /// XPath [`Value`] — supports scalar results like `count(//person)`.
    /// Simple `count(//name)` calls are answered index-only, without
    /// executing the path.
    pub fn evaluate(&self, doc: DocId, xpath: &str) -> Result<Value> {
        let expr = parse(xpath)?;
        if let Some(n) = self.try_count_fast(doc, &expr)? {
            return Ok(Value::Num(n));
        }
        match &expr {
            Expr::Path(_) | Expr::Union(..) | Expr::Filter { .. } => {
                let nodes = self.query_doc(doc, xpath)?;
                Ok(Value::Nodes(nodes))
            }
            _ => {
                // Scalar expression: build it as a predicate-style tree and
                // evaluate once against the document node.
                let mut plan = QueryPlan::new(Vec::new(), crate::plan::OpId(0));
                let root = plan.push(Operator::Root { child: None });
                plan.set_root(root);
                let expr_id = crate::plan::builder::build_scalar(&mut plan, &expr)?;
                let root_ctx = self.doc_entry(doc)?;
                let env = Env {
                    plan: &plan,
                    store: self.store(),
                    root_ctx: &root_ctx,
                    stats: None,
                };
                exec::eval_expr(env, expr_id, &root_ctx, 1, 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<site><people>
      <person id="p0"><name>Ann</name></person>
      <person id="p1"><name>Bob</name><watches><watch/><watch/></watches></person>
      <person id="p2"><name>Cyd</name><address><province>Vermont</province></address></person>
    </people></site>"#;

    fn engine() -> Engine {
        let mut store = MassStore::open_memory();
        store.load_xml("doc", DOC).unwrap();
        Engine::new(store)
    }

    #[test]
    fn query_returns_document_order_nodeset() {
        let e = engine();
        let r = e.query("//person").unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn optimized_and_default_agree() {
        let mut e = engine();
        for q in [
            "//person/address",
            "//watches/watch/ancestor::person",
            "/descendant::name/parent::*/self::person/address",
            "//province[text()='Vermont']/ancestor::person",
            "//person[@id='p1']/watches/watch",
            "//name",
        ] {
            e.options_mut().optimize = true;
            let opt = e.query(q).unwrap();
            e.options_mut().optimize = false;
            let dflt = e.query(q).unwrap();
            assert_eq!(opt, dflt, "optimizer changed semantics of {q}");
        }
    }

    #[test]
    fn string_values_and_names_resolve() {
        let e = engine();
        let r = e.query("//name").unwrap();
        let vals = e.string_values(&r).unwrap();
        assert_eq!(vals, vec!["Ann", "Bob", "Cyd"]);
        let names = e.names_of(&r).unwrap();
        assert!(names.iter().all(|n| n == "name"));
    }

    #[test]
    fn explain_shows_costs_and_rules() {
        let e = engine();
        let doc = DocId(0);
        let ex = e.explain(doc, "//person/address").unwrap();
        assert!(ex.default_plan.contains("COUNT="), "{}", ex.default_plan);
        assert!(ex.optimized_cost <= ex.default_cost);
        assert!(!ex.applied.is_empty());
    }

    #[test]
    fn evaluate_scalar_expressions() {
        let e = engine();
        let doc = DocId(0);
        match e.evaluate(doc, "count(//person)").unwrap() {
            Value::Num(n) => assert_eq!(n, 3.0),
            other => panic!("wrong: {other:?}"),
        }
        match e.evaluate(doc, "1 + 2 * 3").unwrap() {
            Value::Num(n) => assert_eq!(n, 7.0),
            other => panic!("wrong: {other:?}"),
        }
        match e.evaluate(doc, "concat('a', 'b')").unwrap() {
            Value::Str(s) => assert_eq!(s, "ab"),
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn stream_yields_same_tuples_as_query() {
        let e = engine();
        let mut stream = e.stream(DocId(0), "//person/name").unwrap();
        let mut streamed = Vec::new();
        while let Some(t) = stream.next().unwrap() {
            streamed.push(t);
        }
        streamed.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(streamed, e.query("//person/name").unwrap());
        // Exhausted streams stay exhausted.
        assert!(stream.next().unwrap().is_none());
        // The stream's plan is the optimized one.
        assert!(!stream.plan().is_empty());
    }

    #[test]
    fn stream_is_lazy() {
        // Pulling one tuple from a large result must not touch the whole
        // store.
        let mut xml = String::from("<r>");
        for i in 0..20_000 {
            xml.push_str(&format!("<e>{i}</e>"));
        }
        xml.push_str("</r>");
        let mut store = MassStore::open_memory();
        store.load_xml("big", &xml).unwrap();
        let e = Engine::new(store);
        e.store().buffer_pool().reset_stats();
        let mut stream = e.stream(DocId(0), "//e").unwrap();
        assert!(stream.next().unwrap().is_some());
        let b = e.store().stats().buffer;
        let total = e.store().stats().pages as u64;
        assert!(
            b.hits + b.misses < total / 2,
            "first tuple touched {} of {} pages",
            b.hits + b.misses,
            total
        );
    }

    #[test]
    fn count_fast_path_matches_execution() {
        let e = engine();
        let doc = DocId(0);
        // Fast path fires for these...
        for (q, expect) in [
            ("count(//person)", 3.0),
            ("count(//watch)", 2.0),
            ("count(//@id)", 3.0),
        ] {
            match e.evaluate(doc, q).unwrap() {
                Value::Num(n) => assert_eq!(n, expect, "{q}"),
                other => panic!("{q}: {other:?}"),
            }
        }
        // ...and complex arguments fall back to execution with the same
        // answers.
        match e.evaluate(doc, "count(//person[address])").unwrap() {
            Value::Num(n) => assert_eq!(n, 1.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_documents_is_an_error() {
        let e = Engine::new(MassStore::open_memory());
        assert!(matches!(e.query("//a"), Err(EngineError::NoDocuments)));
    }

    #[test]
    fn views_answer_repeated_queries_from_cache() {
        let mut e = engine();
        e.options_mut().views = true;
        e.options_mut().view_admit_after = 2;
        let doc = DocId(0);
        let cold = e.query_doc(doc, "//name").unwrap();
        let warm = e.query_doc(doc, "//name").unwrap(); // second sighting admits
        assert_eq!(e.views().stats().views, 1);
        let hot = e.query_doc(doc, "//name").unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold, hot);
        let stats = e.views().stats();
        assert!(stats.hits >= 1, "{stats:?}");
        assert!(stats.misses >= 2, "{stats:?}");
        let outcome = e.optimize_plan(e.compile("//name").unwrap(), doc).unwrap();
        assert_eq!(crate::views::plan_view(&outcome.plan), Some("//name"));
    }

    #[test]
    fn strict_containment_rewrites_match_direct_evaluation() {
        let mut e = engine();
        e.options_mut().views = true;
        e.options_mut().view_admit_after = 1;
        e.options_mut().view_greedy = true;
        let doc = DocId(0);
        // Materialize `//person`, then answer narrower queries from it.
        assert_eq!(e.query_doc(doc, "//person").unwrap().len(), 3);
        let direct = engine();
        for q in [
            "//person",
            "//person[address]",
            "//person[watches]",
            "//person[address/province]",
            "//person/name",
        ] {
            // Earlier queries in the loop self-materialize (admit_after
            // is 1), so a later query may pick a tighter view than
            // `//person` — any view is fine, correctness is the point.
            let outcome = e.optimize_plan(e.compile(q).unwrap(), doc).unwrap();
            assert!(
                crate::views::plan_view(&outcome.plan).is_some(),
                "no view rewrite for {q}"
            );
            assert_eq!(
                e.query_doc(doc, q).unwrap(),
                direct.query_doc(doc, q).unwrap(),
                "view rewrite changed semantics of {q}"
            );
        }
    }

    #[test]
    fn update_invalidates_views() {
        let mut e = engine();
        e.options_mut().views = true;
        e.options_mut().view_admit_after = 1;
        let doc = DocId(0);
        assert_eq!(e.query_doc(doc, "//name").unwrap().len(), 3);
        assert_eq!(e.views().stats().views, 1);
        e.apply_update(
            doc,
            &UpdateOp::Insert {
                target: "//people".into(),
                fragment: "<person id='p3'><name>Dee</name></person>".into(),
            },
        )
        .unwrap();
        let stats = e.views().stats();
        assert_eq!(stats.views, 0, "{stats:?}");
        assert!(stats.evictions >= 1, "{stats:?}");
        assert_eq!(e.query_doc(doc, "//name").unwrap().len(), 4);
    }

    #[test]
    fn analyze_marks_view_answered_queries() {
        let mut e = engine();
        e.options_mut().views = true;
        e.options_mut().view_admit_after = 1;
        let doc = DocId(0);
        e.query_doc(doc, "//name").unwrap();
        let a = e.analyze_doc(doc, "//name").unwrap();
        assert_eq!(a.view(), Some("//name"));
        assert_eq!(a.rows, 3);
        assert!(
            a.render().contains("answered from view: //name"),
            "{}",
            a.render()
        );
        assert!(a.render_json().contains("\"view\":\"//name\""));
        assert!(a
            .opt_trace
            .events
            .iter()
            .any(|ev| matches!(ev, OptEvent::ViewRewrite { applied: true, .. })));
    }

    #[test]
    fn view_trace_records_rejections() {
        let mut e = engine();
        e.options_mut().views = true;
        e.options_mut().view_admit_after = 1;
        let doc = DocId(0);
        e.query_doc(doc, "//watch").unwrap();
        // A fragment query no resident view contains.
        let outcome = e
            .optimize_plan(e.compile("//address").unwrap(), doc)
            .unwrap();
        assert!(outcome.opt_trace.events.iter().any(|ev| matches!(
            ev,
            OptEvent::ViewRewrite {
                applied: false,
                reason: "containment not proven",
                ..
            }
        )));
        // A query outside the decidable fragment is never rewritten.
        let outcome = e
            .optimize_plan(e.compile("//person[1]").unwrap(), doc)
            .unwrap();
        assert!(outcome.opt_trace.events.iter().any(|ev| matches!(
            ev,
            OptEvent::ViewRewrite {
                applied: false,
                reason: "query outside the containment fragment",
                ..
            }
        )));
    }

    #[test]
    fn fuse_trace_records_decisions() {
        let mut e = engine();
        e.options_mut().fuse = true;
        let doc = DocId(0);
        // `//person/address` resolves through the name index in two
        // cheap probes; the fused scan must sweep the whole person
        // envelope — the model prices both and declines.
        let outcome = e
            .optimize_plan(e.compile("//person/address").unwrap(), doc)
            .unwrap();
        assert!(
            outcome.opt_trace.events.iter().any(|ev| matches!(
                ev,
                OptEvent::Fuse {
                    applied: false,
                    total_after: Some(_),
                    ..
                }
            )),
            "cost model should decline fusing an index-resolvable chain: {}",
            outcome.opt_trace.render()
        );
        // Chains outside the fragment trace the extraction failure.
        let outcome = e
            .optimize_plan(e.compile("//person[1]/name").unwrap(), doc)
            .unwrap();
        assert!(outcome.opt_trace.events.iter().any(|ev| matches!(
            ev,
            OptEvent::Fuse {
                applied: false,
                total_after: None,
                ..
            }
        )));
    }

    #[test]
    fn forced_fusion_matches_unfused_results() {
        let mut e = engine();
        let doc = DocId(0);
        let queries = [
            "/site/*//*",
            "//person/name",
            "//people//*",
            "//person[watches/watch]/name",
            "/site/people/person//*",
        ];
        let plain: Vec<_> = queries
            .iter()
            .map(|q| e.query_doc(doc, q).unwrap())
            .collect();
        e.options_mut().fuse = true;
        e.options_mut().fuse_force = true;
        for (q, want) in queries.iter().zip(&plain) {
            assert_eq!(
                &e.query_doc(doc, q).unwrap(),
                want,
                "fusion changed semantics of {q}"
            );
        }
        // The fused plan really ran fused operators, and the analysis
        // surfaces them.
        let a = e.analyze_doc(doc, "/site/*//*").unwrap();
        assert!(a.profile.fused_chains >= 1, "{}", a.render());
        assert!(a.render().contains("FusedScan"), "{}", a.render());
        assert!(
            a.render().contains("fused: 1 chain (2 steps collapsed)"),
            "{}",
            a.render()
        );
        assert!(a.render_json().contains("\"fused_chains\":1"));
        let (chains, steps) = e.fused_stats();
        assert!(chains >= 1 && steps >= 2);
    }

    #[test]
    fn fusion_composes_with_view_rewrite() {
        let plain = engine();
        let doc = DocId(0);
        let want = plain.query_doc(doc, "//person/*//*").unwrap();
        let mut e = engine();
        e.options_mut().views = true;
        e.options_mut().view_admit_after = 1;
        e.options_mut().view_greedy = true;
        e.options_mut().fuse = true;
        e.options_mut().fuse_force = true;
        // Materialize `//person`, then answer a longer query from it:
        // the residual chain past the view scan is scan-bound and fuses.
        // (Analyze before re-querying — a second sighting would admit
        // the long query's own result as an equivalent view.)
        e.query_doc(doc, "//person").unwrap();
        let a = e.analyze_doc(doc, "//person/*//*").unwrap();
        assert_eq!(a.view(), Some("//person"), "{}", a.render());
        assert!(a.profile.fused_chains >= 1, "{}", a.render());
        assert_eq!(e.query_doc(doc, "//person/*//*").unwrap(), want);
        // Scalar (unbatched) fused execution is the differential oracle.
        e.options_mut().batched = false;
        assert_eq!(e.query_doc(doc, "//person/*//*").unwrap(), want);
    }

    #[test]
    fn fusion_composes_with_parallel_scans_in_document_order() {
        let mut xml = String::from("<site><people>");
        for i in 0..4000 {
            xml.push_str(&format!(
                "<person id=\"p{i}\"><name>n{i}</name><watches><watch/></watches></person>"
            ));
        }
        xml.push_str("</people></site>");
        let mut store = MassStore::open_memory();
        store.load_xml("big", &xml).unwrap();
        let mut e = Engine::new(store);
        let doc = DocId(0);
        let want = e.query_doc(doc, "//person//*").unwrap();
        e.options_mut().parallel = true;
        e.options_mut().parallel_threshold = 1;
        e.options_mut().parallel_min_morsel = 1;
        e.options_mut().fuse = true;
        e.options_mut().fuse_force = true;
        let got = e.query_doc(doc, "//person//*").unwrap();
        assert_eq!(got, want);
        assert!(got.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn multiple_documents_queried_in_order() {
        let mut store = MassStore::open_memory();
        store.load_xml("a", "<r><x>1</x></r>").unwrap();
        store.load_xml("b", "<r><x>2</x><x>3</x></r>").unwrap();
        let e = Engine::new(store);
        let r = e.query("//x").unwrap();
        assert_eq!(e.string_values(&r).unwrap(), vec!["1", "2", "3"]);
        let r = e.query_doc(DocId(1), "//x").unwrap();
        assert_eq!(r.len(), 2);
    }
}
