//! Compilation of the XPath AST into a default VAMANA query plan
//! (paper §IV-A / §V-A).
//!
//! Each location step becomes one [`Operator::Step`]; predicates become
//! predicate trees of `ξ`/`β`/`L` operators; the parse tree is built
//! bottom-up and every node maps to exactly one algebra operator.

use crate::error::{EngineError, Result};
use crate::plan::{ArithOp, BinOp, ContextSource, OpId, Operator, QueryPlan, TestSpec};
use vamana_xpath::{ast, Expr, LocationPath, NodeTest};

/// Compiles a parsed XPath expression into its default query plan.
///
/// The expression must be a node-set expression (a path, filter, or
/// union); scalar top-level expressions like `1 + 1` are rejected here
/// and handled by the engine's `evaluate` entry point instead.
pub fn build_plan(expr: &Expr) -> Result<QueryPlan> {
    build_plan_with_source(expr, ContextSource::QueryRoot)
}

/// Like [`build_plan`], but relative paths anchor at an *outer* context
/// tuple supplied at execution time ([`crate::exec::run_from`]) instead
/// of the query root — the entry point XQuery-style callers use to
/// evaluate `$x/rel/ative` paths against bound nodes. Absolute paths
/// still anchor at the document root.
pub fn build_relative_plan(expr: &Expr) -> Result<QueryPlan> {
    build_plan_with_source(expr, ContextSource::OuterTuple)
}

fn build_plan_with_source(expr: &Expr, leaf_source: ContextSource) -> Result<QueryPlan> {
    let mut plan = QueryPlan::new(Vec::new(), OpId(0));
    let root = plan.push(Operator::Root { child: None });
    let top = build_nodeset(&mut plan, expr, leaf_source)?;
    *plan.op_mut(root) = Operator::Root { child: Some(top) };
    plan.set_root(root);
    Ok(plan)
}

/// Builds a *scalar* expression (e.g. `count(//person)`, `1 + 2`) into an
/// existing plan arena, returning the expression root for evaluation with
/// [`crate::exec::eval_expr`]. Used by the engine's `evaluate` entry point.
pub fn build_scalar(plan: &mut QueryPlan, expr: &Expr) -> Result<OpId> {
    build_value_expr(plan, expr)
}

/// Builds a node-set-producing subplan, returning the id of its top
/// operator. `leaf_source` says where leaf steps take their context from.
fn build_nodeset(plan: &mut QueryPlan, expr: &Expr, leaf_source: ContextSource) -> Result<OpId> {
    match expr {
        Expr::Path(path) => build_path(plan, path, leaf_source),
        Expr::Union(l, r) => {
            let left = build_nodeset(plan, l, leaf_source)?;
            let right = build_nodeset(plan, r, leaf_source)?;
            Ok(plan.push(Operator::Union { left, right }))
        }
        Expr::Filter {
            primary,
            predicates,
            path,
        } => {
            // `(expr)[p]/rel`: evaluate primary as node-set, filter, then
            // continue with the relative path anchored at each survivor.
            let mut top = build_nodeset(plan, primary, leaf_source)?;
            if !predicates.is_empty() {
                // Positional semantics over the whole primary node-set.
                let preds = predicates
                    .iter()
                    .map(|p| build_predicate(plan, p))
                    .collect::<Result<Vec<_>>>()?;
                top = plan.push(Operator::Filter {
                    input: top,
                    predicates: preds,
                });
            }
            if let Some(rel) = path {
                top = append_path(plan, top, rel)?;
            }
            Ok(top)
        }
        other => Err(EngineError::Unsupported(format!(
            "expression does not produce a node-set: {other}"
        ))),
    }
}

/// Builds a location path as a chain of step operators; returns the top
/// (last step) id.
fn build_path(
    plan: &mut QueryPlan,
    path: &LocationPath,
    leaf_source: ContextSource,
) -> Result<OpId> {
    let source = if path.absolute {
        ContextSource::QueryRoot
    } else {
        leaf_source
    };
    let mut context: Option<OpId> = None;
    if path.steps.is_empty() {
        // Bare `/`: the document node itself.
        return Ok(plan.push(Operator::Step {
            axis: vamana_flex::Axis::SelfAxis,
            test: TestSpec::AnyNode,
            context: None,
            source: ContextSource::QueryRoot,
            predicates: Vec::new(),
        }));
    }
    for (i, step) in path.steps.iter().enumerate() {
        let preds = step
            .predicates
            .iter()
            .map(|p| build_predicate(plan, p))
            .collect::<Result<Vec<_>>>()?;
        let id = plan.push(Operator::Step {
            axis: step.axis,
            test: lower_test(&step.test),
            context,
            source: if i == 0 {
                source
            } else {
                ContextSource::QueryRoot
            },
            predicates: preds,
        });
        context = Some(id);
    }
    Ok(context.expect("at least one step"))
}

/// Appends a relative path on top of an existing node-set operator.
fn append_path(plan: &mut QueryPlan, base: OpId, path: &LocationPath) -> Result<OpId> {
    let mut context = Some(base);
    for step in &path.steps {
        let preds = step
            .predicates
            .iter()
            .map(|p| build_predicate(plan, p))
            .collect::<Result<Vec<_>>>()?;
        let id = plan.push(Operator::Step {
            axis: step.axis,
            test: lower_test(&step.test),
            context,
            source: ContextSource::QueryRoot,
            predicates: preds,
        });
        context = Some(id);
    }
    Ok(context.expect("base provided"))
}

fn lower_test(test: &NodeTest) -> TestSpec {
    match test {
        NodeTest::Name(n) => TestSpec::Named(n.clone()),
        NodeTest::Wildcard => TestSpec::Wildcard,
        // Namespace-wildcard matching degrades to a prefix comparison at
        // execution time; represent as a name with trailing `:*`.
        NodeTest::NsWildcard(p) => TestSpec::Named(format!("{p}:*").into()),
        NodeTest::Text => TestSpec::Text,
        NodeTest::Node => TestSpec::AnyNode,
        NodeTest::Comment => TestSpec::Comment,
        NodeTest::Pi(t) => TestSpec::Pi(t.clone()),
    }
}

/// Builds a predicate tree. A bare path becomes an exist predicate `ξ`;
/// comparisons become `β`; everything else becomes expression operators
/// evaluated per tuple.
fn build_predicate(plan: &mut QueryPlan, expr: &Expr) -> Result<OpId> {
    match expr {
        Expr::Path(_) | Expr::Union(..) | Expr::Filter { .. } => {
            let path = build_nodeset(plan, expr, ContextSource::OuterTuple)?;
            Ok(plan.push(Operator::Exists { path }))
        }
        _ => build_value_expr(plan, expr),
    }
}

/// Builds a value expression (operand of comparisons, function args, ...).
fn build_value_expr(plan: &mut QueryPlan, expr: &Expr) -> Result<OpId> {
    match expr {
        Expr::Path(_) | Expr::Union(..) | Expr::Filter { .. } => {
            build_nodeset(plan, expr, ContextSource::OuterTuple)
        }
        Expr::Literal(s) => Ok(plan.push(Operator::Literal { value: s.clone() })),
        Expr::Number(n) => Ok(plan.push(Operator::Number { value: *n })),
        Expr::Or(l, r) => {
            let left = build_predicate(plan, l)?;
            let right = build_predicate(plan, r)?;
            Ok(plan.push(Operator::Binary {
                op: BinOp::Or,
                left,
                right,
            }))
        }
        Expr::And(l, r) => {
            let left = build_predicate(plan, l)?;
            let right = build_predicate(plan, r)?;
            Ok(plan.push(Operator::Binary {
                op: BinOp::And,
                left,
                right,
            }))
        }
        Expr::Equality(op, l, r) => {
            let bin = match op {
                ast::EqOp::Eq => BinOp::Eq,
                ast::EqOp::Ne => BinOp::Ne,
            };
            let left = build_value_expr(plan, l)?;
            let right = build_value_expr(plan, r)?;
            Ok(plan.push(Operator::Binary {
                op: bin,
                left,
                right,
            }))
        }
        Expr::Relational(op, l, r) => {
            let bin = match op {
                ast::RelOp::Lt => BinOp::Lt,
                ast::RelOp::Le => BinOp::Le,
                ast::RelOp::Gt => BinOp::Gt,
                ast::RelOp::Ge => BinOp::Ge,
            };
            let left = build_value_expr(plan, l)?;
            let right = build_value_expr(plan, r)?;
            Ok(plan.push(Operator::Binary {
                op: bin,
                left,
                right,
            }))
        }
        Expr::Arithmetic(op, l, r) => {
            let a = match op {
                ast::ArithOp::Add => ArithOp::Add,
                ast::ArithOp::Sub => ArithOp::Sub,
                ast::ArithOp::Mul => ArithOp::Mul,
                ast::ArithOp::Div => ArithOp::Div,
                ast::ArithOp::Mod => ArithOp::Mod,
            };
            let left = build_value_expr(plan, l)?;
            let right = build_value_expr(plan, r)?;
            Ok(plan.push(Operator::Arith { op: a, left, right }))
        }
        Expr::Neg(inner) => {
            let child = build_value_expr(plan, inner)?;
            Ok(plan.push(Operator::Neg { child }))
        }
        Expr::FunctionCall(name, args) => {
            let arg_ids = args
                .iter()
                .map(|a| build_value_expr(plan, a))
                .collect::<Result<Vec<_>>>()?;
            Ok(plan.push(Operator::Function {
                name: name.clone(),
                args: arg_ids,
            }))
        }
        Expr::Var(v) => Err(EngineError::Unsupported(format!("unbound variable ${v}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vamana_flex::Axis;
    use vamana_xpath::parse;

    fn plan_for(q: &str) -> QueryPlan {
        build_plan(&parse(q).unwrap()).unwrap()
    }

    #[test]
    fn q1_default_plan_shape() {
        // Paper §III Q1.
        let plan = plan_for("descendant::name/parent::*/self::person/address");
        let path = plan.context_path();
        assert_eq!(path.len(), 4);
        // context_path is top-down: child::address first.
        match plan.op(path[0]) {
            Operator::Step {
                axis: Axis::Child,
                test: TestSpec::Named(n),
                ..
            } => {
                assert_eq!(&**n, "address")
            }
            other => panic!("wrong top: {other:?}"),
        }
        assert!(matches!(
            plan.op(path[3]),
            Operator::Step {
                axis: Axis::Descendant,
                ..
            }
        ));
    }

    #[test]
    fn q2_default_plan_has_binary_predicate() {
        let plan = plan_for("//name[text() = 'Yung Flach']/following-sibling::emailaddress");
        let path = plan.context_path();
        // following-sibling, name, descendant-or-self
        assert_eq!(path.len(), 3);
        let name_step = path[1];
        match plan.op(name_step) {
            Operator::Step { predicates, .. } => {
                assert_eq!(predicates.len(), 1);
                match plan.op(predicates[0]) {
                    Operator::Binary {
                        op: BinOp::Eq,
                        left,
                        right,
                    } => {
                        assert!(matches!(
                            plan.op(*left),
                            Operator::Step {
                                test: TestSpec::Text,
                                ..
                            }
                        ));
                        assert!(matches!(plan.op(*right), Operator::Literal { .. }));
                    }
                    other => panic!("wrong predicate: {other:?}"),
                }
            }
            other => panic!("wrong step: {other:?}"),
        }
    }

    #[test]
    fn bare_predicate_path_becomes_exists() {
        let plan = plan_for("//watches[watch]");
        let path = plan.context_path();
        match plan.op(path[0]) {
            Operator::Step { predicates, .. } => {
                assert!(matches!(plan.op(predicates[0]), Operator::Exists { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicate_leaf_steps_use_outer_tuple_context() {
        let plan = plan_for("//person[name]");
        let path = plan.context_path();
        let Operator::Step { predicates, .. } = plan.op(path[0]) else {
            panic!()
        };
        let Operator::Exists { path: p } = plan.op(predicates[0]) else {
            panic!()
        };
        let Operator::Step {
            source, context, ..
        } = plan.op(*p)
        else {
            panic!()
        };
        assert_eq!(*context, None);
        assert_eq!(*source, ContextSource::OuterTuple);
    }

    #[test]
    fn absolute_path_in_predicate_anchors_at_root() {
        let plan = plan_for("//person[/site/open]");
        let path = plan.context_path();
        let Operator::Step { predicates, .. } = plan.op(path[0]) else {
            panic!()
        };
        let Operator::Exists { path: p } = plan.op(predicates[0]) else {
            panic!()
        };
        // Walk to the leaf of the predicate path.
        let mut leaf = *p;
        while let Operator::Step {
            context: Some(c), ..
        } = plan.op(leaf)
        {
            leaf = *c;
        }
        let Operator::Step { source, .. } = plan.op(leaf) else {
            panic!()
        };
        assert_eq!(*source, ContextSource::QueryRoot);
    }

    #[test]
    fn union_builds_union_operator() {
        let plan = plan_for("//a | //b");
        let Operator::Root { child: Some(c) } = plan.op(plan.root()) else {
            panic!()
        };
        assert!(matches!(plan.op(*c), Operator::Union { .. }));
    }

    #[test]
    fn bare_root_is_self_step() {
        let plan = plan_for("/");
        let Operator::Root { child: Some(c) } = plan.op(plan.root()) else {
            panic!()
        };
        assert!(matches!(
            plan.op(*c),
            Operator::Step {
                axis: Axis::SelfAxis,
                test: TestSpec::AnyNode,
                ..
            }
        ));
    }

    #[test]
    fn position_predicate_is_number() {
        let plan = plan_for("//person[2]");
        let path = plan.context_path();
        let Operator::Step { predicates, .. } = plan.op(path[0]) else {
            panic!()
        };
        assert!(matches!(plan.op(predicates[0]), Operator::Number { value } if *value == 2.0));
    }

    #[test]
    fn function_calls_build() {
        let plan = plan_for("//person[count(watches/watch) > 1]");
        let path = plan.context_path();
        let Operator::Step { predicates, .. } = plan.op(path[0]) else {
            panic!()
        };
        let Operator::Binary {
            op: BinOp::Gt,
            left,
            ..
        } = plan.op(predicates[0])
        else {
            panic!()
        };
        assert!(matches!(plan.op(*left), Operator::Function { .. }));
    }

    #[test]
    fn variables_are_rejected() {
        let expr = parse("//a[$x]").unwrap();
        assert!(matches!(
            build_plan(&expr),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn filter_expression_with_trailing_path_builds() {
        let plan = plan_for("(//person)[1]/name");
        let path = plan.context_path();
        // name step on top of self-filter on top of person chain
        assert!(path.len() >= 2);
        assert!(
            matches!(plan.op(path[0]), Operator::Step { test: TestSpec::Named(n), .. } if &**n == "name")
        );
    }
}
