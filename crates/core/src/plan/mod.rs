//! The VAMANA physical algebra (paper §V).
//!
//! A query plan is an arena of operators. The paper's operator kinds map
//! onto [`Operator`] as follows:
//!
//! | paper | here |
//! |---|---|
//! | Root `R` | [`Operator::Root`] |
//! | Step `φ axis::nodetest` | [`Operator::Step`] |
//! | value-based step `φ value::'v'` (Fig 9) | [`Operator::ValueStep`] |
//! | Literal `L` | [`Operator::Literal`] / [`Operator::Number`] |
//! | Exist predicate `ξ` | [`Operator::Exists`] |
//! | Binary predicate `β cond` | [`Operator::Binary`] |
//! | Join `J cond` | [`Operator::Join`] |
//!
//! The *context path* is the chain of operators linked through
//! `context`/`child` edges — tuples flow up along it. *Predicate trees*
//! hang off steps via `predicates` and are re-evaluated per tuple with
//! dynamically set context (paper §V-B).

pub mod builder;
pub mod display;

use vamana_flex::Axis;

/// Identifier of an operator inside a [`QueryPlan`] arena. Matches the
/// paper's `id` subscript (`φ₂`, `β₃`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl OpId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A resolved node test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestSpec {
    /// Element name (attribute name on the attribute axis).
    Named(Box<str>),
    /// `*`
    Wildcard,
    /// `text()`
    Text,
    /// `node()`
    AnyNode,
    /// `comment()`
    Comment,
    /// `processing-instruction()`, optionally with a target.
    Pi(Option<Box<str>>),
}

impl std::fmt::Display for TestSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestSpec::Named(n) => write!(f, "{n}"),
            TestSpec::Wildcard => write!(f, "*"),
            TestSpec::Text => write!(f, "text()"),
            TestSpec::AnyNode => write!(f, "node()"),
            TestSpec::Comment => write!(f, "comment()"),
            TestSpec::Pi(None) => write!(f, "processing-instruction()"),
            TestSpec::Pi(Some(t)) => write!(f, "processing-instruction('{t}')"),
        }
    }
}

/// Where a leaf operator obtains its context (paper §V-B: dynamic setting
/// of context).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextSource {
    /// The query root, set by the execution engine before the plan runs
    /// (the document node for absolute paths).
    QueryRoot,
    /// The tuple currently being filtered — used by leaf operators on
    /// predicate paths.
    OuterTuple,
}

/// Binary predicate conditions (`β cond`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// Paper-style label (`EQ`, `AND`, ...).
    pub fn label(self) -> &'static str {
        match self {
            BinOp::Eq => "EQ",
            BinOp::Ne => "NE",
            BinOp::Lt => "LT",
            BinOp::Le => "LE",
            BinOp::Gt => "GT",
            BinOp::Ge => "GE",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Comparison operators usable against the numeric value index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeCmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl RangeCmp {
    /// The equivalent [`BinOp`].
    pub fn as_binop(self) -> BinOp {
        match self {
            RangeCmp::Lt => BinOp::Lt,
            RangeCmp::Le => BinOp::Le,
            RangeCmp::Gt => BinOp::Gt,
            RangeCmp::Ge => BinOp::Ge,
        }
    }

    /// From a comparison [`BinOp`], if it is one.
    pub fn from_binop(op: BinOp) -> Option<RangeCmp> {
        Some(match op {
            BinOp::Lt => RangeCmp::Lt,
            BinOp::Le => RangeCmp::Le,
            BinOp::Gt => RangeCmp::Gt,
            BinOp::Ge => RangeCmp::Ge,
            _ => return None,
        })
    }

    /// Mirror for flipped operands (`x < e` ⇔ `e > x`).
    pub fn flip(self) -> RangeCmp {
        match self {
            RangeCmp::Lt => RangeCmp::Gt,
            RangeCmp::Le => RangeCmp::Ge,
            RangeCmp::Gt => RangeCmp::Lt,
            RangeCmp::Ge => RangeCmp::Le,
        }
    }

    /// The mass-layer scan operator.
    pub fn to_mass(self) -> vamana_mass::RangeOp {
        match self {
            RangeCmp::Lt => vamana_mass::RangeOp::Lt,
            RangeCmp::Le => vamana_mass::RangeOp::Le,
            RangeCmp::Gt => vamana_mass::RangeOp::Gt,
            RangeCmp::Ge => vamana_mass::RangeOp::Ge,
        }
    }
}

/// Arithmetic in general expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

/// One operator of the physical algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// `R`: identifies the start of the plan; returns its context child's
    /// tuples (deduplicated under set semantics).
    Root {
        /// The top of the context path.
        child: Option<OpId>,
    },
    /// `φ axis::nodetest`: fetches index tuples satisfying the node test
    /// on `axis` from each context tuple.
    Step {
        /// The axis.
        axis: Axis,
        /// The node test.
        test: TestSpec,
        /// Context child, or a leaf source.
        context: Option<OpId>,
        /// Leaf context source (used when `context` is `None`).
        source: ContextSource,
        /// Predicate trees, applied in order.
        predicates: Vec<OpId>,
    },
    /// `φ value::'v'` — the value-index location step created by the Fig 9
    /// rewrite: yields text/attribute nodes whose value equals `value`
    /// inside the context subtree, straight from the value index.
    ValueStep {
        /// The literal value.
        value: Box<str>,
        /// Restrict to text nodes (`true`) or attribute nodes (`false`);
        /// `None` accepts both.
        text_only: Option<bool>,
        /// For attribute rewrites: the required attribute name.
        attr_name: Option<Box<str>>,
        /// Context child, or a leaf source.
        context: Option<OpId>,
        /// Leaf context source.
        source: ContextSource,
    },
    /// `φ range::(op bound)` — the numeric-range location step created
    /// by the range-index rewrite: yields text/attribute nodes whose
    /// numeric value satisfies `op bound`, straight from the numeric
    /// value index.
    RangeStep {
        /// Comparison operator.
        op: RangeCmp,
        /// Comparison bound.
        bound: f64,
        /// Restrict to text nodes (`true`) or attributes (`false`).
        text_only: bool,
        /// For attribute rewrites: the required attribute name.
        attr_name: Option<Box<str>>,
        /// Context child, or a leaf source.
        context: Option<OpId>,
        /// Leaf context source.
        source: ContextSource,
    },
    /// `L 'value'`: a string literal.
    Literal {
        /// The value.
        value: Box<str>,
    },
    /// A numeric literal (bare numbers act as position predicates).
    Number {
        /// The value.
        value: f64,
    },
    /// `ξ`: existential predicate over a path.
    Exists {
        /// Root of the predicate path.
        path: OpId,
    },
    /// `β cond`: binary predicate.
    Binary {
        /// The condition.
        op: BinOp,
        /// Left operand.
        left: OpId,
        /// Right operand.
        right: OpId,
    },
    /// XPath core-library function call.
    Function {
        /// Function name.
        name: Box<str>,
        /// Argument expressions.
        args: Vec<OpId>,
    },
    /// Arithmetic expression.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: OpId,
        /// Right operand.
        right: OpId,
    },
    /// Unary minus.
    Neg {
        /// Operand.
        child: OpId,
    },
    /// Filter-expression predicates (`(expr)[p]`): unlike step
    /// predicates, these apply positionally over the *whole* node-set
    /// produced by `input`, in document order.
    Filter {
        /// The node-set being filtered.
        input: OpId,
        /// Predicates, applied in order.
        predicates: Vec<OpId>,
    },
    /// Node-set union of two context paths (`a | b`).
    Union {
        /// Left path.
        left: OpId,
        /// Right path.
        right: OpId,
    },
    /// `J cond`: value join of two context paths (provided for algebra
    /// completeness / XQuery-style callers; the XPath compiler itself
    /// never emits it).
    Join {
        /// Join condition on string values.
        op: BinOp,
        /// Left context child.
        left: OpId,
        /// Right context child.
        right: OpId,
    },
    /// Scan of a materialized view: streams the cached (sorted,
    /// deduplicated) result set of a previously-answered query straight
    /// from memory. Created only by the view-rewrite pass in
    /// [`crate::views`] — the XPath compiler never emits it. The entries
    /// are shared with the [`crate::views::ViewCache`] entry, so a plan
    /// holding a `ViewScan` pins the snapshot it was planned against;
    /// staleness is impossible because rewrites only consult views whose
    /// generation matches the document's current generation.
    ViewScan {
        /// The source view's XPath text (for EXPLAIN / tracing).
        view: Box<str>,
        /// The materialized result set, in document order.
        entries: std::sync::Arc<Vec<vamana_mass::NodeEntry>>,
    },
    /// A whole step chain collapsed into one operator: evaluates a
    /// forward child/descendant location-step pipeline (with existential
    /// structural predicates) in a single page-pinned scan, matching the
    /// combined condition per record via FLEX flat-key containment
    /// instead of materializing per-step node sets. Created only by the
    /// fusion pass (`opt/fuse.rs`) — the XPath compiler never emits it.
    /// With no `context` the chain is anchored at the query root; with a
    /// context edge (e.g. the residual above a [`Operator::ViewScan`])
    /// the chain is evaluated below every context tuple.
    FusedScan {
        /// The collapsed spine, outermost step first; the last spine
        /// node produces the output tuples.
        spine: Vec<FusedNode>,
        /// Context child, or the query root when `None`.
        context: Option<OpId>,
    },
}

/// One collapsed location step inside an [`Operator::FusedScan`] — a
/// node of the fused path tree. Spine nodes chain through the
/// operator's `spine` vector; predicate branches hang off each node's
/// `predicates` and are matched existentially (a chain predicate
/// `[b/c]` is held as nested branches `b[c]`, which is existentially
/// equivalent).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedNode {
    /// `true` for a `descendant::` edge from the previous spine node
    /// (or the scan anchor), `false` for `child::`.
    pub descendant: bool,
    /// The node test.
    pub test: TestSpec,
    /// Existential predicate branches rooted at this node.
    pub predicates: Vec<FusedNode>,
}

impl FusedNode {
    /// Number of collapsed location steps in this node's subtree —
    /// itself plus every predicate node (observability counters).
    pub fn steps(&self) -> usize {
        1 + self.predicates.iter().map(FusedNode::steps).sum::<usize>()
    }

    fn render_pred(&self, out: &mut String) {
        if self.descendant {
            out.push_str(".//");
        }
        out.push_str(&self.test.to_string());
        for p in &self.predicates {
            out.push('[');
            p.render_pred(out);
            out.push(']');
        }
    }
}

/// Human-readable label for a fused spine, e.g. `a/b[c]//d` (the
/// leading slash of a child-edged first step is dropped).
pub fn fused_label(spine: &[FusedNode]) -> String {
    let mut out = String::new();
    for (i, node) in spine.iter().enumerate() {
        if node.descendant {
            out.push_str("//");
        } else if i > 0 {
            out.push('/');
        }
        out.push_str(&node.test.to_string());
        for p in &node.predicates {
            out.push('[');
            p.render_pred(&mut out);
            out.push(']');
        }
    }
    out
}

/// Total number of location steps collapsed into `spine` (spine nodes
/// plus every predicate node).
pub fn fused_steps(spine: &[FusedNode]) -> usize {
    spine.iter().map(FusedNode::steps).sum()
}

/// Fused chains among `plan`'s live operators and the location steps
/// they collapsed — the per-query observability counters.
pub fn fused_in_plan(plan: &QueryPlan) -> (u64, u64) {
    let mut chains = 0u64;
    let mut steps = 0u64;
    for id in plan.live_ops() {
        if let Operator::FusedScan { spine, .. } = plan.op(id) {
            chains += 1;
            steps += fused_steps(spine) as u64;
        }
    }
    (chains, steps)
}

/// The optimizer's parallel-scan decision, carried by the plan so cached
/// (pre-compiled) plans replay the same choice without re-consulting the
/// index. Both fields come from index statistics at plan time; the
/// executor re-derives the actual morsel boundaries from the *live*
/// index when the plan runs, so a stale estimate can only mis-size the
/// fan-out, never produce wrong results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelChoice {
    /// Fan-out the executor should use (always >= 2; a degree of 1 is
    /// expressed by omitting the choice).
    pub degree: u32,
    /// The index-derived `COUNT` estimate that cleared the threshold.
    pub estimated: u64,
}

/// A physical query plan: an operator arena plus the root id.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    ops: Vec<Operator>,
    root: OpId,
    parallel: Option<ParallelChoice>,
    /// Per-operator [`EstimateCard`]s stamped at optimization time,
    /// indexed by arena position. Empty until
    /// [`QueryPlan::set_estimates`] runs (e.g. on plans that never went
    /// through the optimizer).
    estimates: Vec<Option<crate::cost::EstimateCard>>,
}

impl QueryPlan {
    /// Creates a plan from parts (used by the builder and the optimizer).
    pub fn new(ops: Vec<Operator>, root: OpId) -> Self {
        QueryPlan {
            ops,
            root,
            parallel: None,
            estimates: Vec::new(),
        }
    }

    /// The estimate card stamped on `id`, if the plan was estimated and
    /// the operator is live (detached slots and post-stamp pushes read
    /// back as `None`).
    pub fn estimate(&self, id: OpId) -> Option<crate::cost::EstimateCard> {
        self.estimates.get(id.index()).copied().flatten()
    }

    /// True once [`QueryPlan::set_estimates`] has stamped the plan.
    pub fn has_estimates(&self) -> bool {
        !self.estimates.is_empty()
    }

    /// Stamps the per-operator estimates (see
    /// [`crate::cost::PlanCosts::cards`]). The optimizer calls this once
    /// the plan has reached its final shape; rewrites that clone and
    /// mutate the arena afterwards should re-stamp.
    pub fn set_estimates(&mut self, estimates: Vec<Option<crate::cost::EstimateCard>>) {
        self.estimates = estimates;
    }

    /// The optimizer's parallel-scan choice, if it decided to fan out.
    pub fn parallel(&self) -> Option<ParallelChoice> {
        self.parallel
    }

    /// Records (or clears) the parallel-scan choice.
    pub fn set_parallel(&mut self, choice: Option<ParallelChoice>) {
        self.parallel = choice;
    }

    /// The root operator id.
    pub fn root(&self) -> OpId {
        self.root
    }

    /// Sets a new root (optimizer use).
    pub fn set_root(&mut self, root: OpId) {
        self.root = root;
    }

    /// The operator at `id`.
    pub fn op(&self, id: OpId) -> &Operator {
        &self.ops[id.index()]
    }

    /// Mutable access for the optimizer.
    pub fn op_mut(&mut self, id: OpId) -> &mut Operator {
        &mut self.ops[id.index()]
    }

    /// Appends an operator, returning its id.
    pub fn push(&mut self, op: Operator) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(op);
        id
    }

    /// Number of operators in the arena (including detached ones left
    /// behind by rewrites).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Ids of operators reachable from the root (live operators).
    pub fn live_ops(&self) -> Vec<OpId> {
        let mut seen = vec![false; self.ops.len()];
        let mut stack = vec![self.root];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            out.push(id);
            for c in self.children_of(id) {
                stack.push(c);
            }
        }
        out
    }

    /// Direct children (context, predicate, operand edges) of `id`.
    pub fn children_of(&self, id: OpId) -> Vec<OpId> {
        match self.op(id) {
            Operator::Root { child } => child.iter().copied().collect(),
            Operator::Step {
                context,
                predicates,
                ..
            } => context
                .iter()
                .copied()
                .chain(predicates.iter().copied())
                .collect(),
            Operator::ValueStep { context, .. }
            | Operator::RangeStep { context, .. }
            | Operator::FusedScan { context, .. } => context.iter().copied().collect(),
            Operator::Literal { .. } | Operator::Number { .. } | Operator::ViewScan { .. } => {
                Vec::new()
            }
            Operator::Exists { path } => vec![*path],
            Operator::Binary { left, right, .. }
            | Operator::Arith { left, right, .. }
            | Operator::Union { left, right }
            | Operator::Join { left, right, .. } => vec![*left, *right],
            Operator::Function { args, .. } => args.clone(),
            Operator::Neg { child } => vec![*child],
            Operator::Filter { input, predicates } => std::iter::once(*input)
                .chain(predicates.iter().copied())
                .collect(),
        }
    }

    /// The context path of the plan: operator ids from the root's child
    /// down to the leaf, following context edges (paper §V-A).
    pub fn context_path(&self) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut cur = match self.op(self.root) {
            Operator::Root { child } => *child,
            _ => Some(self.root),
        };
        while let Some(id) = cur {
            out.push(id);
            cur = match self.op(id) {
                Operator::Step { context, .. }
                | Operator::ValueStep { context, .. }
                | Operator::RangeStep { context, .. }
                | Operator::FusedScan { context, .. } => *context,
                _ => None,
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> QueryPlan {
        // R1 <- step(descendant::name) with predicate exists(child::text)
        let mut plan = QueryPlan::new(Vec::new(), OpId(0));
        let root = plan.push(Operator::Root { child: None });
        let text_step = plan.push(Operator::Step {
            axis: Axis::Child,
            test: TestSpec::Text,
            context: None,
            source: ContextSource::OuterTuple,
            predicates: Vec::new(),
        });
        let exists = plan.push(Operator::Exists { path: text_step });
        let step = plan.push(Operator::Step {
            axis: Axis::Descendant,
            test: TestSpec::Named("name".into()),
            context: None,
            source: ContextSource::QueryRoot,
            predicates: vec![exists],
        });
        *plan.op_mut(root) = Operator::Root { child: Some(step) };
        plan.set_root(root);
        plan
    }

    #[test]
    fn context_path_follows_context_edges() {
        let plan = tiny_plan();
        let path = plan.context_path();
        assert_eq!(path.len(), 1);
        assert!(matches!(
            plan.op(path[0]),
            Operator::Step {
                axis: Axis::Descendant,
                ..
            }
        ));
    }

    #[test]
    fn live_ops_reaches_predicate_trees() {
        let plan = tiny_plan();
        let live = plan.live_ops();
        assert_eq!(live.len(), 4);
    }

    #[test]
    fn children_of_step_includes_predicates() {
        let plan = tiny_plan();
        let step = plan.context_path()[0];
        let kids = plan.children_of(step);
        assert_eq!(kids.len(), 1); // no context child, one predicate
    }

    #[test]
    fn test_spec_display() {
        assert_eq!(TestSpec::Named("person".into()).to_string(), "person");
        assert_eq!(TestSpec::Wildcard.to_string(), "*");
        assert_eq!(TestSpec::Text.to_string(), "text()");
    }

    #[test]
    fn binop_labels() {
        assert_eq!(BinOp::Eq.label(), "EQ");
        assert_eq!(BinOp::And.label(), "AND");
    }
}
