//! Pretty-printing of query plans in the paper's notation, optionally
//! annotated with cost figures (Figs 4, 6, 7).

use crate::cost::PlanCosts;
use crate::plan::{OpId, Operator, QueryPlan};
use std::fmt::Write as _;

/// Renders `plan` as an indented tree. Pass `costs` to annotate each
/// operator with `COUNT/TC/IN/OUT` as in Fig 6.
pub fn render(plan: &QueryPlan, costs: Option<&PlanCosts>) -> String {
    let mut out = String::new();
    render_node(plan, plan.root(), costs, 0, "", &mut out);
    out
}

pub(crate) fn op_symbol(plan: &QueryPlan, id: OpId) -> String {
    match plan.op(id) {
        Operator::Root { .. } => format!("R{}", id.0),
        Operator::Step { axis, test, .. } => format!("φ{} {}::{}", id.0, axis, test),
        Operator::ValueStep {
            value, attr_name, ..
        } => match attr_name {
            Some(a) => format!("φ{} value::'{}'(@{})", id.0, value, a),
            None => format!("φ{} value::'{}'", id.0, value),
        },
        Operator::Literal { value } => format!("L{} '{}'", id.0, value),
        Operator::Number { value } => format!("N{} {}", id.0, value),
        Operator::Exists { .. } => format!("ξ{}", id.0),
        Operator::Binary { op, .. } => format!("β{} {}", id.0, op.label()),
        Operator::Function { name, .. } => format!("f{} {}()", id.0, name),
        Operator::Arith { op, .. } => format!("α{} {:?}", id.0, op),
        Operator::Neg { .. } => format!("α{} NEG", id.0),
        Operator::Union { .. } => format!("∪{}", id.0),
        Operator::Filter { .. } => format!("σ{}", id.0),
        Operator::RangeStep {
            op,
            bound,
            attr_name,
            ..
        } => {
            let sym = match op {
                crate::plan::RangeCmp::Lt => "<",
                crate::plan::RangeCmp::Le => "<=",
                crate::plan::RangeCmp::Gt => ">",
                crate::plan::RangeCmp::Ge => ">=",
            };
            match attr_name {
                Some(a) => format!("φ{} range::({sym} {bound})(@{a})", id.0),
                None => format!("φ{} range::({sym} {bound})", id.0),
            }
        }
        Operator::Join { op, .. } => format!("J{} {}", id.0, op.label()),
        Operator::ViewScan { view, entries } => {
            format!("ViewScan{}(view={view} rows={})", id.0, entries.len())
        }
        Operator::FusedScan { spine, .. } => {
            format!("FusedScan{}[{}]", id.0, crate::plan::fused_label(spine))
        }
    }
}

fn annotate(costs: Option<&PlanCosts>, id: OpId) -> String {
    let Some(costs) = costs else {
        return String::new();
    };
    let Some(c) = costs.get(id) else {
        return String::new();
    };
    let mut s = String::from("  [");
    if let Some(count) = c.count {
        let _ = write!(s, "COUNT={count} ");
    }
    if let Some(tc) = c.tc {
        let _ = write!(s, "TC={tc} ");
    }
    let _ = write!(
        s,
        "IN={} OUT={} δ={:.3}]",
        c.input,
        c.output,
        c.selectivity()
    );
    s
}

fn render_node(
    plan: &QueryPlan,
    id: OpId,
    costs: Option<&PlanCosts>,
    depth: usize,
    edge: &str,
    out: &mut String,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    if !edge.is_empty() {
        out.push_str(edge);
        out.push(' ');
    }
    out.push_str(&op_symbol(plan, id));
    out.push_str(&annotate(costs, id));
    out.push('\n');
    match plan.op(id) {
        Operator::Step {
            context,
            predicates,
            ..
        } => {
            for p in predicates {
                render_node(plan, *p, costs, depth + 1, "⟨pred⟩", out);
            }
            if let Some(c) = context {
                render_node(plan, *c, costs, depth + 1, "└─", out);
            }
        }
        _ => {
            for c in plan.children_of(id) {
                render_node(plan, c, costs, depth + 1, "└─", out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::builder::build_plan;
    use vamana_xpath::parse;

    #[test]
    fn renders_paper_notation() {
        let plan = build_plan(
            &parse("//name[text()='Yung Flach']/following-sibling::emailaddress").unwrap(),
        )
        .unwrap();
        let s = render(&plan, None);
        assert!(s.contains("R0"), "{s}");
        assert!(s.contains("φ"), "{s}");
        assert!(s.contains("β"), "{s}");
        assert!(s.contains("L"), "{s}");
        assert!(s.contains("following-sibling::emailaddress"), "{s}");
        assert!(s.contains("⟨pred⟩"), "{s}");
    }

    #[test]
    fn renders_exists_predicates() {
        let plan = build_plan(&parse("//watches[watch]").unwrap()).unwrap();
        let s = render(&plan, None);
        assert!(s.contains("ξ"), "{s}");
    }
}
