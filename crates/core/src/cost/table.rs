//! Table I of the paper: the upper bound on a step operator's output
//! tuples, by axis class.
//!
//! * **Down axes** (`child`, `descendant`, `descendant-or-self`, and by
//!   extension `attribute`): each target node has a unique
//!   parent/ancestor chain, so across all context tuples it can be
//!   emitted at most once per distinct node → `OUT = COUNT`.
//! * **Up/lateral axes** (`parent`, `ancestor`, `ancestor-or-self`,
//!   `following`, `following-sibling`, `preceding`, `preceding-sibling`,
//!   `namespace`): the paper bounds these by the input cardinality →
//!   `OUT = IN` (duplicates are counted; e.g. `parent::person` from 4825
//!   `name` tuples is bounded by 4825 even though only 2550 persons
//!   exist — Fig 6).
//! * **`self`**: each input yields at most one output, and only nodes
//!   that satisfy the test qualify → `OUT = min(COUNT, IN)`. (The
//!   printed table's two rows reduce to the minimum.)

use vamana_flex::Axis;

/// Axis classes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisClass {
    /// Output bounded by the node-test count.
    Down,
    /// Output bounded by the input cardinality.
    Up,
    /// Output bounded by both.
    SelfClass,
}

/// Classifies an axis per Table I.
pub fn axis_class(axis: Axis) -> AxisClass {
    match axis {
        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::Attribute => {
            AxisClass::Down
        }
        Axis::SelfAxis => AxisClass::SelfClass,
        Axis::Parent
        | Axis::Ancestor
        | Axis::AncestorOrSelf
        | Axis::Following
        | Axis::FollowingSibling
        | Axis::Preceding
        | Axis::PrecedingSibling
        | Axis::Namespace => AxisClass::Up,
    }
}

/// `OUT(opᵢ)` for a non-leaf step operator (Table I).
///
/// `kind_test` marks node-kind tests (`text()`, `node()`, ...), for which
/// the paper bounds down-axis output by the input as well: Fig 7
/// annotates `child::text` with `OUT = IN = 4825` although the document
/// holds far more text nodes, while Fig 8 annotates `child::name` with
/// `OUT = COUNT = 4825 > IN`. We reconcile the two as
/// `min(COUNT, IN)`-with-kind-tests vs `COUNT`-with-name-tests.
pub fn table_out(axis: Axis, count: u64, input: u64, kind_test: bool) -> u64 {
    match axis_class(axis) {
        AxisClass::Down => {
            if kind_test {
                count.min(input)
            } else {
                count
            }
        }
        AxisClass::Up => input,
        AxisClass::SelfClass => count.min(input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_6_values() {
        // φ3 parent::person: COUNT=2550, IN=4825 → OUT=4825.
        assert_eq!(table_out(Axis::Parent, 2550, 4825, false), 4825);
        // φ2 child::address: COUNT=1256, IN=4825 → OUT=1256.
        assert_eq!(table_out(Axis::Child, 1256, 4825, false), 1256);
    }

    #[test]
    fn paper_figure_8_transformed_values() {
        // φ5 child::name after inversion: COUNT=4825, IN=2550 → OUT=4825.
        assert_eq!(table_out(Axis::Child, 4825, 2550, false), 4825);
    }

    #[test]
    fn self_axis_takes_minimum() {
        assert_eq!(table_out(Axis::SelfAxis, 2550, 4825, false), 2550);
        assert_eq!(table_out(Axis::SelfAxis, 4825, 2550, false), 2550);
    }

    #[test]
    fn every_axis_is_classified() {
        for axis in Axis::ALL {
            // Must not panic, and bounds must be sane.
            let out = table_out(axis, 10, 20, false);
            assert!(out <= 20);
        }
    }

    #[test]
    fn down_axes_ignore_input() {
        assert_eq!(table_out(Axis::Descendant, 7, 1_000_000, false), 7);
        assert_eq!(table_out(Axis::Attribute, 3, 500, false), 3);
    }

    #[test]
    fn up_axes_ignore_count() {
        assert_eq!(table_out(Axis::FollowingSibling, 1_000_000, 5, false), 5);
        assert_eq!(table_out(Axis::Ancestor, 1, 42, false), 42);
    }

    #[test]
    fn kind_tests_bound_down_axes_by_input_like_fig7() {
        // child::text() with 30k text nodes but 4825 contexts → 4825.
        assert_eq!(table_out(Axis::Child, 30_000, 4825, true), 4825);
        // ...and still by COUNT when COUNT is smaller.
        assert_eq!(table_out(Axis::Child, 10, 4825, true), 10);
    }
}
