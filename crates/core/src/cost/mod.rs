//! The VAMANA cost model (paper §VI-B).
//!
//! Statistics are read *live* from the MASS indexes at estimation time —
//! `COUNT(opᵢ)` is a node-test count inside the query scope, `TC(opᵢ)` a
//! value-index count — so estimates remain exact under updates, with no
//! histograms to maintain. The per-operator quantities are:
//!
//! * `COUNT(opᵢ)`: nodes satisfying the step's node test (case analysis
//!   below),
//! * `TC(opᵢ)`: occurrences of a literal's value,
//! * `IN(opᵢ)`: maximum tuples the operator receives (cases 1–3),
//! * `OUT(opᵢ)`: maximum tuples it emits (cases 1–6, Table I),
//! * selectivity `δ = OUT/IN`, scaled into `[0, 1]`; operators are ranked
//!   most-selective-first for the optimizer.

pub mod table;

use crate::error::Result;
use crate::plan::{ContextSource, OpId, Operator, QueryPlan, TestSpec};
use std::collections::HashMap;
use vamana_flex::{Axis, KeyRange};
use vamana_mass::MassStore;

/// Per-operator cost figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCost {
    /// `COUNT(opᵢ)` for step operators.
    pub count: Option<u64>,
    /// `TC(opᵢ)` for literal operators.
    pub tc: Option<u64>,
    /// `IN(opᵢ)`.
    pub input: u64,
    /// `OUT(opᵢ)`.
    pub output: u64,
}

impl OpCost {
    /// Selectivity ratio `δ = OUT/IN`, clamped to `[0, 1]`.
    /// Smaller is *more* selective (filters more tuples away).
    pub fn selectivity(&self) -> f64 {
        if self.input == 0 {
            1.0
        } else {
            (self.output as f64 / self.input as f64).clamp(0.0, 1.0)
        }
    }
}

/// The estimate snapshot one operator carries on an optimized plan —
/// the paper's Table I quantities frozen at optimization time so that
/// EXPLAIN ANALYZE can put `est=…` next to `act=…` even for plans that
/// were cached long before execution.
///
/// Unlike [`OpCost`] (the optimizer's working figures, owned by a
/// [`PlanCosts`] side table), an `EstimateCard` is stamped *onto* the
/// [`crate::plan::QueryPlan`] by [`crate::engine::Engine::optimize_plan`]
/// and travels with it through plan caches and streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateCard {
    /// `COUNT(opᵢ)` — index nodes satisfying the node test (steps only).
    pub count: Option<u64>,
    /// `TC(opᵢ)` — occurrences of a literal's value (value ops only).
    pub tc: Option<u64>,
    /// `IN(opᵢ)` — maximum tuples the operator receives.
    pub input: u64,
    /// `OUT(opᵢ)` — maximum tuples it emits.
    pub output: u64,
    /// Selectivity ratio `δ = OUT/IN`, clamped to `[0, 1]`.
    pub selectivity: f64,
    /// Estimated cost charged by the optimizer: `IN + OUT` (every tuple
    /// received or emitted is an index operation).
    pub cost: u64,
    /// Estimated clustered-index pages touched if this operator's
    /// output were fetched from data pages: `OUT / tuples-per-page`,
    /// where the blocking factor reflects the store's measured
    /// compression (v2 stores pack more tuples per page, so the same
    /// output prices fewer page reads). `0` when the store is empty.
    pub pages: f64,
}

impl OpCost {
    /// Freezes this cost into a stampable card, pricing page I/O with
    /// the store's current blocking factor.
    fn card(&self, tuples_per_page: f64) -> EstimateCard {
        let pages = if tuples_per_page > 0.0 {
            (self.output as f64 / tuples_per_page).ceil()
        } else {
            0.0
        };
        EstimateCard {
            count: self.count,
            tc: self.tc,
            input: self.input,
            output: self.output,
            selectivity: self.selectivity(),
            cost: self.input + self.output,
            pages,
        }
    }
}

/// Cost annotations for a whole plan.
#[derive(Debug, Clone)]
pub struct PlanCosts {
    per_op: HashMap<OpId, OpCost>,
    /// Live operators ordered most-selective-first (the optimizer's
    /// ordered list `L(P)`).
    pub ordered: Vec<(OpId, f64)>,
}

impl PlanCosts {
    /// Cost of one operator, if it was estimated.
    pub fn get(&self, id: OpId) -> Option<&OpCost> {
        self.per_op.get(&id)
    }

    /// Total intermediate-tuple volume: Σ (IN + OUT) over live operators
    /// — the scalar the optimizer minimizes. Counting inputs as well as
    /// outputs reflects that every tuple an operator *receives* costs an
    /// index operation (a seek or a point lookup), which is exactly what
    /// the paper's push-down transformations save: `//address[parent::
    /// person]` feeds 1256 tuples into a parent check instead of feeding
    /// 2550 persons into a child scan.
    pub fn total(&self) -> u64 {
        self.per_op.values().map(|c| c.input + c.output).sum()
    }

    /// The estimate table as stampable cards, indexed by arena position
    /// (`None` for operators the estimator never reached — detached
    /// arena slots left behind by rewrites). `len` is the plan's arena
    /// length; see [`crate::plan::QueryPlan::set_estimates`].
    /// `tuples_per_page` is the store's current blocking factor
    /// ([`MassStore::tuples_per_page`]), used to price page I/O.
    pub fn cards(&self, len: usize, tuples_per_page: f64) -> Vec<Option<EstimateCard>> {
        let mut cards = vec![None; len];
        for (id, cost) in &self.per_op {
            if let Some(slot) = cards.get_mut(id.index()) {
                *slot = Some(cost.card(tuples_per_page));
            }
        }
        cards
    }
}

/// Estimates the cost of every live operator of `plan` against `store`,
/// with counting scoped to `scope` (typically the queried document's
/// subtree — the paper's "entire database / one document / specific
/// point" knob).
pub fn estimate(plan: &QueryPlan, store: &MassStore, scope: &KeyRange) -> Result<PlanCosts> {
    let mut est = Estimator {
        plan,
        store,
        scope,
        costs: HashMap::new(),
    };
    let root = plan.root();
    let top = match plan.op(root) {
        Operator::Root { child } => *child,
        _ => Some(root),
    };
    if let Some(top) = top {
        let out = est.est_nodeset(top, None)?;
        est.costs.insert(
            root,
            OpCost {
                count: None,
                tc: None,
                input: out,
                output: out,
            },
        );
    }
    let mut ordered: Vec<(OpId, f64)> = plan
        .live_ops()
        .into_iter()
        .filter_map(|id| est.costs.get(&id).map(|c| (id, c.selectivity())))
        .collect();
    ordered.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    Ok(PlanCosts {
        per_op: est.costs,
        ordered,
    })
}

/// `COUNT(opᵢ)`: nodes in `scope` satisfying a node test on an axis.
pub fn count_nodetest(store: &MassStore, axis: Axis, test: &TestSpec, scope: &KeyRange) -> u64 {
    match test {
        TestSpec::Named(name) => {
            let Some(id) = store.name_id(name) else {
                return 0;
            };
            if axis.principal_is_attribute() {
                store.count_attributes_in(id, scope)
            } else {
                store.count_elements_in(id, scope)
            }
        }
        TestSpec::Wildcard | TestSpec::AnyNode => {
            // `node()` also admits text/comments/PIs; keep the element
            // count as the dominant (and Table-I-relevant) bound, adding
            // the leaf kinds for `node()`.
            let elems = store.count_all_elements_in(scope);
            if matches!(test, TestSpec::AnyNode) {
                elems
                    + store.count_text_in(scope)
                    + store.count_comments_in(scope)
                    + store.count_pis_in(scope)
            } else {
                elems
            }
        }
        TestSpec::Text => store.count_text_in(scope),
        TestSpec::Comment => store.count_comments_in(scope),
        TestSpec::Pi(_) => store.count_pis_in(scope),
    }
}

struct Estimator<'a> {
    plan: &'a QueryPlan,
    store: &'a MassStore,
    scope: &'a KeyRange,
    costs: HashMap<OpId, OpCost>,
}

impl<'a> Estimator<'a> {
    /// Estimates a node-set-producing operator. `pred_input` is the tuple
    /// count flowing into a predicate tree (case 3 of IN), `None` on the
    /// context path.
    fn est_nodeset(&mut self, id: OpId, pred_input: Option<u64>) -> Result<u64> {
        let out = match self.plan.op(id).clone() {
            Operator::Step {
                axis,
                test,
                context,
                source,
                predicates,
            } => {
                let count = count_nodetest(self.store, axis, &test, self.scope);
                let input = match context {
                    Some(c) => self.est_nodeset(c, pred_input)?,
                    None => match (source, pred_input) {
                        // Case 3: leaf on a predicate path receives the
                        // tuples of the operator being filtered.
                        (ContextSource::OuterTuple, Some(n)) => n,
                        // Case 1: leaf on the context path sees the index.
                        _ => count,
                    },
                };
                let is_leaf_on_context_path = context.is_none() && pred_input.is_none();
                let kind_test = matches!(
                    test,
                    TestSpec::Text | TestSpec::AnyNode | TestSpec::Comment | TestSpec::Pi(_)
                );
                let mut out = if is_leaf_on_context_path {
                    count // Case 1: OUT = COUNT
                } else {
                    table::table_out(axis, count, input, kind_test) // Cases 3/4
                };
                // Predicates tighten the bound (cases 5/6).
                for pred in &predicates {
                    out = self.est_predicate(*pred, out)?;
                }
                self.costs.insert(
                    id,
                    OpCost {
                        count: Some(count),
                        tc: None,
                        input,
                        output: out,
                    },
                );
                out
            }
            Operator::ValueStep { value, context, .. } => {
                let tc = self.store.text_count_in(&value, self.scope);
                let input = match context {
                    Some(c) => self.est_nodeset(c, pred_input)?,
                    None => pred_input.unwrap_or(1),
                };
                self.costs.insert(
                    id,
                    OpCost {
                        count: Some(tc),
                        tc: Some(tc),
                        input,
                        output: tc,
                    },
                );
                tc
            }
            Operator::Union { left, right } => {
                let l = self.est_nodeset(left, pred_input)?;
                let r = self.est_nodeset(right, pred_input)?;
                let out = l + r;
                self.costs.insert(
                    id,
                    OpCost {
                        count: None,
                        tc: None,
                        input: l + r,
                        output: out,
                    },
                );
                out
            }
            Operator::RangeStep {
                op, bound, context, ..
            } => {
                let rc = self.store.numeric_count_in(op.to_mass(), bound, self.scope);
                let input = match context {
                    Some(c) => self.est_nodeset(c, pred_input)?,
                    None => pred_input.unwrap_or(1),
                };
                self.costs.insert(
                    id,
                    OpCost {
                        count: Some(rc),
                        tc: Some(rc),
                        input,
                        output: rc,
                    },
                );
                rc
            }
            Operator::Filter { input, predicates } => {
                let mut out = self.est_nodeset(input, pred_input)?;
                let input_n = out;
                for pred in &predicates {
                    out = self.est_predicate(*pred, out)?;
                }
                self.costs.insert(
                    id,
                    OpCost {
                        count: None,
                        tc: None,
                        input: input_n,
                        output: out,
                    },
                );
                out
            }
            Operator::Join { left, right, .. } => {
                let l = self.est_nodeset(left, pred_input)?;
                let r = self.est_nodeset(right, pred_input)?;
                let out = l.saturating_mul(r);
                self.costs.insert(
                    id,
                    OpCost {
                        count: None,
                        tc: None,
                        input: l + r,
                        output: out,
                    },
                );
                out
            }
            Operator::FusedScan { spine, context } => {
                let ctx_in = match context {
                    Some(c) => self.est_nodeset(c, pred_input)?,
                    None => 0,
                };
                // IN is the scan volume: every record inside the
                // envelope of the head step's clustered keys passes
                // through the path automaton exactly once.
                let scan_scope = self.fused_scan_scope(&spine);
                let volume = scan_scope
                    .as_ref()
                    .map(|s| count_nodetest(self.store, Axis::Descendant, &TestSpec::AnyNode, s))
                    .unwrap_or(0);
                // OUT is bounded by the output step's node-test count
                // within the scanned envelope.
                let out = match (&scan_scope, spine.last()) {
                    (Some(s), Some(last)) => {
                        count_nodetest(self.store, Axis::Descendant, &last.test, s)
                    }
                    _ => 0,
                };
                let out = out.min(volume);
                self.costs.insert(
                    id,
                    OpCost {
                        count: Some(volume),
                        tc: None,
                        input: volume + ctx_in,
                        output: out,
                    },
                );
                out
            }
            Operator::ViewScan { entries, .. } => {
                // A view scan receives nothing and emits exactly the
                // materialized set — the count is known, not estimated.
                let n = entries.len() as u64;
                self.costs.insert(
                    id,
                    OpCost {
                        count: Some(n),
                        tc: None,
                        input: 0,
                        output: n,
                    },
                );
                n
            }
            other => {
                // Expression operators used as node-set producers
                // (shouldn't happen from the builder); treat opaque.
                let _ = other;
                let out = pred_input.unwrap_or(1);
                self.costs.insert(
                    id,
                    OpCost {
                        count: None,
                        tc: None,
                        input: out,
                        output: out,
                    },
                );
                out
            }
        };
        Ok(out)
    }

    /// The key range a fused chain will actually scan: when the head
    /// step carries a name test, the scan narrows to the envelope
    /// between the first matching clustered key and the end of the last
    /// one's subtree — exactly what the executor does. `None` means the
    /// chain is provably empty (unknown or absent head name).
    fn fused_scan_scope(&self, spine: &[crate::plan::FusedNode]) -> Option<KeyRange> {
        let head = spine.first()?;
        let TestSpec::Named(name) = &head.test else {
            return Some(self.scope.clone());
        };
        let id = self.store.name_id(name)?;
        let keys = self.store.name_index().elements(id).slice_in(self.scope);
        let (first, last) = (keys.first()?, keys.last()?);
        // Same envelope rule as the executor: the widest subtree belongs
        // to the first ancestor-or-self of the last match, since matches
        // can nest (see `crate::exec::fused`).
        let outer = keys
            .iter()
            .find(|k| last.starts_with(&k[..]))
            .unwrap_or(last);
        let envelope = KeyRange {
            lo: first.clone(),
            hi: vamana_flex::FlexKey::from_flat(outer.clone()).subtree_upper(),
        };
        Some(envelope.intersect(self.scope))
    }

    /// Estimates how many of `input` tuples survive predicate `id`,
    /// annotating the predicate tree along the way.
    fn est_predicate(&mut self, id: OpId, input: u64) -> Result<u64> {
        let out = match self.plan.op(id).clone() {
            Operator::Exists { path } => {
                self.est_nodeset(path, Some(input))?;
                // Case 6: no value information — bound stays at IN.
                input
            }
            Operator::Binary { op, left, right } => {
                use crate::plan::BinOp;
                match op {
                    BinOp::And => {
                        let l = self.est_predicate(left, input)?;
                        // The right side sees at most what survived the left.
                        let r = self.est_predicate(right, l)?;
                        l.min(r)
                    }
                    BinOp::Or => {
                        let l = self.est_predicate(left, input)?;
                        let r = self.est_predicate(right, input)?;
                        (l + r).min(input)
                    }
                    BinOp::Eq => {
                        // Case 5: value-based equivalence — OUT is bounded
                        // by the literal's text count.
                        let tc = self.literal_tc(left, right);
                        self.est_operand(left, input)?;
                        self.est_operand(right, input)?;
                        let out = match tc {
                            Some(tc) => input.min(tc),
                            None => input,
                        };
                        self.costs.insert(
                            id,
                            OpCost {
                                count: None,
                                tc,
                                input,
                                output: out,
                            },
                        );
                        return Ok(out);
                    }
                    _ => {
                        self.est_operand(left, input)?;
                        self.est_operand(right, input)?;
                        input // Case 6
                    }
                }
            }
            Operator::Number { .. } => {
                // Position predicate: at most one tuple per context group;
                // without group statistics the paper's bound is IN, but a
                // constant position can never *increase* cardinality.
                input.min(input)
            }
            _ => {
                // Functions, arithmetic, literals as predicates: case 6.
                for c in self.plan.children_of(id) {
                    self.est_operand(c, input)?;
                }
                input
            }
        };
        self.costs.entry(id).or_insert(OpCost {
            count: None,
            tc: None,
            input,
            output: out,
        });
        Ok(out)
    }

    /// Estimates an operand of a comparison/function (value expression).
    fn est_operand(&mut self, id: OpId, input: u64) -> Result<()> {
        match self.plan.op(id).clone() {
            Operator::Step { .. } | Operator::ValueStep { .. } | Operator::Union { .. } => {
                self.est_nodeset(id, Some(input))?;
            }
            Operator::Literal { value } => {
                // Case 2: OUT(literal) = TC(value).
                let tc = self.store.text_count_in(&value, self.scope);
                self.costs.insert(
                    id,
                    OpCost {
                        count: None,
                        tc: Some(tc),
                        input,
                        output: tc,
                    },
                );
            }
            Operator::Number { value: _ } => {
                self.costs.insert(
                    id,
                    OpCost {
                        count: None,
                        tc: None,
                        input,
                        output: input,
                    },
                );
            }
            other => {
                let _ = other;
                for c in self.plan.children_of(id) {
                    self.est_operand(c, input)?;
                }
                self.costs.entry(id).or_insert(OpCost {
                    count: None,
                    tc: None,
                    input,
                    output: input,
                });
            }
        }
        Ok(())
    }

    /// If one side is a literal, its in-scope text count.
    fn literal_tc(&self, left: OpId, right: OpId) -> Option<u64> {
        for side in [left, right] {
            if let Operator::Literal { value } = self.plan.op(side) {
                return Some(self.store.text_count_in(value, self.scope));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::builder::build_plan;
    use vamana_xpath::parse;

    /// A miniature analogue of the paper's XMark document: more `name`s
    /// than `person`s, fewer `address`es.
    fn store() -> MassStore {
        let mut xml = String::from("<site><people>");
        for i in 0..20 {
            xml.push_str(&format!("<person id='p{i}'><name>N{i}</name>"));
            // Give some persons a second name-bearing child and only half
            // an address.
            xml.push_str("<profile><name>alias</name></profile>");
            if i % 2 == 0 {
                xml.push_str("<address><city>X</city></address>");
            }
            xml.push_str("</person>");
        }
        xml.push_str("</people></site>");
        let mut s = MassStore::open_memory();
        s.load_xml("mini", &xml).unwrap();
        s
    }

    fn costs_for(store: &MassStore, q: &str) -> (QueryPlan, PlanCosts) {
        let plan = build_plan(&parse(q).unwrap()).unwrap();
        let scope = KeyRange::subtree(&store.documents()[0].doc_key);
        let costs = estimate(&plan, store, &scope).unwrap();
        (plan, costs)
    }

    #[test]
    fn leaf_step_in_equals_count() {
        let s = store();
        let (plan, costs) = costs_for(&s, "descendant::name");
        let leaf = plan.context_path()[0];
        let c = costs.get(leaf).unwrap();
        assert_eq!(c.count, Some(40)); // 20 names + 20 aliases
        assert_eq!(c.input, 40);
        assert_eq!(c.output, 40);
    }

    #[test]
    fn parent_step_bounded_by_input_like_fig6() {
        let s = store();
        let (plan, costs) = costs_for(&s, "descendant::name/parent::person");
        let path = plan.context_path();
        let parent_step = path[0];
        let c = costs.get(parent_step).unwrap();
        assert_eq!(c.count, Some(20)); // persons
        assert_eq!(c.input, 40); // names
        assert_eq!(c.output, 40); // Table I: up-axis → IN
    }

    #[test]
    fn child_step_bounded_by_count_like_fig6() {
        let s = store();
        let (plan, costs) = costs_for(&s, "descendant::name/parent::person/address");
        let addr = plan.context_path()[0];
        let c = costs.get(addr).unwrap();
        assert_eq!(c.count, Some(10));
        assert_eq!(c.input, 40);
        assert_eq!(c.output, 10); // min via Table I down-axis → COUNT
        assert!(c.selectivity() < 0.5);
    }

    #[test]
    fn value_predicate_uses_tc_like_fig7() {
        let s = store();
        let (plan, costs) = costs_for(&s, "//name[text() = 'N3']");
        let name_step = plan.context_path()[0];
        let c = costs.get(name_step).unwrap();
        assert_eq!(c.count, Some(40));
        assert_eq!(c.output, 1, "TC('N3') = 1 should cap the output");
    }

    #[test]
    fn missing_literal_gives_zero_output() {
        let s = store();
        let (plan, costs) = costs_for(&s, "//name[text() = 'Nobody']");
        let name_step = plan.context_path()[0];
        assert_eq!(costs.get(name_step).unwrap().output, 0);
    }

    #[test]
    fn exists_predicate_keeps_input_bound() {
        let s = store();
        let (plan, costs) = costs_for(&s, "//person[name]");
        let person = plan.context_path()[0];
        let c = costs.get(person).unwrap();
        assert_eq!(c.output, 20);
    }

    #[test]
    fn ordered_list_ranks_most_selective_first() {
        let s = store();
        let (plan, costs) = costs_for(&s, "descendant::name/parent::person/address");
        assert!(!costs.ordered.is_empty());
        // Most selective operator is the address child step (10/40).
        let addr = plan.context_path()[0];
        assert_eq!(costs.ordered[0].0, addr);
        // Selectivities ascend.
        for w in costs.ordered.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn total_sums_outputs() {
        let s = store();
        let (_, costs) = costs_for(&s, "//person/address");
        assert!(costs.total() > 0);
    }

    #[test]
    fn count_nodetest_variants() {
        let s = store();
        let all = KeyRange::all();
        assert_eq!(
            count_nodetest(
                &s,
                Axis::Descendant,
                &TestSpec::Named("person".into()),
                &all
            ),
            20
        );
        assert_eq!(
            count_nodetest(&s, Axis::Attribute, &TestSpec::Named("id".into()), &all),
            20
        );
        assert_eq!(
            count_nodetest(
                &s,
                Axis::Descendant,
                &TestSpec::Named("nothing".into()),
                &all
            ),
            0
        );
        assert!(count_nodetest(&s, Axis::Descendant, &TestSpec::Wildcard, &all) > 60);
        assert!(
            count_nodetest(&s, Axis::Descendant, &TestSpec::AnyNode, &all)
                > count_nodetest(&s, Axis::Descendant, &TestSpec::Wildcard, &all)
        );
        assert_eq!(
            count_nodetest(&s, Axis::Descendant, &TestSpec::Text, &all),
            50
        );
    }

    #[test]
    fn estimates_stay_fresh_under_updates() {
        let mut s = store();
        let q = "//person/address";
        let (plan, costs) = costs_for(&s, q);
        let addr = plan.context_path()[0];
        let before = costs.get(addr).unwrap().count.unwrap();
        // Add ten more addresses.
        let person = s.name_id("person").unwrap();
        let keys: Vec<_> = s
            .name_index()
            .elements(person)
            .iter()
            .take(10)
            .map(|k| k.to_vec())
            .collect();
        for flat in keys {
            let key = vamana_flex::FlexKey::from_flat(flat);
            s.append_element(&key, "address").unwrap();
        }
        let (plan2, costs2) = costs_for(&s, q);
        let addr2 = plan2.context_path()[0];
        assert_eq!(costs2.get(addr2).unwrap().count.unwrap(), before + 10);
    }
}
