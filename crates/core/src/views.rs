//! Semantic result caching: materialized views + containment rewriting.
//!
//! The plan cache answers "have I *compiled* this query before"; this
//! module answers "have I *answered* this query (or a superset of it)
//! before". A [`ViewCache`] stores the materialized results of hot
//! queries as index-native FLEX key sets — ordered, deduplicated, and
//! directly scannable by the executor's [`Operator::ViewScan`] — and the
//! view-rewrite pass in [`crate::engine::Engine::optimize_plan`] answers
//! new queries from them when *containment* holds and the Table I cost
//! model says it pays.
//!
//! # The decidable fragment
//!
//! Containment of XPath is undecidable in general; for the tree-pattern
//! fragment below it is decidable via homomorphism (Miklau & Suciu, and
//! the tractability map of "Rewriting XPath Queries using View
//! Intersections"):
//!
//! * spine and predicate axes: `child` and `descendant` only,
//! * node tests: names, `*`, `text()`, `node()`,
//! * predicates: conjunctions of existential relative paths.
//!
//! Anything else — `position()`/`last()`/bare numbers, value
//! comparisons, functions, reverse or sideways axes, `|`, filters — is
//! *rejected* by [`extract`] rather than guessed at: a query outside the
//! fragment is never rewritten and never materialized.
//!
//! # Soundness
//!
//! [`contains`]`(v, q)` searches for a homomorphism from view pattern
//! `v` into query pattern `q` (root to root, output to output, label
//! subsumption, child edges onto child edges, descendant edges onto any
//! downward path). Any document embedding of `q` composes with the
//! homomorphism to an embedding of `v`, so every `q` result is a `v`
//! result: the view's materialized set is a *superset* of the query
//! prefix it covers. The rewrite then compensates:
//!
//! * **equivalent** patterns (`contains` both ways): the view *is* the
//!   prefix result — scan it directly, no compensation;
//! * **strict** containment on a `//`-rooted prefix: a `self` step over
//!   the view re-applies the prefix's output test and predicates plus a
//!   synthesized `parent`/`ancestor` `Exists` chain encoding the spine,
//!   which together characterize prefix membership exactly (every
//!   condition of a `//`-rooted pattern is relative to the output node);
//! * strict containment on a `/`-rooted prefix is *not* compensatable
//!   this way (the depth anchor is lost), so it is rejected.
//!
//! The homomorphism test is sound but incomplete (it can miss
//! containments involving `*`/`//` interaction); incompleteness only
//! costs cache hits, never correctness.
//!
//! # Invalidation
//!
//! Views are stamped with the document generation they were materialized
//! at (PR 5's counters). Lookups drop entries whose generation no longer
//! matches — primary writes bump the counter via
//! [`crate::engine::Engine::apply_update`] (which also evicts eagerly),
//! and replica WAL replay bumps it store-side, so followers expire views
//! lazily with no extra machinery. Snapshot installs
//! ([`crate::engine::Engine::replace_store`]) clear the cache outright.

use crate::plan::{BinOp, ContextSource, OpId, Operator, QueryPlan, TestSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vamana_flex::Axis;
use vamana_mass::NodeEntry;

/// A node test inside a tree pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatTest {
    /// The document root (pattern node 0 only).
    Root,
    /// An element name.
    Named(Box<str>),
    /// `*` — any element.
    Wildcard,
    /// `text()`.
    Text,
    /// `node()` — any node.
    Any,
}

/// The edge connecting a pattern node to its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatEdge {
    /// `child`.
    Child,
    /// `descendant`.
    Descendant,
}

/// One node of a tree pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternNode {
    /// Edge from the parent (meaningless on the root node).
    pub edge: PatEdge,
    /// The node test.
    pub test: PatTest,
    /// Children: the next spine node and/or predicate branches.
    pub children: Vec<usize>,
}

/// A tree pattern in the decidable containment fragment: a rooted tree
/// of child/descendant edges with one distinguished output node at the
/// end of the *spine* (the result path); all other branches are
/// existential predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Arena; `nodes[0]` is the document root.
    pub nodes: Vec<PatternNode>,
    /// The output node (equals `*spine.last()`).
    pub output: usize,
    /// Spine node indices, root side first.
    pub spine: Vec<usize>,
}

impl Pattern {
    /// The pattern covering only the first `j` spine steps (with their
    /// predicate branches); `j` must be in `1..=spine.len()`.
    pub fn prefix(&self, j: usize) -> Pattern {
        let mut nodes = self.nodes.clone();
        if j < self.spine.len() {
            let cut = self.spine[j];
            nodes[self.spine[j - 1]].children.retain(|&c| c != cut);
        }
        Pattern {
            nodes,
            output: self.spine[j - 1],
            spine: self.spine[..j].to_vec(),
        }
    }

    /// True when the spine starts with a descendant edge (`//`-rooted) —
    /// the only shape whose strict-containment compensation is complete.
    pub fn descendant_rooted(&self) -> bool {
        matches!(self.nodes[self.spine[0]].edge, PatEdge::Descendant)
    }

    /// Canonical serialization — the cache key. Structurally equal
    /// patterns (predicate order, axis spelling) serialize identically:
    /// branches are sorted, and `b/c` vs `b[c]` branch nesting both
    /// render as nested brackets (they are the same existential).
    pub fn key(&self) -> String {
        let mut out = String::new();
        for (i, &n) in self.spine.iter().enumerate() {
            let next = self.spine.get(i + 1).copied();
            self.push_node(n, &mut out);
            let mut branches: Vec<String> = self.nodes[n]
                .children
                .iter()
                .filter(|&&c| Some(c) != next)
                .map(|&c| self.branch_key(c))
                .collect();
            branches.sort();
            for b in branches {
                out.push('[');
                out.push_str(&b);
                out.push(']');
            }
        }
        out
    }

    fn push_node(&self, n: usize, out: &mut String) {
        out.push_str(match self.nodes[n].edge {
            PatEdge::Child => "/",
            PatEdge::Descendant => "//",
        });
        match &self.nodes[n].test {
            PatTest::Root => out.push('^'),
            PatTest::Named(name) => out.push_str(name),
            PatTest::Wildcard => out.push('*'),
            PatTest::Text => out.push_str("text()"),
            PatTest::Any => out.push_str("node()"),
        }
    }

    fn branch_key(&self, n: usize) -> String {
        let mut out = String::new();
        self.push_node(n, &mut out);
        let mut branches: Vec<String> = self.nodes[n]
            .children
            .iter()
            .map(|&c| self.branch_key(c))
            .collect();
        branches.sort();
        for b in branches {
            out.push('[');
            out.push_str(&b);
            out.push(']');
        }
        out
    }
}

fn pat_edge(axis: Axis) -> Option<PatEdge> {
    match axis {
        Axis::Child => Some(PatEdge::Child),
        Axis::Descendant => Some(PatEdge::Descendant),
        _ => None,
    }
}

fn pat_test(test: &TestSpec) -> Option<PatTest> {
    match test {
        TestSpec::Named(n) => Some(PatTest::Named(n.clone())),
        TestSpec::Wildcard => Some(PatTest::Wildcard),
        TestSpec::Text => Some(PatTest::Text),
        TestSpec::AnyNode => Some(PatTest::Any),
        TestSpec::Comment | TestSpec::Pi(_) => None,
    }
}

fn push_node(nodes: &mut Vec<PatternNode>, parent: usize, edge: PatEdge, test: PatTest) -> usize {
    let id = nodes.len();
    nodes.push(PatternNode {
        edge,
        test,
        children: Vec::new(),
    });
    nodes[parent].children.push(id);
    id
}

/// Extracts the tree pattern of a *cleaned* compiled plan, or `None`
/// when any part of the query falls outside the decidable fragment.
/// Must run on the plan before optimizer rules (push-downs introduce
/// reverse-axis predicates that are executable but not comparable).
pub fn extract(plan: &QueryPlan) -> Option<Pattern> {
    let Operator::Root { child: Some(_) } = plan.op(plan.root()) else {
        return None;
    };
    let path = plan.context_path();
    if path.is_empty() {
        return None;
    }
    let mut nodes = vec![PatternNode {
        edge: PatEdge::Child,
        test: PatTest::Root,
        children: Vec::new(),
    }];
    let mut spine = Vec::new();
    let mut parent = 0usize;
    // `context_path` returns the output step first; walk root side first.
    for &id in path.iter().rev() {
        let Operator::Step {
            axis,
            test,
            context,
            source,
            predicates,
        } = plan.op(id)
        else {
            return None;
        };
        if context.is_none() && *source != ContextSource::QueryRoot {
            return None;
        }
        let node = push_node(&mut nodes, parent, pat_edge(*axis)?, pat_test(test)?);
        spine.push(node);
        for &p in predicates {
            add_predicate(plan, p, node, &mut nodes)?;
        }
        parent = node;
    }
    Some(Pattern {
        output: *spine.last()?,
        nodes,
        spine,
    })
}

fn add_predicate(plan: &QueryPlan, p: OpId, at: usize, nodes: &mut Vec<PatternNode>) -> Option<()> {
    match plan.op(p) {
        Operator::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            add_predicate(plan, *left, at, nodes)?;
            add_predicate(plan, *right, at, nodes)
        }
        Operator::Exists { path } => add_branch(plan, *path, at, nodes),
        Operator::Step { .. } => add_branch(plan, p, at, nodes),
        _ => None,
    }
}

fn add_branch(plan: &QueryPlan, head: OpId, at: usize, nodes: &mut Vec<PatternNode>) -> Option<()> {
    // `head` is the branch's output step; collect down to the leaf.
    let mut chain = Vec::new();
    let mut cur = Some(head);
    while let Some(id) = cur {
        let Operator::Step {
            axis,
            test,
            context,
            source,
            predicates,
        } = plan.op(id)
        else {
            return None;
        };
        if context.is_none() && *source != ContextSource::OuterTuple {
            return None;
        }
        chain.push((*axis, test, predicates));
        cur = *context;
    }
    let mut parent = at;
    for (axis, test, preds) in chain.into_iter().rev() {
        let node = push_node(nodes, parent, pat_edge(axis)?, pat_test(test)?);
        for &p in preds {
            add_predicate(plan, p, node, nodes)?;
        }
        parent = node;
    }
    Some(())
}

/// True when the view pattern `sup` *contains* the query pattern `sub`
/// (every `sub` result on every document is a `sup` result), decided by
/// homomorphism search. Sound; incomplete (a `false` may still be
/// contained — that only costs a cache hit).
pub fn contains(sup: &Pattern, sub: &Pattern) -> bool {
    embed(sup, sub, 0, 0)
}

fn embed(sup: &Pattern, sub: &Pattern, u: usize, x: usize) -> bool {
    sup.nodes[u].children.iter().all(|&v| {
        let cands: Vec<usize> = match sup.nodes[v].edge {
            PatEdge::Child => sub.nodes[x]
                .children
                .iter()
                .copied()
                .filter(|&y| sub.nodes[y].edge == PatEdge::Child)
                .collect(),
            PatEdge::Descendant => descendants(sub, x),
        };
        cands.into_iter().any(|y| {
            subsumes(&sup.nodes[v].test, &sub.nodes[y].test)
                && (v != sup.output || y == sub.output)
                && embed(sup, sub, v, y)
        })
    })
}

/// All proper descendants of `x` reachable through the pattern.
fn descendants(p: &Pattern, x: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stack: Vec<usize> = p.nodes[x].children.clone();
    while let Some(n) = stack.pop() {
        out.push(n);
        stack.extend(p.nodes[n].children.iter().copied());
    }
    out
}

/// Does a node matching `sub` necessarily match `sup`?
fn subsumes(sup: &PatTest, sub: &PatTest) -> bool {
    match (sup, sub) {
        (PatTest::Any, PatTest::Root) => false,
        (PatTest::Any, _) => true,
        (PatTest::Wildcard, PatTest::Wildcard | PatTest::Named(_)) => true,
        (PatTest::Named(a), PatTest::Named(b)) => a == b,
        (PatTest::Text, PatTest::Text) => true,
        _ => false,
    }
}

/// The view a plan reads from, if its live operators include a
/// [`Operator::ViewScan`].
pub fn plan_view(plan: &QueryPlan) -> Option<&str> {
    plan.live_ops()
        .into_iter()
        .find_map(|id| match plan.op(id) {
            Operator::ViewScan { view, .. } => Some(&**view),
            _ => None,
        })
}

/// Builds the rewritten plan: a clone of the cleaned `probe` plan whose
/// first `j` spine steps are replaced by a [`Operator::ViewScan`] over
/// `entries`, plus compensation when the containment is strict (see the
/// module docs for the soundness argument). Callers guarantee
/// `contains(view, prefix_j)` and, for `equivalent == false`, that the
/// prefix is `//`-rooted.
pub(crate) fn rewrite_with_view(
    probe: &QueryPlan,
    j: usize,
    equivalent: bool,
    view_xpath: &str,
    entries: &Arc<Vec<NodeEntry>>,
) -> QueryPlan {
    let mut plan = probe.clone();
    let path = plan.context_path();
    let m = path.len();
    let covered_top = path[m - j];
    if equivalent {
        *plan.op_mut(covered_top) = Operator::ViewScan {
            view: view_xpath.into(),
            entries: Arc::clone(entries),
        };
        return plan;
    }
    // Covered spine steps, root side first.
    let covered: Vec<(Axis, TestSpec, Vec<OpId>)> = (0..j)
        .map(|i| {
            let Operator::Step {
                axis,
                test,
                predicates,
                ..
            } = plan.op(path[m - 1 - i]).clone()
            else {
                unreachable!("extract admitted a non-step spine operator");
            };
            (axis, test, predicates)
        })
        .collect();
    // The ancestry chain: nested Exists checks from the output node back
    // down the spine. The original predicate subtrees are reattached by
    // id — within a predicate, `OuterTuple` is the node being filtered,
    // which is exactly the spine node they constrained before.
    let mut inner_exists: Option<OpId> = None;
    for k in 1..j {
        let rev_axis = match covered[k].0 {
            Axis::Child => Axis::Parent,
            _ => Axis::Ancestor,
        };
        let mut preds = covered[k - 1].2.clone();
        if let Some(e) = inner_exists {
            preds.push(e);
        }
        let step = plan.push(Operator::Step {
            axis: rev_axis,
            test: covered[k - 1].1.clone(),
            context: None,
            source: ContextSource::OuterTuple,
            predicates: preds,
        });
        inner_exists = Some(plan.push(Operator::Exists { path: step }));
    }
    let view_op = plan.push(Operator::ViewScan {
        view: view_xpath.into(),
        entries: Arc::clone(entries),
    });
    let mut preds = covered[j - 1].2.clone();
    if let Some(e) = inner_exists {
        preds.push(e);
    }
    *plan.op_mut(covered_top) = Operator::Step {
        axis: Axis::SelfAxis,
        test: covered[j - 1].1.clone(),
        context: Some(view_op),
        source: ContextSource::QueryRoot,
        predicates: preds,
    };
    plan
}

/// Convenience: the pattern of an XPath string (parse → compile →
/// clean-up → [`extract`]). `None` when the query is outside the
/// fragment (or fails to compile).
pub fn pattern_for(xpath: &str) -> Option<Pattern> {
    let expr = vamana_xpath::parse(xpath).ok()?;
    let mut plan = crate::plan::builder::build_plan(&expr).ok()?;
    crate::opt::cleanup::cleanup(&mut plan);
    extract(&plan)
}

/// Point-in-time view-cache counters (served through `STATS`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStatsSnapshot {
    /// Queries answered through a `ViewScan`.
    pub hits: u64,
    /// Queries executed without one (views enabled).
    pub misses: u64,
    /// Entries dropped: stale generations, budget evictions, clears.
    pub evictions: u64,
    /// Approximate bytes currently materialized.
    pub bytes: u64,
    /// Materialized views currently resident.
    pub views: u64,
}

/// One row of [`ViewCache::list`] (the `CACHE` verb / `.views` output).
#[derive(Debug, Clone)]
pub struct ViewInfo {
    /// Document the view belongs to.
    pub doc: u32,
    /// The materialized query.
    pub xpath: String,
    /// Result rows.
    pub rows: u64,
    /// Approximate bytes held.
    pub bytes: u64,
    /// Document generation the view is valid for.
    pub generation: u64,
    /// Times a rewrite read this view.
    pub hits: u64,
}

/// A valid view considered by the rewrite pass.
#[derive(Debug, Clone)]
pub(crate) struct ViewCandidate {
    pub key: String,
    pub xpath: String,
    pub pattern: Pattern,
    pub entries: Arc<Vec<NodeEntry>>,
}

struct ViewEntry {
    xpath: String,
    pattern: Pattern,
    generation: u64,
    entries: Arc<Vec<NodeEntry>>,
    bytes: u64,
    stamp: u64,
    hits: u64,
}

#[derive(Default)]
struct ViewInner {
    views: HashMap<(u32, String), ViewEntry>,
    /// Admission counters for fragment queries not yet materialized.
    pending: HashMap<(u32, String), u32>,
    clock: u64,
    bytes: u64,
}

/// Cap on distinct queries tracked for admission before the counters are
/// reset wholesale — bounds memory under adversarial unique-query floods.
const PENDING_LIMIT: usize = 4096;

/// Approximate bytes one materialized entry holds. `NodeEntry` owns a
/// heap-allocated FLEX key; 16 bytes is a deliberate round figure for
/// its payload — the budget bounds order of magnitude, not allocator
/// truth.
const ENTRY_OVERHEAD: u64 = (std::mem::size_of::<NodeEntry>() + 16) as u64;

/// The materialized-view cache: admission by observed frequency,
/// eviction by byte-budgeted LRU, invalidation by document generation.
/// Interior-mutable so the engine can consult it under shared access on
/// the query path.
pub struct ViewCache {
    inner: Mutex<ViewInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ViewCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ViewCache {
    /// An empty cache.
    pub fn new() -> Self {
        ViewCache {
            inner: Mutex::new(ViewInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ViewInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Valid views for `doc` at `generation`. Stale entries found along
    /// the way are dropped and counted as evictions — this is the lazy
    /// invalidation path replica replay rides (replay bumps the store's
    /// generation without going through `apply_update`).
    pub(crate) fn candidates(&self, doc: u32, generation: u64) -> Vec<ViewCandidate> {
        let mut inner = self.lock();
        let stale: Vec<(u32, String)> = inner
            .views
            .iter()
            .filter(|((d, _), e)| *d == doc && e.generation != generation)
            .map(|(k, _)| k.clone())
            .collect();
        for k in stale {
            if let Some(e) = inner.views.remove(&k) {
                inner.bytes = inner.bytes.saturating_sub(e.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner
            .views
            .iter()
            .filter(|((d, _), _)| *d == doc)
            .map(|((_, key), e)| ViewCandidate {
                key: key.clone(),
                xpath: e.xpath.clone(),
                pattern: e.pattern.clone(),
                entries: Arc::clone(&e.entries),
            })
            .collect()
    }

    /// Records one execution of a fragment query and decides admission:
    /// `true` once the query has been seen `admit_after` times (and is
    /// not already materialized at this generation).
    pub(crate) fn observe(&self, doc: u32, generation: u64, key: &str, admit_after: u32) -> bool {
        let mut inner = self.lock();
        if let Some(e) = inner.views.get(&(doc, key.to_string())) {
            if e.generation == generation {
                return false;
            }
        }
        if inner.pending.len() >= PENDING_LIMIT {
            inner.pending.clear();
        }
        let count = inner.pending.entry((doc, key.to_string())).or_insert(0);
        *count += 1;
        *count >= admit_after.max(1)
    }

    /// Materializes a view. Entries must be the query's set-semantics
    /// result (sorted, deduplicated). Evicts least-recently-used views
    /// until the cache fits `budget` bytes; a single view larger than
    /// the whole budget is not admitted. Returns whether the view is now
    /// resident.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn admit(
        &self,
        doc: u32,
        generation: u64,
        key: String,
        xpath: String,
        pattern: Pattern,
        entries: Arc<Vec<NodeEntry>>,
        budget: u64,
    ) -> bool {
        let bytes = entries.len() as u64 * ENTRY_OVERHEAD + xpath.len() as u64 + 64;
        if bytes > budget {
            return false;
        }
        let mut inner = self.lock();
        inner.pending.remove(&(doc, key.clone()));
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.views.insert(
            (doc, key.clone()),
            ViewEntry {
                xpath,
                pattern,
                generation,
                entries,
                bytes,
                stamp,
                hits: 0,
            },
        ) {
            inner.bytes = inner.bytes.saturating_sub(old.bytes);
        }
        inner.bytes += bytes;
        while inner.bytes > budget {
            let victim = inner
                .views
                .iter()
                .filter(|(k, _)| **k != (doc, key.clone()))
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(e) = inner.views.remove(&victim) {
                inner.bytes = inner.bytes.saturating_sub(e.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        true
    }

    /// Marks a view as just used by an accepted rewrite (LRU recency +
    /// per-view hit count).
    pub(crate) fn touch(&self, doc: u32, key: &str) {
        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(e) = inner.views.get_mut(&(doc, key.to_string())) {
            e.stamp = stamp;
            e.hits += 1;
        }
    }

    /// Counts a query answered through a `ViewScan`.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a query executed without one (views enabled).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every view of `doc` (the eager write path).
    pub fn invalidate_doc(&self, doc: u32) {
        let mut inner = self.lock();
        let keys: Vec<(u32, String)> = inner
            .views
            .keys()
            .filter(|(d, _)| *d == doc)
            .cloned()
            .collect();
        for k in keys {
            if let Some(e) = inner.views.remove(&k) {
                inner.bytes = inner.bytes.saturating_sub(e.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.pending.retain(|(d, _), _| *d != doc);
    }

    /// Drops everything (snapshot installs, `CACHE CLEAR`).
    pub fn clear(&self) {
        let mut inner = self.lock();
        let n = inner.views.len() as u64;
        inner.views.clear();
        inner.pending.clear();
        inner.bytes = 0;
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Current counters.
    pub fn stats(&self) -> ViewStatsSnapshot {
        let inner = self.lock();
        ViewStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: inner.bytes,
            views: inner.views.len() as u64,
        }
    }

    /// Resident views, most-recently-used first.
    pub fn list(&self) -> Vec<ViewInfo> {
        let inner = self.lock();
        let mut out: Vec<(u64, ViewInfo)> = inner
            .views
            .iter()
            .map(|((doc, _), e)| {
                (
                    e.stamp,
                    ViewInfo {
                        doc: *doc,
                        xpath: e.xpath.clone(),
                        rows: e.entries.len() as u64,
                        bytes: e.bytes,
                        generation: e.generation,
                        hits: e.hits,
                    },
                )
            })
            .collect();
        out.sort_by_key(|v| std::cmp::Reverse(v.0));
        out.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(x: &str) -> Pattern {
        pattern_for(x).unwrap_or_else(|| panic!("{x} should be inside the fragment"))
    }

    #[test]
    fn fragment_accepts_tree_patterns() {
        for q in [
            "//person",
            "/site/people/person",
            "//person/address",
            "//person[address]/name",
            "//person[watches/watch][address]",
            "//a//b/c[d//e]",
            "//person/text()",
            "//person/node()",
            "//*",
        ] {
            assert!(pattern_for(q).is_some(), "{q} should be accepted");
        }
    }

    #[test]
    fn fragment_rejects_undecidable_shapes() {
        for q in [
            "//a[1]",                   // positional
            "//a[last()]",              // positional function
            "//a[b='x']",               // value comparison
            "//a[b or c]",              // disjunction
            "//a/parent::b",            // reverse spine axis
            "//a[parent::b]",           // reverse predicate axis
            "//a/following-sibling::b", // sideways axis
            "//a | //b",                // union
            "//a[@id]",                 // attribute axis
            "//a[count(b)]",            // function
        ] {
            assert!(pattern_for(q).is_none(), "{q} should be rejected");
        }
    }

    #[test]
    fn containment_truth_table() {
        let cases = [
            ("//person//*", "//person/address", true),
            ("//person", "//person", true),
            ("//a//b", "//a/b", true),
            ("//a/b", "//a//b", false),
            ("//a", "//a/b", false), // outputs differ
            ("//a", "//a[b]", true),
            ("//a[b]", "//a", false),
            ("//*", "//person", true),
            ("//person", "//*", false),
            ("//a//c", "//a/b/c", true),
            ("//a/c", "//a/b/c", false),
            ("//node()", "//person/text()", true),
            ("//*", "//person/text()", false), // `*` is element-only
            ("//a[b][c]", "//a[b][c][d]", true),
            ("//a[b/d]", "//a[b[d]]", true),
            ("/a/b", "/a/b", true),
            ("/a/b", "//a/b", false), // `//` may match deeper
            ("//a/b", "/a/b", true),
        ];
        for (sup, sub, expect) in cases {
            assert_eq!(
                contains(&pat(sup), &pat(sub)),
                expect,
                "contains({sup}, {sub})"
            );
        }
    }

    #[test]
    fn canonical_keys_identify_equal_patterns() {
        assert_eq!(
            pat("//person/address").key(),
            pat("/descendant::person/child::address").key()
        );
        assert_eq!(pat("//a[b][c]").key(), pat("//a[c][b]").key());
        assert_eq!(pat("//a[b/d]").key(), pat("//a[b[d]]").key());
        assert_ne!(pat("//a/b").key(), pat("//a//b").key());
        assert_ne!(pat("/a").key(), pat("//a").key());
    }

    #[test]
    fn prefix_truncates_spine_and_keeps_branches() {
        let p = pat("//a[x]/b[y]/c");
        let p2 = p.prefix(2);
        assert_eq!(p2.spine.len(), 2);
        assert_eq!(p2.key(), pat("//a[x]/b[y]").key());
        assert!(p.descendant_rooted());
        assert!(!pat("/a/b").descendant_rooted());
    }

    fn entry(n: u8) -> NodeEntry {
        NodeEntry {
            key: vamana_flex::FlexKey::from_flat(vec![n, 0]),
            kind: vamana_mass::RecordKind::Element,
            name: None,
        }
    }

    #[test]
    fn admission_waits_for_frequency_then_materializes() {
        let cache = ViewCache::new();
        let budget = 1 << 20;
        assert!(!cache.observe(0, 1, "//a", 2));
        assert!(cache.observe(0, 1, "//a", 2));
        let p = pat("//a");
        assert!(cache.admit(
            0,
            1,
            "//a".into(),
            "//a".into(),
            p.clone(),
            Arc::new(vec![entry(1)]),
            budget
        ));
        // Materialized views stop being observed.
        assert!(!cache.observe(0, 1, "//a", 2));
        assert_eq!(cache.stats().views, 1);
        // A stale generation makes it observable (and evictable) again.
        assert!(cache.candidates(0, 2).is_empty());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().views, 0);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let cache = ViewCache::new();
        let one = ENTRY_OVERHEAD + 3 + 64;
        let budget = one * 2;
        let p = pat("//a");
        for key in ["//a", "//b", "//c"] {
            assert!(cache.admit(
                0,
                1,
                key.into(),
                key.into(),
                p.clone(),
                Arc::new(vec![entry(1)]),
                budget
            ));
        }
        let s = cache.stats();
        assert_eq!(s.views, 2, "third admit must evict the oldest");
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= budget);
        let listed: Vec<String> = cache.list().into_iter().map(|v| v.xpath).collect();
        assert_eq!(listed, vec!["//c".to_string(), "//b".to_string()]);
        // An entry bigger than the whole budget is refused outright.
        assert!(!cache.admit(
            0,
            1,
            "//d".into(),
            "//d".into(),
            p.clone(),
            Arc::new(vec![entry(1); 100]),
            budget
        ));
    }

    #[test]
    fn invalidate_and_clear_account_evictions() {
        let cache = ViewCache::new();
        let p = pat("//a");
        for (doc, key) in [(0, "//a"), (0, "//b"), (1, "//a")] {
            cache.admit(
                doc,
                1,
                key.into(),
                key.into(),
                p.clone(),
                Arc::new(vec![entry(1)]),
                1 << 20,
            );
        }
        cache.invalidate_doc(0);
        assert_eq!(cache.stats().views, 1);
        assert_eq!(cache.stats().evictions, 2);
        cache.clear();
        assert_eq!(cache.stats().views, 0);
        assert_eq!(cache.stats().bytes, 0);
        assert_eq!(cache.stats().evictions, 3);
    }
}
