//! Differential correctness of morsel-parallel scans.
//!
//! The parallel pipeline must be observably identical to serial-batched
//! execution (which is itself identical to scalar): same nodes, same
//! order, for both morsel shapes (key-range splits of one descendant
//! scan and context-chunk splits of a multi-context step), with more
//! morsels than workers so work stealing is exercised.

use vamana_core::{DocId, Engine, EngineOptions, MassStore, NodeEntry};

/// Document big enough that every scan query clears the lowered
/// thresholds: ~3600 elements across repeated sections.
fn big_doc() -> String {
    let mut xml = String::from("<site>");
    for s in 0..12 {
        xml.push_str(&format!("<section id='s{s}'>"));
        for i in 0..100 {
            xml.push_str(&format!(
                "<item><name>n{s}_{i}</name><price>{}</price></item>",
                i % 17
            ));
        }
        xml.push_str("</section>");
    }
    xml.push_str("</site>");
    xml
}

fn engine(workers: usize) -> Engine {
    let mut store = MassStore::open_memory();
    store.load_xml("doc", &big_doc()).unwrap();
    Engine::with_options(
        store,
        EngineOptions {
            parallel_workers: workers,
            parallel_threshold: 64,
            parallel_min_morsel: 16,
            ..Default::default()
        },
    )
}

const QUERIES: &[&str] = &[
    "//*",                    // range morsels: whole-document descendant scan
    "/site//*",               // range morsels under an element subtree
    "//node()",               // AnyNode test through the same scan
    "//item/*",               // context chunks: thousands of item contexts
    "//section/item",         // named test: must stay serial, still correct
    "//item[price='3']/name", // predicates below the output step
];

fn run_modes(e: &mut Engine, xpath: &str) -> (Vec<NodeEntry>, Vec<NodeEntry>, Vec<NodeEntry>) {
    e.options_mut().parallel = true;
    e.options_mut().batched = true;
    let parallel = e.query(xpath).unwrap();
    e.options_mut().parallel = false;
    let batched = e.query(xpath).unwrap();
    e.options_mut().batched = false;
    let scalar = e.query(xpath).unwrap();
    e.options_mut().batched = true;
    e.options_mut().parallel = true;
    (parallel, batched, scalar)
}

#[test]
fn parallel_equals_batched_equals_scalar() {
    for workers in [2, 4] {
        let mut e = engine(workers);
        for xpath in QUERIES {
            let (parallel, batched, scalar) = run_modes(&mut e, xpath);
            assert!(!parallel.is_empty(), "{xpath} returned nothing");
            assert_eq!(
                parallel, batched,
                "{xpath} ({workers}w): parallel != batched"
            );
            assert_eq!(batched, scalar, "{xpath} ({workers}w): batched != scalar");
        }
    }
}

#[test]
fn parallel_streams_preserve_document_order() {
    // The ordered merge must re-emit strict document order tuple by
    // tuple, not just after set-semantics sorting.
    let e = engine(4);
    for xpath in ["//*", "/site//*", "//item/*"] {
        let mut stream = e.stream(DocId(0), xpath).unwrap();
        let mut out = Vec::new();
        while let Some(t) = stream.next().unwrap() {
            out.push(t);
        }
        assert!(
            out.windows(2).all(|w| w[0].key < w[1].key),
            "{xpath}: stream out of document order"
        );
        assert_eq!(out, e.query(xpath).unwrap(), "{xpath}");
    }
}

#[test]
fn two_worker_pool_steals_excess_morsels() {
    // Degree is capped at pool width, but each scan produces more
    // morsels than workers (MORSELS_PER_WORKER > 1), so some morsels
    // are necessarily stolen or helped. The counters prove the pool ran.
    let e = engine(2);
    let before = e.parallel_stats();
    assert_eq!(before.morsels, 0, "pool must start idle");
    let rows = e.query("//*").unwrap();
    assert!(rows.len() > 3000);
    let after = e.parallel_stats();
    assert!(
        after.morsels > 2,
        "expected more morsels than the 2 workers, got {}",
        after.morsels
    );
    assert!(after.worker_batches > 0, "workers produced no batches");
    assert_eq!(after.workers, 2);
}

#[test]
fn profile_reports_parallel_counters() {
    let e = engine(4);
    let (rows, profile) = e.query_doc_profiled(DocId(0), "//*").unwrap();
    assert_eq!(profile.rows, rows.len() as u64);
    assert!(profile.morsels > 0, "parallel query reported no morsels");
    assert!(profile.worker_batches > 0);
    // A serial query on the same engine reports zero parallel work.
    let (_, serial) = e.query_doc_profiled(DocId(0), "//section/item").unwrap();
    assert_eq!(serial.morsels, 0);
    assert_eq!(serial.worker_batches, 0);
}

#[test]
fn dropped_stream_cancels_and_releases_the_store() {
    // Abandoning a parallel stream mid-scan must reap every worker-held
    // store handle so `store_mut` (loads) works immediately afterwards.
    let mut e = engine(4);
    {
        let mut stream = e.stream(DocId(0), "//*").unwrap();
        for _ in 0..3 {
            assert!(stream.next().unwrap().is_some());
        }
        // Drop with thousands of tuples unconsumed.
    }
    let doc2 = e.load_xml("second", "<r><x>1</x></r>").unwrap();
    assert_eq!(e.query_doc(doc2, "//x").unwrap().len(), 1);
}

#[test]
fn disabling_parallel_keeps_the_plan_annotation() {
    // The optimizer records the choice even when execution is gated off,
    // so cached plans replay it once the option is re-enabled.
    let mut e = engine(4);
    e.options_mut().parallel = false;
    let plan = e.compile("//*").unwrap();
    let outcome = e.optimize_plan(plan, DocId(0)).unwrap();
    let choice = outcome.plan.parallel().expect("choice must be recorded");
    assert!(choice.degree >= 2);
    assert!(choice.estimated > 64);
    // Executing under the gate stays serial...
    let before = e.parallel_stats();
    let serial_rows = e.execute_plan(&outcome.plan, DocId(0)).unwrap();
    assert_eq!(e.parallel_stats().morsels, before.morsels);
    // ...and re-enabling fans the *same* plan out with equal results.
    e.options_mut().parallel = true;
    let parallel_rows = e.execute_plan(&outcome.plan, DocId(0)).unwrap();
    assert!(e.parallel_stats().morsels > before.morsels);
    assert_eq!(parallel_rows, serial_rows);
}
