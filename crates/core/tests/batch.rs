//! Batch-boundary edge cases for the batched execution pipeline.
//!
//! The batched pipeline must be observably identical to the scalar one:
//! same nodes, same pipeline order, no duplicates or gaps at batch
//! boundaries, regardless of where a batch ends relative to pages,
//! contexts, predicates, or a consumer-imposed row limit.

use vamana_core::exec::BATCH_SIZE;
use vamana_core::{DocId, Engine, MassStore, NodeEntry};

fn engine_from(xml: &str) -> Engine {
    let mut store = MassStore::open_memory();
    store.load_xml("doc", xml).unwrap();
    Engine::new(store)
}

/// Full scalar-mode drain of `xpath` in pipeline order.
fn scalar_drain(engine: &mut Engine, xpath: &str) -> Vec<NodeEntry> {
    engine.options_mut().batched = false;
    let mut out = Vec::new();
    let mut stream = engine.stream(DocId(0), xpath).unwrap();
    while let Some(t) = stream.next().unwrap() {
        out.push(t);
    }
    engine.options_mut().batched = true;
    out
}

#[test]
fn short_batch_then_exhausted() {
    // Fewer matches than `max`: one short batch, then a clean zero.
    let mut e = engine_from("<r><a/><a/><a/></r>");
    let expected = scalar_drain(&mut e, "//a");
    let mut stream = e.stream(DocId(0), "//a").unwrap();
    let mut out = Vec::new();
    assert_eq!(stream.next_batch(&mut out, BATCH_SIZE).unwrap(), 3);
    assert_eq!(out, expected);
    assert_eq!(stream.next_batch(&mut out, BATCH_SIZE).unwrap(), 0);
    assert_eq!(stream.next_batch(&mut out, BATCH_SIZE).unwrap(), 0);
    assert!(
        stream.next().unwrap().is_none(),
        "exhausted stays exhausted"
    );
}

#[test]
fn small_max_pulls_have_no_gaps_or_duplicates() {
    // A `max` far below the result size cuts every batch mid-stream; the
    // concatenation must still be the exact scalar sequence.
    let mut xml = String::from("<r>");
    for i in 0..1000 {
        xml.push_str(&format!("<e>{i}</e>"));
    }
    xml.push_str("</r>");
    let mut e = engine_from(&xml);
    let expected = scalar_drain(&mut e, "//e");
    assert_eq!(expected.len(), 1000);
    for max in [1, 7, 10, 256] {
        let mut stream = e.stream(DocId(0), "//e").unwrap();
        let mut out = Vec::new();
        loop {
            let n = stream.next_batch(&mut out, max).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= max, "over-filled batch: {n} > {max}");
        }
        assert_eq!(out, expected, "max {max}");
    }
}

#[test]
fn limit_cuts_a_batch_midway() {
    // A consumer that stops after `limit` rows (the server's LIMIT, the
    // shell's .limit) must see exactly the first `limit` tuples of the
    // full sequence, even when the limit lands inside a batch.
    let mut xml = String::from("<r>");
    for i in 0..600 {
        xml.push_str(&format!("<e>{i}</e>"));
    }
    xml.push_str("</r>");
    let mut e = engine_from(&xml);
    let expected = scalar_drain(&mut e, "//e");
    for limit in [1, 10, BATCH_SIZE - 1, BATCH_SIZE + 1, 599] {
        let mut stream = e.stream(DocId(0), "//e").unwrap();
        let mut out = Vec::new();
        while out.len() < limit {
            let want = limit - out.len();
            let n = stream.next_batch(&mut out, want).unwrap();
            if n == 0 {
                break;
            }
        }
        assert_eq!(out, expected[..limit], "limit {limit}");
        // The stream is still usable past the cut.
        assert_eq!(
            stream.next().unwrap().as_ref(),
            expected.get(limit),
            "tuple after the cut at {limit}"
        );
    }
}

#[test]
fn predicate_inner_path_crosses_batch_boundaries() {
    // Predicates re-anchor their inner context path at every tuple under
    // test (paper §V-B). With more tuples than one batch holds, inner
    // paths run for tuples on both sides of each boundary.
    let mut xml = String::from("<r>");
    for i in 0..(2 * BATCH_SIZE + 37) {
        if i % 3 == 0 {
            xml.push_str("<p><x/><v>keep</v></p>");
        } else {
            xml.push_str("<p><v>drop</v></p>");
        }
    }
    xml.push_str("</r>");
    let mut e = engine_from(&xml);
    for xpath in ["//p[x]", "//p[x]/v", "//p[not(x)]"] {
        let expected = scalar_drain(&mut e, xpath);
        assert!(!expected.is_empty(), "{xpath} must match something");
        let mut stream = e.stream(DocId(0), xpath).unwrap();
        let mut out = Vec::new();
        while stream.next_batch(&mut out, BATCH_SIZE).unwrap() > 0 {}
        assert_eq!(out, expected, "{xpath}");
        // And through the materializing API with set semantics.
        e.options_mut().batched = true;
        let batched = e.query(xpath).unwrap();
        e.options_mut().batched = false;
        let scalar = e.query(xpath).unwrap();
        e.options_mut().batched = true;
        assert_eq!(batched, scalar, "{xpath} under set semantics");
    }
}

#[test]
fn interleaved_scalar_and_batch_pulls_preserve_order() {
    // Mixing next() and next_batch() on one stream must not reorder,
    // duplicate, or drop tuples (next() buffers a batch internally).
    let mut xml = String::from("<r>");
    for i in 0..700 {
        xml.push_str(&format!("<e>{i}</e>"));
    }
    xml.push_str("</r>");
    let mut e = engine_from(&xml);
    let expected = scalar_drain(&mut e, "//e");
    let mut stream = e.stream(DocId(0), "//e").unwrap();
    let mut out = Vec::new();
    // 3 scalar pulls, then a batch, then scalar again, then drain.
    for _ in 0..3 {
        out.push(stream.next().unwrap().unwrap());
    }
    stream.next_batch(&mut out, 10).unwrap();
    out.push(stream.next().unwrap().unwrap());
    while stream.next_batch(&mut out, BATCH_SIZE).unwrap() > 0 {}
    assert_eq!(out, expected);
}

#[test]
fn batched_matches_scalar_on_unions_and_value_steps() {
    let mut xml = String::from("<r>");
    for i in 0..400 {
        xml.push_str(&format!("<a n='{i}'>{}</a><b>{i}</b>", i % 10));
    }
    xml.push_str("</r>");
    let mut e = engine_from(&xml);
    for xpath in ["//a | //b", "//a[.='5']", "//a[@n='37']", "//b[. > 395]"] {
        e.options_mut().batched = true;
        let batched = e.query(xpath).unwrap();
        e.options_mut().batched = false;
        let scalar = e.query(xpath).unwrap();
        e.options_mut().batched = true;
        assert_eq!(batched, scalar, "{xpath}");
        assert!(!batched.is_empty(), "{xpath} must match something");
    }
}
