//! Concurrency stress: many client threads firing parallel queries at
//! one [`SharedEngine`] while a writer interleaves document loads.
//!
//! Every query thread holds a read lock, so each query sees a stable
//! store; inside that guard, parallel and serial-batched execution of
//! the same query must agree exactly. The writer takes the write lock
//! between loads, exercising pool reuse across store generations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vamana_core::{DocId, Engine, EngineOptions, MassStore, SharedEngine};

fn shared_engine() -> Arc<SharedEngine> {
    let mut xml = String::from("<site>");
    for s in 0..8 {
        xml.push_str(&format!("<section id='s{s}'>"));
        for i in 0..120 {
            xml.push_str(&format!("<item><name>n{s}_{i}</name></item>"));
        }
        xml.push_str("</section>");
    }
    xml.push_str("</site>");
    let mut store = MassStore::open_memory();
    store.load_xml("doc", &xml).unwrap();
    let engine = Engine::with_options(
        store,
        EngineOptions {
            parallel_workers: 4,
            parallel_threshold: 64,
            parallel_min_morsel: 16,
            ..Default::default()
        },
    );
    Arc::new(SharedEngine::new(engine))
}

#[test]
fn eight_threads_of_parallel_queries_with_interleaved_loads() {
    let shared = shared_engine();
    let stop = Arc::new(AtomicBool::new(false));
    const QUERIES: &[&str] = &["//*", "/site//*", "//item/*", "//section/item"];

    std::thread::scope(|scope| {
        for t in 0..8 {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let xpath = QUERIES[(t + round) % QUERIES.len()];
                    // One read guard for the whole comparison: the store
                    // cannot change between the two runs.
                    let engine = shared.read();
                    let parallel = engine.query_doc(DocId(0), xpath).unwrap();
                    let mut serial = Vec::new();
                    let mut stream = engine.stream(DocId(0), xpath).unwrap();
                    while let Some(e) = stream.next().unwrap() {
                        serial.push(e);
                    }
                    serial.sort_by(|a, b| a.key.cmp(&b.key));
                    serial.dedup();
                    assert_eq!(parallel, serial, "thread {t}, round {round}: {xpath}");
                    assert!(!parallel.is_empty(), "{xpath} returned nothing");
                    drop(engine);
                    round += 1;
                }
                assert!(round > 0, "thread {t} never completed a round");
            });
        }
        // Writer: interleave loads, each bumping the store generation and
        // requiring exclusive store access (all worker Arcs reaped).
        let writer_shared = Arc::clone(&shared);
        let writer_stop = Arc::clone(&stop);
        scope.spawn(move || {
            for i in 0..10 {
                let g0 = writer_shared.generation();
                writer_shared
                    .load_xml(&format!("extra{i}"), "<r><x>1</x><x>2</x></r>")
                    .unwrap();
                assert!(writer_shared.generation() > g0);
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            writer_stop.store(true, Ordering::Relaxed);
        });
    });

    // The pool actually ran parallel work during the stress.
    let stats = shared.read().parallel_stats();
    assert!(stats.morsels > 0, "no parallel scans ran under stress");
    assert!(stats.worker_batches > 0);
    // And all interleaved documents arrived intact.
    assert_eq!(shared.read().store().documents().len(), 11);
}
