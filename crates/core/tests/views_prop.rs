//! Property tests for the semantic cache (see `vamana_core::views`).
//!
//! Two properties pin the correctness spine down:
//!
//! 1. **Containment soundness** — whenever the homomorphism checker
//!    says `contains(V, Q)`, evaluating both on an arbitrary generated
//!    document must give `result(Q) ⊆ result(V)`. Checked both for
//!    independently random pattern pairs and for pairs built by
//!    *generalizing* a query (drop predicates, widen tests, widen
//!    edges), where the checker must also succeed (the identity mapping
//!    is a homomorphism).
//!
//! 2. **Rewrite exactness** — with views enabled (greedy acceptance, no
//!    admission delay), materializing a view and then answering a
//!    contained query must return exactly what a view-less engine
//!    returns, in both batched and scalar execution modes.

use std::collections::HashSet;

use proptest::prelude::*;
use vamana_core::{contains, pattern_for, DocId, Engine, EngineOptions, MassStore};

const NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// One spine step: descendant edge?, node test, optional predicate path.
type StepSpec = (bool, String, Option<String>);

fn test_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("*".to_string()),
    ]
}

fn pred_strategy() -> impl Strategy<Value = Option<String>> {
    proptest::option::of(prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("b/c".to_string()),
        Just("c[a]".to_string()),
    ])
}

fn steps_strategy() -> impl Strategy<Value = Vec<StepSpec>> {
    proptest::collection::vec((any::<bool>(), test_strategy(), pred_strategy()), 1..4)
}

fn render(steps: &[StepSpec]) -> String {
    let mut s = String::new();
    for (descendant, test, pred) in steps {
        s.push_str(if *descendant { "//" } else { "/" });
        s.push_str(test);
        if let Some(p) = pred {
            s.push('[');
            s.push_str(p);
            s.push(']');
        }
    }
    s
}

/// Widens each step of `steps` according to its mask: drop the
/// predicate, replace the name test with `*`, and/or turn the edge into
/// a descendant edge. The result contains the original by construction
/// (the identity mapping on spine nodes is a homomorphism).
fn generalize(steps: &[StepSpec], masks: &[(bool, bool, bool)]) -> Vec<StepSpec> {
    steps
        .iter()
        .zip(
            masks
                .iter()
                .chain(std::iter::repeat(&(false, false, false))),
        )
        .map(
            |((descendant, test, pred), (drop_pred, widen_test, widen_edge))| {
                (
                    *descendant || *widen_edge,
                    if *widen_test {
                        "*".to_string()
                    } else {
                        test.clone()
                    },
                    if *drop_pred { None } else { pred.clone() },
                )
            },
        )
        .collect()
}

/// Builds a small XML document from a stack-machine tape: open a child,
/// close the current element, or emit a leaf — names drawn from the
/// same alphabet the patterns use so matches are likely.
fn build_doc(ops: &[(u8, u8)]) -> String {
    let mut xml = String::from("<a>");
    let mut stack = vec!["a"];
    for &(n, action) in ops {
        let name = NAMES[(n % 4) as usize];
        match action % 3 {
            0 if stack.len() < 5 => {
                xml.push('<');
                xml.push_str(name);
                xml.push('>');
                stack.push(name);
            }
            1 if stack.len() > 1 => {
                let t = stack.pop().unwrap();
                xml.push_str("</");
                xml.push_str(t);
                xml.push('>');
            }
            _ => {
                xml.push('<');
                xml.push_str(name);
                xml.push_str("/>");
            }
        }
    }
    while let Some(t) = stack.pop() {
        xml.push_str("</");
        xml.push_str(t);
        xml.push('>');
    }
    xml
}

fn engine_for(xml: &str, options: EngineOptions) -> Engine {
    let mut store = MassStore::open_memory();
    store.load_xml("d", xml).expect("load generated doc");
    let mut engine = Engine::new(store);
    *engine.options_mut() = options;
    engine
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Soundness on independently random pairs: a `contains` verdict on
    /// two unrelated patterns implies the subset relation on data.
    #[test]
    fn random_containment_verdicts_are_sound(
        v_steps in steps_strategy(),
        q_steps in steps_strategy(),
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40),
    ) {
        let v_xpath = render(&v_steps);
        let q_xpath = render(&q_steps);
        let (vp, qp) = match (pattern_for(&v_xpath), pattern_for(&q_xpath)) {
            (Some(v), Some(q)) => (v, q),
            _ => return Ok(()), // outside the fragment — nothing to check
        };
        prop_assume!(contains(&vp, &qp));
        let e = engine_for(&build_doc(&ops), EngineOptions::default());
        let vres = e.query_doc(DocId(0), &v_xpath).unwrap();
        let qres = e.query_doc(DocId(0), &q_xpath).unwrap();
        let vset: HashSet<_> = vres.iter().map(|n| n.key.clone()).collect();
        for n in &qres {
            prop_assert!(
                vset.contains(&n.key),
                "contains({v_xpath}, {q_xpath}) held but a {q_xpath} result is not in {v_xpath}"
            );
        }
    }

    /// Generalizing a query (drop predicates, widen tests/edges) always
    /// yields a containing view, the checker proves it, and the subset
    /// relation holds on data.
    #[test]
    fn generalized_views_contain_their_query(
        q_steps in steps_strategy(),
        masks in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>()), 3),
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40),
    ) {
        let v_steps = generalize(&q_steps, &masks);
        let v_xpath = render(&v_steps);
        let q_xpath = render(&q_steps);
        let (vp, qp) = match (pattern_for(&v_xpath), pattern_for(&q_xpath)) {
            (Some(v), Some(q)) => (v, q),
            _ => return Ok(()),
        };
        prop_assert!(
            contains(&vp, &qp),
            "checker missed the by-construction containment of {q_xpath} in {v_xpath}"
        );
        let e = engine_for(&build_doc(&ops), EngineOptions::default());
        let vres = e.query_doc(DocId(0), &v_xpath).unwrap();
        let qres = e.query_doc(DocId(0), &q_xpath).unwrap();
        let vset: HashSet<_> = vres.iter().map(|n| n.key.clone()).collect();
        for n in &qres {
            prop_assert!(
                vset.contains(&n.key),
                "{q_xpath} ⊆ {v_xpath} violated on generated document"
            );
        }
    }

    /// Materializing a view and answering a contained query through the
    /// rewrite gives exactly the view-less answer — batched and scalar.
    #[test]
    fn view_rewrites_match_direct_evaluation(
        q_steps in steps_strategy(),
        masks in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>()), 3),
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40),
        batched in any::<bool>(),
    ) {
        let v_xpath = render(&generalize(&q_steps, &masks));
        let q_xpath = render(&q_steps);
        if pattern_for(&v_xpath).is_none() || pattern_for(&q_xpath).is_none() {
            return Ok(());
        }
        let xml = build_doc(&ops);
        // Oracle: scalar pipeline, no views.
        let oracle = engine_for(&xml, EngineOptions {
            batched: false,
            ..EngineOptions::default()
        });
        // Subject: greedy view acceptance, immediate admission.
        let subject = engine_for(&xml, EngineOptions {
            batched,
            views: true,
            view_admit_after: 1,
            view_greedy: true,
            ..EngineOptions::default()
        });
        let doc = DocId(0);
        subject.query_doc(doc, &v_xpath).unwrap(); // materializes the view
        let expected = oracle.query_doc(doc, &q_xpath).unwrap();
        let got = subject.query_doc(doc, &q_xpath).unwrap();
        prop_assert_eq!(
            got,
            expected,
            "rewrite of {} against view {} changed the result (batched={})",
            q_xpath,
            v_xpath,
            batched
        );
    }
}

#[test]
fn generator_yield_sanity() {
    // The properties above skip cases outside the fragment; make sure a
    // healthy share of generated inputs actually participates, so the
    // suite cannot rot into vacuous passes.
    let mut in_fragment = 0;
    let mut contained = 0;
    for i in 0..200u64 {
        let steps: Vec<StepSpec> = (0..1 + (i % 3))
            .map(|j| {
                let k = i.wrapping_mul(31).wrapping_add(j * 7);
                (
                    k % 2 == 0,
                    NAMES[(k % 4) as usize].to_string(),
                    (k % 3 == 0).then(|| NAMES[(k % 4) as usize].to_string()),
                )
            })
            .collect();
        let q = render(&steps);
        let masks = vec![(i % 2 == 0, i % 3 == 0, i % 5 == 0); 3];
        let v = render(&generalize(&steps, &masks));
        if let (Some(vp), Some(qp)) = (pattern_for(&v), pattern_for(&q)) {
            in_fragment += 1;
            if contains(&vp, &qp) {
                contained += 1;
            }
        }
    }
    assert!(in_fragment >= 150, "only {in_fragment}/200 in fragment");
    assert!(contained >= 150, "only {contained}/200 proven contained");
}
