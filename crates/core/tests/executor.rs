//! Executor-level semantics tests: operator state machine behavior,
//! whole-set vs per-group positions, reverse-axis positions, value-step
//! kinds, and the programmatic Join operator that the XPath compiler
//! never emits.

use vamana_core::exec::{self, Env};
use vamana_core::plan::{BinOp, ContextSource, OpId, Operator, QueryPlan, TestSpec};
use vamana_core::{DocId, Engine, MassStore};
use vamana_flex::Axis;
use vamana_mass::{NodeEntry, RecordKind};

const DOC: &str = r#"<site>
  <people>
    <person id="p0"><name>Ann</name><age>31</age></person>
    <person id="p1"><name>Bob</name><age>17</age></person>
    <person id="p2"><name>Cyd</name><age>31</age></person>
  </people>
  <limits><limit>31</limit><limit>99</limit></limits>
</site>"#;

fn engine() -> Engine {
    let mut store = MassStore::open_memory();
    store.load_xml("doc", DOC).unwrap();
    Engine::new(store)
}

fn values(e: &Engine, q: &str) -> Vec<String> {
    let r = e.query(q).unwrap();
    e.string_values(&r).unwrap()
}

#[test]
fn per_step_positions_are_per_context_group() {
    let e = engine();
    // name[1] per person: every person's first name element.
    assert_eq!(values(&e, "//person/name[1]"), vec!["Ann", "Bob", "Cyd"]);
    // (//person/name)[1]: first across the whole set.
    assert_eq!(values(&e, "(//person/name)[1]"), vec!["Ann"]);
}

#[test]
fn reverse_axis_positions_count_backwards() {
    let e = engine();
    // ancestor::*[1] of a name is its person (nearest first).
    let r = e.query("//name/ancestor::*[1]").unwrap();
    let names = e.names_of(&r).unwrap();
    assert!(names.iter().all(|n| n == "person"), "{names:?}");
    // ancestor::*[2] is people.
    let r = e.query("//name/ancestor::*[2]").unwrap();
    let names = e.names_of(&r).unwrap();
    assert!(names.iter().all(|n| n == "people"), "{names:?}");
}

#[test]
fn predicates_chain_with_recomputed_positions() {
    let e = engine();
    // Persons with age 31 → [Ann, Cyd]; of those, the second.
    assert_eq!(values(&e, "//person[age=31][2]/name"), vec!["Cyd"]);
    // Order matters: //person[2][age=31] → person 2 is Bob (17) → empty.
    assert_eq!(values(&e, "//person[2][age=31]/name"), Vec::<String>::new());
}

#[test]
fn value_step_distinguishes_text_and_attribute_hits() {
    let e = engine();
    // '31' occurs as two age texts and one limit text; p1 as attr only.
    assert_eq!(e.query("//age[text()='31']").unwrap().len(), 2);
    assert_eq!(e.query("//person[@id='p1']").unwrap().len(), 1);
    // The literal 'p1' never matches text() anywhere.
    assert_eq!(e.query("//person[text()='p1']").unwrap().len(), 0);
}

#[test]
fn exists_fast_path_agrees_with_general_path() {
    let e = engine();
    // [name] takes the index-only fast path; [name or name] does not.
    let fast = e.query("//person[name]").unwrap();
    let slow = e.query("//person[name or name]").unwrap();
    assert_eq!(fast, slow);
    let fast = e.query("//name[parent::person]").unwrap();
    let slow = e.query("//name[parent::person or parent::person]").unwrap();
    assert_eq!(fast, slow);
}

#[test]
fn join_operator_semi_joins_on_values() {
    // Programmatic plan: J_EQ(//age, //limit) — ages whose value equals
    // some limit value (31).
    let e = engine();
    let mut plan = QueryPlan::new(Vec::new(), OpId(0));
    let root = plan.push(Operator::Root { child: None });
    let ages = plan.push(Operator::Step {
        axis: Axis::Descendant,
        test: TestSpec::Named("age".into()),
        context: None,
        source: ContextSource::QueryRoot,
        predicates: vec![],
    });
    let limits = plan.push(Operator::Step {
        axis: Axis::Descendant,
        test: TestSpec::Named("limit".into()),
        context: None,
        source: ContextSource::QueryRoot,
        predicates: vec![],
    });
    let join = plan.push(Operator::Join {
        op: BinOp::Eq,
        left: ages,
        right: limits,
    });
    *plan.op_mut(root) = Operator::Root { child: Some(join) };
    plan.set_root(root);

    let result = e.execute_plan(&plan, DocId(0)).unwrap();
    assert_eq!(result.len(), 2); // Ann's and Cyd's age elements
    assert!(e.string_values(&result).unwrap().iter().all(|v| v == "31"));
}

#[test]
fn pipeline_is_lazy_for_exists() {
    // An exists over a huge axis must not scan everything: verified
    // behaviorally via buffer stats — [name] on the first person should
    // touch far fewer pages than a full scan.
    let mut xml = String::from("<r>");
    for i in 0..20_000 {
        xml.push_str(&format!("<e><name>n{i}</name></e>"));
    }
    xml.push_str("</r>");
    let mut store = MassStore::open_memory();
    store.load_xml("big", &xml).unwrap();
    let e = Engine::new(store);

    e.store().buffer_pool().reset_stats();
    let r = e.query("(//e)[1][name]").unwrap();
    assert_eq!(r.len(), 1);
    let touched = {
        let s = e.store().stats().buffer;
        s.hits + s.misses
    };
    let total_pages = e.store().stats().pages as u64;
    assert!(
        touched < total_pages / 2,
        "exists should not scan the store: touched {touched} of {total_pages} pages"
    );
}

#[test]
fn operator_states_drive_a_manual_pull() {
    // Drive the executor by hand through Env/build_iter to observe the
    // INITIAL → FETCHING → OUT_OF_TUPLES protocol indirectly: the
    // iterator yields exactly COUNT tuples and then stays exhausted.
    let e = engine();
    let plan = e.compile("//person").unwrap();
    let plan = e.optimize_plan(plan, DocId(0)).unwrap().plan;
    let doc_key = e.store().documents()[0].doc_key.clone();
    let root_ctx = NodeEntry {
        key: doc_key,
        kind: RecordKind::Document,
        name: None,
    };
    let env = Env {
        plan: &plan,
        store: e.store(),
        root_ctx: &root_ctx,
        stats: None,
    };
    let top = match plan.op(plan.root()) {
        Operator::Root { child } => child.unwrap(),
        _ => unreachable!(),
    };
    let mut iter = exec::build_iter(env, top, None).unwrap();
    let mut n = 0;
    while iter.next(env).unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, 3);
    assert!(
        iter.next(env).unwrap().is_none(),
        "exhausted iterator must stay exhausted"
    );
    assert!(iter.next(env).unwrap().is_none());
}

#[test]
fn range_rewrite_executes_correctly_end_to_end() {
    let e = engine();
    // ages > 20 → 31, 31.
    assert_eq!(values(&e, "//age[text() > 20]"), vec!["31", "31"]);
    assert_eq!(values(&e, "//age[text() < 20]"), vec!["17"]);
    assert_eq!(values(&e, "//age[text() >= 31]").len(), 2);
    // The rewrite fires when the range is selective (`< 20` matches one
    // node database-wide)...
    let ex = e.explain(DocId(0), "//age[text() < 20]").unwrap();
    assert!(ex.applied.contains(&"range-index-step"), "{:?}", ex.applied);
    // ...and is correctly rejected by costing when the numeric index
    // over-fetches (`> 20` also matches both `limit` values, so the
    // range step would handle more tuples than the default step).
    let ex = e.explain(DocId(0), "//age[text() > 20]").unwrap();
    assert!(
        !ex.applied.contains(&"range-index-step"),
        "{:?}",
        ex.applied
    );
}
