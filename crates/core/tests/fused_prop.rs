//! Property tests for whole-query fusion (see `vamana_core::opt::fuse`
//! and `vamana_core::exec::fused`).
//!
//! One property pins the rewrite down: for arbitrary forward
//! child/descendant chains with existential predicates over arbitrary
//! generated documents, an engine with fusion *forced* (every
//! extractable candidate accepted, bypassing the cost race) must return
//! exactly what the plain pipeline returns — batched and scalar, with
//! and without the cost gate. The generators are shared in spirit with
//! `views_prop.rs`: same alphabet, same document tape, so fused scans
//! see deep recursion, repeated names, and empty matches.

use proptest::prelude::*;
use vamana_core::{DocId, Engine, EngineOptions, MassStore};

const NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// One spine step: descendant edge?, node test, optional predicate path.
type StepSpec = (bool, String, Option<String>);

fn test_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("*".to_string()),
        Just("text()".to_string()),
        Just("node()".to_string()),
    ]
}

fn pred_strategy() -> impl Strategy<Value = Option<String>> {
    proptest::option::of(prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("b/c".to_string()),
        Just("c[a]".to_string()),
        Just(".//b".to_string()),
    ])
}

fn steps_strategy() -> impl Strategy<Value = Vec<StepSpec>> {
    proptest::collection::vec((any::<bool>(), test_strategy(), pred_strategy()), 2..5)
}

fn render(steps: &[StepSpec]) -> String {
    let mut s = String::new();
    for (descendant, test, pred) in steps {
        s.push_str(if *descendant { "//" } else { "/" });
        s.push_str(test);
        if let Some(p) = pred {
            s.push('[');
            s.push_str(p);
            s.push(']');
        }
    }
    s
}

/// Builds a small XML document from a stack-machine tape (same scheme
/// as `views_prop.rs`): open a child, close the current element, or
/// emit a leaf — names drawn from the pattern alphabet so matches are
/// likely; odd tape values add text so `text()` steps have targets.
fn build_doc(ops: &[(u8, u8)]) -> String {
    let mut xml = String::from("<a>");
    let mut stack = vec!["a"];
    for &(n, action) in ops {
        let name = NAMES[(n % 4) as usize];
        match action % 4 {
            0 if stack.len() < 6 => {
                xml.push('<');
                xml.push_str(name);
                xml.push('>');
                stack.push(name);
            }
            1 if stack.len() > 1 => {
                let t = stack.pop().unwrap();
                xml.push_str("</");
                xml.push_str(t);
                xml.push('>');
            }
            2 => {
                xml.push('t');
            }
            _ => {
                xml.push('<');
                xml.push_str(name);
                xml.push_str("/>");
            }
        }
    }
    while let Some(t) = stack.pop() {
        xml.push_str("</");
        xml.push_str(t);
        xml.push('>');
    }
    xml
}

fn engine_for(xml: &str, options: EngineOptions) -> Engine {
    let mut store = MassStore::open_memory();
    store.load_xml("d", xml).expect("load generated doc");
    let mut engine = Engine::new(store);
    *engine.options_mut() = options;
    engine
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Forced fusion is invisible: batched-fused, scalar-fused, and
    /// cost-gated-fused runs all equal the plain scalar pipeline on
    /// random forward chains over random documents.
    #[test]
    fn fused_execution_matches_the_plain_pipeline(
        steps in steps_strategy(),
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..60),
    ) {
        let xpath = render(&steps);
        let xml = build_doc(&ops);
        let doc = DocId(0);
        // Oracle: scalar pipeline, nothing fused.
        let oracle = engine_for(&xml, EngineOptions {
            batched: false,
            ..EngineOptions::default()
        });
        let expected = oracle.query_doc(doc, &xpath).unwrap();
        for (batched, force) in [(true, true), (false, true), (true, false)] {
            let subject = engine_for(&xml, EngineOptions {
                batched,
                fuse: true,
                fuse_force: force,
                ..EngineOptions::default()
            });
            let got = subject.query_doc(doc, &xpath).unwrap();
            prop_assert_eq!(
                &got,
                &expected,
                "fusion changed {} (batched={}, forced={})",
                xpath,
                batched,
                force
            );
        }
    }
}

/// The property above is vacuous if the generator never produces a
/// fusable chain: check that a healthy share of deterministic samples
/// actually executes a fused operator under forced fusion.
#[test]
fn generator_yield_sanity() {
    let mut fused_runs = 0;
    let total = 60u64;
    for i in 0..total {
        let steps: Vec<StepSpec> = (0..2 + (i % 3))
            .map(|j| {
                let k = i.wrapping_mul(31).wrapping_add(j * 7);
                (
                    k % 2 == 0,
                    NAMES[(k % 4) as usize].to_string(),
                    (k % 3 == 0).then(|| NAMES[(k % 4) as usize].to_string()),
                )
            })
            .collect();
        let xpath = render(&steps);
        let ops: Vec<(u8, u8)> = (0..40u64)
            .map(|j| {
                let k = i.wrapping_mul(131).wrapping_add(j * 17);
                (k as u8, (k / 7) as u8)
            })
            .collect();
        let subject = engine_for(
            &build_doc(&ops),
            EngineOptions {
                fuse: true,
                fuse_force: true,
                ..EngineOptions::default()
            },
        );
        subject.query_doc(DocId(0), &xpath).unwrap();
        if subject.fused_stats().0 > 0 {
            fused_runs += 1;
        }
    }
    assert!(
        fused_runs >= total / 2,
        "only {fused_runs}/{total} sample chains executed fused"
    );
}
