//! The engine's durable-update path: `apply_update` routing mutations
//! through the WAL-logged store, the epoch gate draining in-flight
//! readers instead of panicking, and per-document generation bumps.

use std::sync::Arc;
use std::time::Duration;
use vamana_core::{DocId, Engine, EngineError, EngineOptions, MassStore, SharedEngine, UpdateOp};
use vamana_mass::{FsyncPolicy, MassError};

fn seeded_engine() -> Engine {
    let mut store = MassStore::open_memory();
    store
        .load_xml(
            "auction",
            "<site><people><person id='p0'><name>Ada</name></person>\
             <person id='p1'><name>Grace</name></person></people></site>",
        )
        .unwrap();
    Engine::new(store)
}

#[test]
fn insert_appends_fragment_to_first_match_and_bumps_generation() {
    let mut engine = seeded_engine();
    let doc = DocId(0);
    let gen0 = engine.store().doc_generation(doc);
    let outcome = engine
        .apply_update(
            doc,
            &UpdateOp::Insert {
                target: "//people".into(),
                fragment: "<person id='p2'><name>Edsger</name></person>".into(),
            },
        )
        .unwrap();
    assert_eq!(outcome.matched, 1);
    assert!(outcome.inserted >= 4, "element+attr+name+text inserted");
    assert_eq!(outcome.deleted, 0);
    assert!(
        outcome.doc_generation > gen0,
        "update must bump the doc generation"
    );
    assert_eq!(engine.query("//person").unwrap().len(), 3);
    assert_eq!(engine.query("//person[name='Edsger']").unwrap().len(), 1);
}

#[test]
fn delete_removes_every_match() {
    let mut engine = seeded_engine();
    let doc = DocId(0);
    let outcome = engine
        .apply_update(
            doc,
            &UpdateOp::Delete {
                target: "//person".into(),
            },
        )
        .unwrap();
    assert_eq!(outcome.matched, 2);
    assert!(outcome.deleted >= 2);
    assert_eq!(engine.query("//person").unwrap().len(), 0);
    assert_eq!(engine.query("//people").unwrap().len(), 1);
}

#[test]
fn delete_overlapping_matches_skips_already_removed_subtrees() {
    let mut engine = seeded_engine();
    let doc = DocId(0);
    // `//*` matches both `people` and the persons inside it; deleting the
    // `people` subtree removes the persons, and the walk must skip them.
    let outcome = engine
        .apply_update(
            doc,
            &UpdateOp::Delete {
                target: "//people | //person".into(),
            },
        )
        .or_else(|_| {
            // Union syntax may be unsupported; ancestor-then-descendant
            // overlap is equally exercised by //* under people.
            engine.apply_update(
                doc,
                &UpdateOp::Delete {
                    target: "//people/descendant-or-self::*".into(),
                },
            )
        })
        .unwrap();
    assert!(outcome.matched >= 2);
    assert_eq!(engine.query("//person").unwrap().len(), 0);
}

#[test]
fn insert_into_text_node_is_rejected_before_logging() {
    let mut engine = seeded_engine();
    let err = engine
        .apply_update(
            DocId(0),
            &UpdateOp::Insert {
                target: "//name/text()".into(),
                fragment: "<x/>".into(),
            },
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)), "{err:?}");
    // Nothing was applied.
    assert_eq!(engine.query("//x").unwrap().len(), 0);
}

#[test]
fn writer_waits_for_pinned_reader_then_succeeds() {
    let mut engine = seeded_engine();
    let handle = engine.store_handle();
    let pin = std::thread::spawn(move || {
        // Simulate an in-flight parallel reader holding the store.
        std::thread::sleep(Duration::from_millis(60));
        drop(handle);
    });
    let outcome = engine
        .apply_update(
            DocId(0),
            &UpdateOp::Insert {
                target: "//people".into(),
                fragment: "<person><name>Late</name></person>".into(),
            },
        )
        .unwrap();
    pin.join().unwrap();
    assert!(
        outcome.profile.writer_wait >= Duration::from_millis(20),
        "writer should have parked at the epoch gate: {:?}",
        outcome.profile.writer_wait
    );
    assert!(engine.writer_wait_total() >= Duration::from_millis(20));
    assert_eq!(engine.query("//person").unwrap().len(), 3);
}

#[test]
fn held_reader_past_deadline_degrades_to_writer_conflict() {
    let mut store = MassStore::open_memory();
    store.load_xml("d", "<r><a/></r>").unwrap();
    let options = EngineOptions {
        writer_drain_timeout: Duration::from_millis(50),
        ..EngineOptions::default()
    };
    let mut engine = Engine::with_options(store, options);
    let _pin = engine.store_handle();
    let err = engine
        .apply_update(
            DocId(0),
            &UpdateOp::Delete {
                target: "//a".into(),
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, EngineError::Storage(MassError::WriterConflict)),
        "{err:?}"
    );
    drop(_pin);
    // Once the reader drains, the same update goes through.
    engine
        .apply_update(
            DocId(0),
            &UpdateOp::Delete {
                target: "//a".into(),
            },
        )
        .unwrap();
    assert_eq!(engine.query("//a").unwrap().len(), 0);
}

#[test]
fn concurrent_parallel_readers_see_consistent_results_across_update() {
    // A big document so queries actually fan out to the scan pool.
    let mut xml = String::from("<site>");
    for _ in 0..8 {
        xml.push_str("<section>");
        for i in 0..120 {
            xml.push_str(&format!("<item><price>{}</price></item>", i % 13));
        }
        xml.push_str("</section>");
    }
    xml.push_str("</site>");

    let mut store = MassStore::open_memory();
    store.load_xml("big", &xml).unwrap();
    let options = EngineOptions {
        parallel: true,
        batched: true,
        parallel_workers: 4,
        ..EngineOptions::default()
    };
    let shared = Arc::new(SharedEngine::new(Engine::with_options(store, options)));

    let before = shared.read().query("//item").unwrap().len();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for _ in 0..30 {
                    let n = shared.read().query("//item").unwrap().len();
                    // Readers observe either the pre- or post-update
                    // count, never a torn in-between state.
                    assert!(n == before || n == before + 1, "torn read: {n}");
                }
            });
        }
        let shared = Arc::clone(&shared);
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            shared
                .write()
                .apply_update(
                    DocId(0),
                    &UpdateOp::Insert {
                        target: "/site/section[1]".into(),
                        fragment: "<item><price>999</price></item>".into(),
                    },
                )
                .unwrap();
        });
    });
    assert_eq!(shared.read().query("//item").unwrap().len(), before + 1);
}

#[test]
fn update_is_wal_logged_on_durable_stores() {
    let dir = std::env::temp_dir().join(format!("vamana-upd-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("upd.mass");
    let _ = std::fs::remove_file(&path);

    let doc;
    {
        let store = MassStore::create_durable(&path, 512, FsyncPolicy::Always).unwrap();
        let mut engine = Engine::new(store);
        doc = engine
            .load_xml("d", "<r><list><i>1</i></list></r>")
            .unwrap();
        let outcome = engine
            .apply_update(
                doc,
                &UpdateOp::Insert {
                    target: "//list".into(),
                    fragment: "<i>2</i>".into(),
                },
            )
            .unwrap();
        assert!(outcome.lsn > 0, "durable update must advance the WAL");
        assert!(engine.store().wal_stats().records > 0);
        // Dropped without checkpoint: recovery must replay the update.
    }
    {
        let store = MassStore::open_durable(&path, 512, FsyncPolicy::Always).unwrap();
        let engine = Engine::new(store);
        assert_eq!(engine.query_doc(doc, "//i").unwrap().len(), 2);
    }
    {
        // Checkpoint folds the log into pages and empties it.
        let store = MassStore::open_durable(&path, 512, FsyncPolicy::Always).unwrap();
        let mut engine = Engine::new(store);
        let stats = engine.checkpoint().unwrap();
        assert_eq!(stats.records, 0, "checkpoint must empty the WAL");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
