//! `EXPLAIN ANALYZE` rendering: golden output, mode stability, and
//! instrumentation hygiene (no drift when disabled, no profile
//! carry-over between queries).

use vamana_core::{DocId, Engine, EngineOptions, MassStore};

/// ~3600 elements so scan queries clear the lowered parallel thresholds.
fn big_doc() -> String {
    let mut xml = String::from("<site>");
    for s in 0..12 {
        xml.push_str(&format!("<section id='s{s}'>"));
        for i in 0..100 {
            xml.push_str(&format!(
                "<item><name>n{s}_{i}</name><price>{}</price></item>",
                i % 17
            ));
        }
        xml.push_str("</section>");
    }
    xml.push_str("</site>");
    xml
}

fn engine(workers: usize) -> Engine {
    let mut store = MassStore::open_memory();
    store.load_xml("doc", &big_doc()).unwrap();
    Engine::with_options(
        store,
        EngineOptions {
            parallel_workers: workers,
            parallel_threshold: 64,
            parallel_min_morsel: 16,
            ..Default::default()
        },
    )
}

fn small_engine() -> Engine {
    let mut store = MassStore::open_memory();
    store
        .load_xml(
            "doc",
            "<site><person id='p0'><name>Yung Flach</name></person>\
             <person id='p1'><name>Someone Else</name></person></site>",
        )
        .unwrap();
    Engine::new(store)
}

/// The full `.analyze` rendering, pinned: estimate cards, actual rows,
/// q-errors, and the misestimation summary. This is the golden test for
/// the text surface — if it moves, the CLI and server output move too.
#[test]
fn golden_analyze_render() {
    let engine = small_engine();
    let analysis = engine.analyze_doc(DocId(0), "//person/name").unwrap();
    let expected = "\
optimized plan (Σ tuple volume 12, 0 rules applied), 2 rows:
R0  [IN=2 OUT=2 δ=1.000] est=2 act=2 (err ×1.0)
  └─ φ3 child::name  [COUNT=2 IN=2 OUT=2 δ=1.000] est=2 act=2 (err ×1.0)
    └─ φ2 descendant::person  [COUNT=2 IN=2 OUT=2 δ=1.000] est=2 act=2 (err ×1.0)
misestimations: none above ×1.05
";
    assert_eq!(analysis.render(), expected);
}

/// `Analysis::render` is mode stable: scalar, batched, and parallel runs
/// produce byte-identical text (actual rows are pipeline-invariant; the
/// varying counters are confined to the JSON/profile surfaces).
#[test]
fn render_is_identical_across_modes() {
    let mut e = engine(4);
    for xpath in ["/site//*", "//item/*", "//item[price='3']/name"] {
        e.options_mut().batched = false;
        e.options_mut().parallel = false;
        let scalar = e.analyze_doc(DocId(0), xpath).unwrap();
        e.options_mut().batched = true;
        let batched = e.analyze_doc(DocId(0), xpath).unwrap();
        e.options_mut().parallel = true;
        let parallel = e.analyze_doc(DocId(0), xpath).unwrap();
        assert_eq!(
            scalar.render(),
            batched.render(),
            "{xpath}: scalar vs batched"
        );
        assert_eq!(
            batched.render(),
            parallel.render(),
            "{xpath}: batched vs parallel"
        );
        if xpath == "/site//*" {
            assert!(
                parallel.profile.morsels > 0,
                "{xpath}: parallel mode did not engage, mode stability untested"
            );
        }
    }
}

/// Repeated ANALYZE of the same query yields identical actuals, and
/// stats-disabled runs in between record nowhere (each analysis carries
/// its own counter tree; the plain query path has none at all).
#[test]
fn repeated_analyze_has_no_counter_drift() {
    let e = engine(2);
    let first = e.analyze_doc(DocId(0), "//item/name").unwrap();
    for _ in 0..3 {
        e.query_doc(DocId(0), "//item/name").unwrap();
    }
    let second = e.analyze_doc(DocId(0), "//item/name").unwrap();
    // Everything but wall time is deterministic run to run.
    let stable = |a: &vamana_core::ExecStatsSnapshot| -> Vec<(u64, u64, u64, u64, u64)> {
        a.ops
            .iter()
            .map(|o| (o.invocations, o.rows, o.batches, o.probes, o.pins))
            .collect()
    };
    assert_eq!(stable(&first.actuals), stable(&second.actuals));
    assert_eq!(first.render(), second.render());
}

/// Profile counters are per-query deltas: a big parallel query followed
/// by a tiny serial one on the same engine must not leak morsel or
/// batch-pin counts into the second profile.
#[test]
fn profile_counters_reset_between_queries() {
    let mut e = engine(4);
    e.options_mut().batched = true;
    e.options_mut().parallel = true;
    let (_, big) = e.query_doc_profiled(DocId(0), "/site//*").unwrap();
    assert!(big.morsels > 0, "big scan should fan out");
    // `//section` matches 12 nodes — far below the parallel threshold.
    let (rows, small) = e.query_doc_profiled(DocId(0), "//section").unwrap();
    assert_eq!(rows.len(), 12);
    assert_eq!(small.morsels, 0, "morsels leaked into the serial query");
    assert_eq!(small.worker_batches, 0, "batches leaked");
    assert_eq!(small.merge_stalls, 0, "stalls leaked");
}
