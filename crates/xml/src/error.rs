//! Error type for XML parsing.

use std::fmt;

/// The category of a parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A close tag did not match the innermost open tag.
    MismatchedTag { expected: String, found: String },
    /// A tag, attribute, or reference was syntactically malformed.
    Malformed(String),
    /// An entity reference could not be resolved.
    UnknownEntity(String),
    /// Content appeared after the document element closed.
    TrailingContent,
    /// The document contained no element at all.
    NoRootElement,
    /// More than one top-level element.
    MultipleRoots,
}

/// A parse error with the byte offset and 1-based line/column where it
/// occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: XmlErrorKind,
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes).
    pub column: usize,
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, input: &str, offset: usize) -> Self {
        let mut line = 1usize;
        let mut last_nl = 0usize;
        for (i, b) in input.as_bytes()[..offset.min(input.len())]
            .iter()
            .enumerate()
        {
            if *b == b'\n' {
                line += 1;
                last_nl = i + 1;
            }
        }
        XmlError {
            kind,
            offset,
            line,
            column: offset.saturating_sub(last_nl) + 1,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at line {}, column {}: ",
            self.line, self.column
        )?;
        match &self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::MismatchedTag { expected, found } => {
                write!(
                    f,
                    "mismatched close tag: expected </{expected}>, found </{found}>"
                )
            }
            XmlErrorKind::Malformed(what) => write!(f, "malformed {what}"),
            XmlErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            XmlErrorKind::TrailingContent => write!(f, "content after document element"),
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::MultipleRoots => write!(f, "document has multiple root elements"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_column_are_computed_from_offset() {
        let input = "ab\ncd\nef";
        let err = XmlError::new(XmlErrorKind::UnexpectedEof, input, 7);
        assert_eq!(err.line, 3);
        assert_eq!(err.column, 2);
    }

    #[test]
    fn offset_zero_is_line_one_column_one() {
        let err = XmlError::new(XmlErrorKind::UnexpectedEof, "x", 0);
        assert_eq!((err.line, err.column), (1, 1));
    }

    #[test]
    fn display_mentions_position() {
        let err = XmlError::new(XmlErrorKind::Malformed("tag".into()), "<", 0);
        let s = err.to_string();
        assert!(s.contains("line 1"), "{s}");
        assert!(s.contains("malformed tag"), "{s}");
    }
}
