//! Serialization of a [`Document`] back to XML text.

use crate::escape::{escape_attr, escape_text};
use crate::model::{Document, NodeId, NodeKind};
use std::fmt::Write as _;

/// Options controlling serialization.
#[derive(Debug, Clone, Default)]
pub struct WriteOptions {
    /// Emit an `<?xml version="1.0"?>` declaration first.
    pub declaration: bool,
    /// Indent nested elements by this many spaces per level
    /// (`None` = compact output, required for byte-exact round-trips).
    pub indent: Option<usize>,
}

/// Serializes the whole document.
pub fn write_document(doc: &Document, opts: &WriteOptions) -> String {
    let mut out = String::new();
    if opts.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if opts.indent.is_some() {
            out.push('\n');
        }
    }
    for child in doc.children(Document::ROOT) {
        write_node(doc, child, opts, 0, &mut out);
        if opts.indent.is_some() {
            out.push('\n');
        }
    }
    out
}

fn write_indent(out: &mut String, opts: &WriteOptions, level: usize) {
    if let Some(n) = opts.indent {
        out.push('\n');
        for _ in 0..level * n {
            out.push(' ');
        }
    }
}

fn write_node(doc: &Document, id: NodeId, opts: &WriteOptions, level: usize, out: &mut String) {
    match doc.kind(id) {
        NodeKind::Document => {}
        NodeKind::Element { name } => {
            out.push('<');
            out.push_str(name);
            for attr in doc.attributes(id) {
                let _ = write!(
                    out,
                    " {}=\"{}\"",
                    doc.name(attr).unwrap_or(""),
                    escape_attr(doc.value(attr).unwrap_or(""))
                );
            }
            let mut children = doc.children(id).peekable();
            if children.peek().is_none() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            // Mixed content (any text child) suppresses indentation so that
            // significant text is not polluted with whitespace.
            let mixed = doc.children(id).any(|c| doc.kind(c).is_text());
            for child in children {
                if !mixed {
                    write_indent(out, opts, level + 1);
                }
                write_node(doc, child, opts, level + 1, out);
            }
            if !mixed {
                write_indent(out, opts, level);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        NodeKind::Text { value } => out.push_str(&escape_text(value)),
        NodeKind::Comment { value } => {
            let _ = write!(out, "<!--{value}-->");
        }
        NodeKind::ProcessingInstruction { target, data } => {
            if data.is_empty() {
                let _ = write!(out, "<?{target}?>");
            } else {
                let _ = write!(out, "<?{target} {data}?>");
            }
        }
        NodeKind::Attribute { .. } => unreachable!("attributes are written with their element"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_round_trip() {
        let src = r#"<person id="p1"><name>Yung Flach</name><watches><watch open_auction="oa1"/></watches></person>"#;
        let doc = parse(src).unwrap();
        let out = write_document(&doc, &WriteOptions::default());
        assert_eq!(out, src);
    }

    #[test]
    fn escapes_round_trip() {
        let src = r#"<a b="x &amp; y">1 &lt; 2 &amp; 3</a>"#;
        let doc = parse(src).unwrap();
        let out = write_document(&doc, &WriteOptions::default());
        let doc2 = parse(&out).unwrap();
        assert_eq!(
            doc.string_value(doc.root_element().unwrap()),
            doc2.string_value(doc2.root_element().unwrap())
        );
    }

    #[test]
    fn indentation_applies_to_element_only_content() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let out = write_document(
            &doc,
            &WriteOptions {
                declaration: false,
                indent: Some(2),
            },
        );
        assert!(out.contains("\n  <b>"), "{out}");
        assert!(out.contains("\n    <c/>"), "{out}");
    }

    #[test]
    fn mixed_content_is_not_indented() {
        let doc = parse("<a>text<b/></a>").unwrap();
        let out = write_document(
            &doc,
            &WriteOptions {
                declaration: false,
                indent: Some(2),
            },
        );
        assert!(out.contains("<a>text<b/></a>"), "{out}");
    }

    #[test]
    fn declaration_emitted_when_requested() {
        let doc = parse("<a/>").unwrap();
        let out = write_document(
            &doc,
            &WriteOptions {
                declaration: true,
                indent: None,
            },
        );
        assert!(out.starts_with("<?xml"));
    }

    #[test]
    fn comments_and_pis_round_trip() {
        let src = "<a><!--note--><?go now?></a>";
        let doc = parse(src).unwrap();
        assert_eq!(write_document(&doc, &WriteOptions::default()), src);
    }
}
