//! Arena-based XML document model.
//!
//! All nodes live in a single `Vec`; [`NodeId`] is an index into it. This
//! keeps the tree cache-friendly and makes node handles `Copy`, which the
//! DOM baseline engine and the MASS loader both rely on.
//!
//! Attributes are kept on a separate sibling chain (headed by
//! `first_attr`) rather than in the child list, matching the XPath data
//! model where the `attribute` axis is distinct from `child`.

/// Identifier of a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind (and payload) of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The document root (exactly one per document, always [`Document::ROOT`]).
    Document,
    /// An element with a tag name.
    Element { name: Box<str> },
    /// An attribute with a name and value.
    Attribute { name: Box<str>, value: Box<str> },
    /// Character data.
    Text { value: Box<str> },
    /// A comment.
    Comment { value: Box<str> },
    /// A processing instruction.
    ProcessingInstruction { target: Box<str>, data: Box<str> },
}

impl NodeKind {
    /// True for element nodes.
    #[inline]
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// True for text nodes.
    #[inline]
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text { .. })
    }

    /// True for attribute nodes.
    #[inline]
    pub fn is_attribute(&self) -> bool {
        matches!(self, NodeKind::Attribute { .. })
    }
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct NodeData {
    kind: NodeKind,
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    prev_sibling: u32,
    first_attr: u32,
}

impl NodeData {
    fn new(kind: NodeKind, parent: u32) -> Self {
        NodeData {
            kind,
            parent,
            first_child: NIL,
            last_child: NIL,
            next_sibling: NIL,
            prev_sibling: NIL,
            first_attr: NIL,
        }
    }
}

/// An XML document: an arena of nodes rooted at [`Document::ROOT`].
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeData>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// The document node, parent of the root element.
    pub const ROOT: NodeId = NodeId(0);

    /// Creates an empty document containing only the document node.
    pub fn new() -> Self {
        Document {
            nodes: vec![NodeData::new(NodeKind::Document, NIL)],
        }
    }

    /// Number of nodes in the arena, including the document node and
    /// attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document contains only the document node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The kind of `id`.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// The element or attribute name of `id` (PI target for PIs), if any.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { name } | NodeKind::Attribute { name, .. } => Some(name),
            NodeKind::ProcessingInstruction { target, .. } => Some(target),
            _ => None,
        }
    }

    /// The direct textual value of `id`: text content for text/comment
    /// nodes, attribute value for attributes, PI data for PIs.
    pub fn value(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].kind {
            NodeKind::Text { value } | NodeKind::Comment { value } => Some(value),
            NodeKind::Attribute { value, .. } => Some(value),
            NodeKind::ProcessingInstruction { data, .. } => Some(data),
            _ => None,
        }
    }

    fn opt(&self, raw: u32) -> Option<NodeId> {
        (raw != NIL).then_some(NodeId(raw))
    }

    /// Parent node, if any (the document node has none; attributes report
    /// their owning element).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.opt(self.nodes[id.index()].parent)
    }

    /// First child (attributes excluded).
    #[inline]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.opt(self.nodes[id.index()].first_child)
    }

    /// Last child (attributes excluded).
    #[inline]
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        self.opt(self.nodes[id.index()].last_child)
    }

    /// Next sibling in document order (attributes chain among themselves).
    #[inline]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.opt(self.nodes[id.index()].next_sibling)
    }

    /// Previous sibling in document order.
    #[inline]
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.opt(self.nodes[id.index()].prev_sibling)
    }

    /// First attribute of an element.
    #[inline]
    pub fn first_attr(&self, id: NodeId) -> Option<NodeId> {
        self.opt(self.nodes[id.index()].first_attr)
    }

    /// Iterator over the children of `id` in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.nodes[id.index()].first_child,
        }
    }

    /// Iterator over the attributes of `id` in document order.
    pub fn attributes(&self, id: NodeId) -> Attributes<'_> {
        Attributes {
            doc: self,
            next: self.nodes[id.index()].first_attr,
        }
    }

    /// Looks up an attribute of `id` by name.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id)
            .find(|a| self.name(*a) == Some(name))
            .and_then(|a| self.value(a))
    }

    /// Iterator over all descendants of `id` (excluding `id` itself and
    /// attributes) in document order.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            root: id,
            next: self.nodes[id.index()].first_child,
        }
    }

    /// The single top-level element, if the document has one.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(Self::ROOT)
            .find(|c| self.kind(*c).is_element())
    }

    /// The XPath string-value of `id`: concatenation of all descendant text
    /// for elements and the document node; direct value otherwise.
    pub fn string_value(&self, id: NodeId) -> String {
        match self.kind(id) {
            NodeKind::Document | NodeKind::Element { .. } => {
                let mut out = String::new();
                for d in self.descendants(id) {
                    if let NodeKind::Text { value } = self.kind(d) {
                        out.push_str(value);
                    }
                }
                out
            }
            _ => self.value(id).unwrap_or("").to_string(),
        }
    }

    /// Depth of `id`: the document node is 0, the root element 1, and so on.
    /// Attributes are one deeper than their owning element.
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    // ---- construction -------------------------------------------------

    fn push_node(&mut self, kind: NodeKind, parent: NodeId) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData::new(kind, parent.0));
        let p = &mut self.nodes[parent.index()];
        if p.first_child == NIL {
            p.first_child = id.0;
            p.last_child = id.0;
        } else {
            let prev = p.last_child;
            p.last_child = id.0;
            self.nodes[prev as usize].next_sibling = id.0;
            self.nodes[id.index()].prev_sibling = prev;
        }
        id
    }

    /// Appends an element child under `parent` and returns its id.
    pub fn push_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        self.push_node(NodeKind::Element { name: name.into() }, parent)
    }

    /// Appends a text child under `parent`.
    pub fn push_text(&mut self, parent: NodeId, value: &str) -> NodeId {
        self.push_node(
            NodeKind::Text {
                value: value.into(),
            },
            parent,
        )
    }

    /// Appends a comment child under `parent`.
    pub fn push_comment(&mut self, parent: NodeId, value: &str) -> NodeId {
        self.push_node(
            NodeKind::Comment {
                value: value.into(),
            },
            parent,
        )
    }

    /// Appends a processing-instruction child under `parent`.
    pub fn push_pi(&mut self, parent: NodeId, target: &str, data: &str) -> NodeId {
        self.push_node(
            NodeKind::ProcessingInstruction {
                target: target.into(),
                data: data.into(),
            },
            parent,
        )
    }

    /// Attaches an attribute to `element` and returns its id.
    pub fn push_attribute(&mut self, element: NodeId, name: &str, value: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData::new(
            NodeKind::Attribute {
                name: name.into(),
                value: value.into(),
            },
            element.0,
        ));
        // Append to the attribute chain.
        let first = self.nodes[element.index()].first_attr;
        if first == NIL {
            self.nodes[element.index()].first_attr = id.0;
        } else {
            let mut cur = first;
            loop {
                let next = self.nodes[cur as usize].next_sibling;
                if next == NIL {
                    break;
                }
                cur = next;
            }
            self.nodes[cur as usize].next_sibling = id.0;
            self.nodes[id.index()].prev_sibling = cur;
        }
        id
    }

    /// Iterator over every node id in arena (construction) order. For a
    /// document built by the parser this is *not* document order because
    /// attributes are interleaved; use [`Document::descendants`] from
    /// [`Document::ROOT`] for document order.
    pub fn all_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }
}

/// Iterator over the children of a node. See [`Document::children`].
pub struct Children<'a> {
    doc: &'a Document,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.doc.opt(self.next)?;
        self.next = self.doc.nodes[id.index()].next_sibling;
        Some(id)
    }
}

/// Iterator over the attributes of an element. See [`Document::attributes`].
pub struct Attributes<'a> {
    doc: &'a Document,
    next: u32,
}

impl Iterator for Attributes<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.doc.opt(self.next)?;
        self.next = self.doc.nodes[id.index()].next_sibling;
        Some(id)
    }
}

/// Pre-order iterator over the descendants of a node.
/// See [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    root: NodeId,
    next: u32,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.doc.opt(self.next)?;
        // Advance: first child, else next sibling, else climb until a
        // sibling exists or we reach the subtree root.
        let data = &self.doc.nodes[id.index()];
        let mut next = data.first_child;
        if next == NIL {
            let mut cur = id;
            loop {
                if cur == self.root {
                    next = NIL;
                    break;
                }
                let d = &self.doc.nodes[cur.index()];
                if d.next_sibling != NIL {
                    next = d.next_sibling;
                    break;
                }
                match self.doc.parent(cur) {
                    Some(p) => cur = p,
                    None => {
                        next = NIL;
                        break;
                    }
                }
            }
        }
        self.next = next;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let person = doc.push_element(Document::ROOT, "person");
        doc.push_attribute(person, "id", "person144");
        let name = doc.push_element(person, "name");
        doc.push_text(name, "Yung Flach");
        let email = doc.push_element(person, "emailaddress");
        doc.push_text(email, "Flach@auth.gr");
        (doc, person, name, email)
    }

    #[test]
    fn children_in_order() {
        let (doc, person, name, email) = sample();
        let kids: Vec<_> = doc.children(person).collect();
        assert_eq!(kids, vec![name, email]);
    }

    #[test]
    fn attributes_are_not_children() {
        let (doc, person, ..) = sample();
        assert!(doc.children(person).all(|c| !doc.kind(c).is_attribute()));
        let attrs: Vec<_> = doc.attributes(person).collect();
        assert_eq!(attrs.len(), 1);
        assert_eq!(doc.attribute(person, "id"), Some("person144"));
    }

    #[test]
    fn descendants_pre_order() {
        let (doc, person, name, email) = sample();
        let descs: Vec<_> = doc.descendants(Document::ROOT).collect();
        assert_eq!(descs[0], person);
        assert_eq!(descs[1], name);
        // text under name comes before email
        assert!(descs.iter().position(|d| *d == email).unwrap() > 2);
        let sub: Vec<_> = doc.descendants(name).collect();
        assert_eq!(sub.len(), 1);
        assert!(doc.kind(sub[0]).is_text());
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let (doc, person, name, _) = sample();
        assert_eq!(doc.string_value(name), "Yung Flach");
        assert_eq!(doc.string_value(person), "Yung FlachFlach@auth.gr");
    }

    #[test]
    fn depth_counts_from_document_node() {
        let (doc, person, name, _) = sample();
        assert_eq!(doc.depth(Document::ROOT), 0);
        assert_eq!(doc.depth(person), 1);
        assert_eq!(doc.depth(name), 2);
    }

    #[test]
    fn sibling_links_are_consistent() {
        let (doc, person, name, email) = sample();
        assert_eq!(doc.next_sibling(name), Some(email));
        assert_eq!(doc.prev_sibling(email), Some(name));
        assert_eq!(doc.first_child(person), Some(name));
        assert_eq!(doc.last_child(person), Some(email));
        assert_eq!(doc.parent(name), Some(person));
    }

    #[test]
    fn root_element_skips_non_elements() {
        let mut doc = Document::new();
        doc.push_comment(Document::ROOT, "header");
        let e = doc.push_element(Document::ROOT, "site");
        assert_eq!(doc.root_element(), Some(e));
    }

    #[test]
    fn multiple_attributes_chain() {
        let mut doc = Document::new();
        let e = doc.push_element(Document::ROOT, "watch");
        doc.push_attribute(e, "a", "1");
        doc.push_attribute(e, "b", "2");
        doc.push_attribute(e, "c", "3");
        let names: Vec<_> = doc
            .attributes(e)
            .map(|a| doc.name(a).unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_document() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert_eq!(doc.root_element(), None);
        assert_eq!(doc.string_value(Document::ROOT), "");
    }
}
