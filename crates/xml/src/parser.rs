//! A non-validating XML parser producing a [`Document`] arena.
//!
//! Supported: elements, attributes (single or double quoted), character
//! data, CDATA sections, comments, processing instructions, the XML
//! declaration, predefined entities and numeric character references.
//! Not supported (rejected or skipped): DTDs beyond skipping a `<!DOCTYPE
//! ...>` without an internal subset, parameter entities, namespaces-aware
//! processing (prefixes are kept as part of the name).

use crate::error::{XmlError, XmlErrorKind};
use crate::escape::unescape_into;
use crate::model::{Document, NodeId};

/// Parses `input` into a [`Document`].
///
/// This is the main entry point of the crate:
///
/// ```
/// let doc = vamana_xml::parse("<a><b/>text</a>").unwrap();
/// assert_eq!(doc.name(doc.root_element().unwrap()), Some("a"));
/// ```
pub fn parse(input: &str) -> Result<Document, XmlError> {
    Parser::new(input).parse()
}

/// Streaming state for a single parse. Use [`parse`] unless you need
/// configuration.
pub struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// When true (default), whitespace-only text between elements is
    /// dropped. XMark documents put no significant whitespace-only text
    /// nodes, and dropping them keeps node counts meaningful.
    keep_whitespace: bool,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `input` with default options.
    pub fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            keep_whitespace: false,
        }
    }

    /// Keep whitespace-only text nodes instead of dropping them.
    pub fn preserve_whitespace(mut self) -> Self {
        self.keep_whitespace = true;
        self
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.input, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else if self.pos >= self.bytes.len() {
            Err(self.err(XmlErrorKind::UnexpectedEof))
        } else {
            Err(self.err(XmlErrorKind::Malformed(format!("expected `{s}`"))))
        }
    }

    fn read_until(&mut self, delim: &str, what: &str) -> Result<&'a str, XmlError> {
        match self.input[self.pos..].find(delim) {
            Some(rel) => {
                let s = &self.input[self.pos..self.pos + rel];
                self.pos += rel + delim.len();
                Ok(s)
            }
            None => {
                self.pos = self.bytes.len();
                Err(self.err(XmlErrorKind::Malformed(format!("unterminated {what}"))))
            }
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn read_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => self.pos += 1,
            Some(_) => return Err(self.err(XmlErrorKind::Malformed("name".into()))),
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.pos += 1;
        }
        Ok(&self.input[start..self.pos])
    }

    /// Runs the parse to completion.
    pub fn parse(mut self) -> Result<Document, XmlError> {
        let mut doc = Document::new();
        // Prolog: XML declaration, comments, PIs, optional DOCTYPE.
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.pos += 5;
            self.read_until("?>", "XML declaration")?;
        }
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                let text = self.read_until("-->", "comment")?;
                doc.push_comment(Document::ROOT, text);
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                self.parse_pi(&mut doc, Document::ROOT)?;
            } else {
                break;
            }
        }
        if self.peek() != Some(b'<') {
            return Err(self.err(XmlErrorKind::NoRootElement));
        }
        self.parse_element(&mut doc, Document::ROOT)?;
        // Epilog: only whitespace, comments and PIs may follow.
        loop {
            self.skip_ws();
            match self.peek() {
                None => break,
                Some(b'<') if self.starts_with("<!--") => {
                    self.pos += 4;
                    let text = self.read_until("-->", "comment")?;
                    doc.push_comment(Document::ROOT, text);
                }
                Some(b'<') if self.starts_with("<?") => {
                    self.parse_pi(&mut doc, Document::ROOT)?;
                }
                Some(b'<') => return Err(self.err(XmlErrorKind::MultipleRoots)),
                Some(_) => return Err(self.err(XmlErrorKind::TrailingContent)),
            }
        }
        Ok(doc)
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // Skip to the matching '>' allowing one level of [...] internal
        // subset (entities inside it are not processed).
        self.pos += "<!DOCTYPE".len();
        let mut depth = 0i32;
        loop {
            match self.peek() {
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
                Some(b'[') => {
                    depth += 1;
                    self.pos += 1;
                }
                Some(b']') => {
                    depth -= 1;
                    self.pos += 1;
                }
                Some(b'>') if depth <= 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_pi(&mut self, doc: &mut Document, parent: NodeId) -> Result<(), XmlError> {
        self.expect("<?")?;
        let target = self.read_name()?.to_string();
        self.skip_ws();
        let data = self.read_until("?>", "processing instruction")?;
        doc.push_pi(parent, &target, data.trim_end());
        Ok(())
    }

    /// Parses one element (the cursor sits on `<`). Iterative, with an
    /// explicit open-element stack, so arbitrarily deep documents cannot
    /// overflow the call stack.
    fn parse_element(&mut self, doc: &mut Document, parent: NodeId) -> Result<(), XmlError> {
        let mut stack: Vec<(NodeId, String)> = Vec::new();
        let mut current = parent;
        let mut text = String::new();

        macro_rules! flush_text {
            () => {
                if !text.is_empty() {
                    if self.keep_whitespace || !text.chars().all(char::is_whitespace) {
                        doc.push_text(current, &text);
                    }
                    text.clear();
                }
            };
        }

        loop {
            match self.peek() {
                None => {
                    return if stack.is_empty() {
                        Err(self.err(XmlErrorKind::NoRootElement))
                    } else {
                        Err(self.err(XmlErrorKind::UnexpectedEof))
                    }
                }
                Some(b'<') if self.starts_with("<!--") => {
                    flush_text!();
                    self.pos += 4;
                    let c = self.read_until("-->", "comment")?;
                    doc.push_comment(current, c);
                }
                Some(b'<') if self.starts_with("<![CDATA[") => {
                    self.pos += 9;
                    let c = self.read_until("]]>", "CDATA section")?;
                    text.push_str(c);
                }
                Some(b'<') if self.starts_with("<?") => {
                    flush_text!();
                    self.parse_pi(doc, current)?;
                }
                Some(b'<') if self.starts_with("</") => {
                    flush_text!();
                    self.pos += 2;
                    let name = self.read_name()?;
                    self.skip_ws();
                    self.expect(">")?;
                    let (_, open_name) = stack.pop().ok_or_else(|| {
                        self.err(XmlErrorKind::Malformed("close tag without open tag".into()))
                    })?;
                    if open_name != name {
                        return Err(self.err(XmlErrorKind::MismatchedTag {
                            expected: open_name,
                            found: name.to_string(),
                        }));
                    }
                    current = match stack.last() {
                        Some((id, _)) => *id,
                        None => return Ok(()),
                    };
                }
                Some(b'<') => {
                    flush_text!();
                    self.pos += 1;
                    let name = self.read_name()?.to_string();
                    let elem = doc.push_element(current, &name);
                    // Attributes.
                    loop {
                        self.skip_ws();
                        match self.peek() {
                            Some(b'>') => {
                                self.pos += 1;
                                stack.push((elem, name));
                                current = elem;
                                break;
                            }
                            Some(b'/') => {
                                self.pos += 1;
                                self.expect(">")?;
                                if stack.is_empty() {
                                    return Ok(());
                                }
                                break;
                            }
                            Some(b) if Self::is_name_start(b) => {
                                let aname = self.read_name()?.to_string();
                                self.skip_ws();
                                self.expect("=")?;
                                self.skip_ws();
                                let quote = match self.peek() {
                                    Some(q @ (b'"' | b'\'')) => q,
                                    _ => {
                                        return Err(self.err(XmlErrorKind::Malformed(
                                            "attribute value".into(),
                                        )))
                                    }
                                };
                                self.pos += 1;
                                let raw_start = self.pos;
                                let raw = self.read_until(
                                    if quote == b'"' { "\"" } else { "'" },
                                    "attribute value",
                                )?;
                                let mut val = String::with_capacity(raw.len());
                                unescape_into(raw, &mut val, self.input, raw_start)?;
                                doc.push_attribute(elem, &aname, &val);
                            }
                            Some(_) => {
                                return Err(self.err(XmlErrorKind::Malformed("start tag".into())))
                            }
                            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
                        }
                    }
                }
                Some(_) => {
                    // Character data up to the next '<'.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'<')) {
                        self.pos += 1;
                    }
                    if stack.is_empty() {
                        // Text before the root element.
                        let chunk = &self.input[start..self.pos];
                        if chunk.chars().all(char::is_whitespace) {
                            continue;
                        }
                        self.pos = start;
                        return Err(self.err(XmlErrorKind::Malformed("text outside root".into())));
                    }
                    unescape_into(&self.input[start..self.pos], &mut text, self.input, start)?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NodeKind;

    #[test]
    fn parses_nested_elements_and_text() {
        let doc = parse("<person><name>Yung Flach</name></person>").unwrap();
        let person = doc.root_element().unwrap();
        let name = doc.first_child(person).unwrap();
        assert_eq!(doc.name(name), Some("name"));
        assert_eq!(doc.string_value(name), "Yung Flach");
    }

    #[test]
    fn parses_attributes_with_both_quote_styles() {
        let doc = parse(r#"<watch open_auction="oa108" id='w1'/>"#).unwrap();
        let w = doc.root_element().unwrap();
        assert_eq!(doc.attribute(w, "open_auction"), Some("oa108"));
        assert_eq!(doc.attribute(w, "id"), Some("w1"));
    }

    #[test]
    fn self_closing_root() {
        let doc = parse("<empty/>").unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("empty"));
        assert_eq!(doc.children(doc.root_element().unwrap()).count(), 0);
    }

    #[test]
    fn xml_declaration_and_doctype_skipped() {
        let doc =
            parse("<?xml version=\"1.0\"?><!DOCTYPE site [ <!ELEMENT a (b)> ]><site/>").unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("site"));
    }

    #[test]
    fn entities_in_text_and_attributes() {
        let doc = parse(r#"<a b="x &amp; y">1 &lt; 2</a>"#).unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.attribute(a, "b"), Some("x & y"));
        assert_eq!(doc.string_value(a), "1 < 2");
    }

    #[test]
    fn cdata_is_text() {
        let doc = parse("<a><![CDATA[<not&markup>]]></a>").unwrap();
        assert_eq!(
            doc.string_value(doc.root_element().unwrap()),
            "<not&markup>"
        );
    }

    #[test]
    fn comments_and_pis_are_nodes() {
        let doc = parse("<a><!-- hi --><?php run?></a>").unwrap();
        let a = doc.root_element().unwrap();
        let kids: Vec<_> = doc.children(a).collect();
        assert_eq!(kids.len(), 2);
        assert!(matches!(doc.kind(kids[0]), NodeKind::Comment { .. }));
        assert!(matches!(
            doc.kind(kids[1]),
            NodeKind::ProcessingInstruction { .. }
        ));
    }

    #[test]
    fn whitespace_only_text_dropped_by_default() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.children(a).count(), 1);
    }

    #[test]
    fn whitespace_preserved_when_asked() {
        let doc = Parser::new("<a>\n  <b/>\n</a>")
            .preserve_whitespace()
            .parse()
            .unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.children(a).count(), 3);
    }

    #[test]
    fn mismatched_tag_reports_names() {
        let err = parse("<a><b></a></b>").unwrap_err();
        match err.kind {
            XmlErrorKind::MismatchedTag { expected, found } => {
                assert_eq!(expected, "b");
                assert_eq!(found, "a");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn unterminated_document_is_eof() {
        let err = parse("<a><b>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn multiple_roots_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::MultipleRoots);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(parse("").unwrap_err().kind, XmlErrorKind::NoRootElement);
        assert_eq!(parse("   ").unwrap_err().kind, XmlErrorKind::NoRootElement);
    }

    #[test]
    fn deeply_nested_document_does_not_overflow() {
        let depth = 200_000;
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<d>");
        }
        for _ in 0..depth {
            s.push_str("</d>");
        }
        let doc = parse(&s).unwrap();
        assert_eq!(doc.len(), depth + 1);
    }

    #[test]
    fn comment_in_prolog_attaches_to_document() {
        let doc = parse("<!-- license --><a/>").unwrap();
        let kids: Vec<_> = doc.children(Document::ROOT).collect();
        assert_eq!(kids.len(), 2);
        assert!(matches!(doc.kind(kids[0]), NodeKind::Comment { .. }));
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(parse("hello<a/>").is_err());
    }

    #[test]
    fn unknown_entity_rejected_with_position() {
        let err = parse("<a>&bogus;</a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnknownEntity(_)));
        assert_eq!(err.line, 1);
    }
}
