//! # vamana-xml
//!
//! A small, dependency-free XML substrate for the VAMANA XPath engine.
//!
//! The crate provides:
//!
//! * an arena-based [`Document`] model ([`model`]) with cheap node ids and
//!   sibling/child/parent navigation,
//! * a non-validating pull [`parser`] sufficient for XMark-style documents
//!   (elements, attributes, character data, CDATA, comments, processing
//!   instructions, the five predefined entities and numeric character
//!   references — no DTD processing),
//! * entity [`escape`] helpers, and
//! * a [`writer`] that serializes a document back to text.
//!
//! The parser intentionally favors predictable, linear-time behavior over
//! full XML 1.0 conformance: VAMANA loads documents once into the MASS
//! storage structure and never re-parses, so the parser is a loading tool,
//! not a query-time component.
//!
//! ```
//! use vamana_xml::parse;
//!
//! let doc = parse("<person id='p1'><name>Yung Flach</name></person>").unwrap();
//! let root = doc.root_element().unwrap();
//! assert_eq!(doc.name(root), Some("person"));
//! ```

pub mod error;
pub mod escape;
pub mod model;
pub mod parser;
pub mod writer;

pub use error::{XmlError, XmlErrorKind};
pub use model::{Document, NodeId, NodeKind};
pub use parser::{parse, Parser};
pub use writer::{write_document, WriteOptions};
