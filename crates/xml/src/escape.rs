//! Entity escaping and unescaping for XML character data and attributes.

use crate::error::{XmlError, XmlErrorKind};

/// Escapes `text` for use as XML character data (`&`, `<`, `>`).
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escapes `text` for use inside a double-quoted attribute value.
pub fn escape_attr(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Resolves the five predefined entities and numeric character references in
/// `raw`, appending the result to `out`.
///
/// `input`/`base` are used only for error positions.
pub(crate) fn unescape_into(
    raw: &str,
    out: &mut String,
    input: &str,
    base: usize,
) -> Result<(), XmlError> {
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the longest run without '&' in one shot.
            let start = i;
            while i < bytes.len() && bytes[i] != b'&' {
                i += 1;
            }
            out.push_str(&raw[start..i]);
            continue;
        }
        let semi = raw[i..].find(';').map(|p| i + p).ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::Malformed("entity reference".into()),
                input,
                base + i,
            )
        })?;
        let name = &raw[i + 1..semi];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16).map_err(|_| {
                    XmlError::new(
                        XmlErrorKind::UnknownEntity(name.to_string()),
                        input,
                        base + i,
                    )
                })?;
                out.push(char::from_u32(cp).ok_or_else(|| {
                    XmlError::new(
                        XmlErrorKind::UnknownEntity(name.to_string()),
                        input,
                        base + i,
                    )
                })?);
            }
            _ if name.starts_with('#') => {
                let cp = name[1..].parse::<u32>().map_err(|_| {
                    XmlError::new(
                        XmlErrorKind::UnknownEntity(name.to_string()),
                        input,
                        base + i,
                    )
                })?;
                out.push(char::from_u32(cp).ok_or_else(|| {
                    XmlError::new(
                        XmlErrorKind::UnknownEntity(name.to_string()),
                        input,
                        base + i,
                    )
                })?);
            }
            _ => {
                return Err(XmlError::new(
                    XmlErrorKind::UnknownEntity(name.to_string()),
                    input,
                    base + i,
                ))
            }
        }
        i = semi + 1;
    }
    Ok(())
}

/// Resolves predefined entities and numeric character references.
pub fn unescape(raw: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(raw.len());
    unescape_into(raw, &mut out, raw, 0)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_covers_markup_chars() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn escape_attr_covers_quotes() {
        assert_eq!(escape_attr(r#"a"b'c"#), "a&quot;b&apos;c");
    }

    #[test]
    fn unescape_predefined_entities() {
        assert_eq!(unescape("&lt;&gt;&amp;&quot;&apos;").unwrap(), "<>&\"'");
    }

    #[test]
    fn unescape_decimal_and_hex_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        assert!(unescape("&nbsp;").is_err());
    }

    #[test]
    fn unescape_rejects_unterminated_reference() {
        assert!(unescape("&amp").is_err());
    }

    #[test]
    fn unescape_rejects_out_of_range_codepoint() {
        assert!(unescape("&#x110000;").is_err());
    }

    #[test]
    fn round_trip_text() {
        let original = "price < 10 & \"quoted\"";
        assert_eq!(unescape(&escape_attr(original)).unwrap(), original);
    }

    #[test]
    fn unescape_plain_text_is_identity() {
        assert_eq!(unescape("hello world").unwrap(), "hello world");
    }
}
