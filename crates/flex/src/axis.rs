//! The 13 XPath axes as structural relations over FLEX keys.
//!
//! The enum lives in this crate because an axis *is* a key relation:
//! every layer of the stack (MASS cursors, the VAMANA physical algebra,
//! the baseline engines, the XPath parser) shares this vocabulary.

use std::fmt;

/// An XPath axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child`
    Child,
    /// `descendant`
    Descendant,
    /// `descendant-or-self`
    DescendantOrSelf,
    /// `parent`
    Parent,
    /// `ancestor`
    Ancestor,
    /// `ancestor-or-self`
    AncestorOrSelf,
    /// `following`
    Following,
    /// `following-sibling`
    FollowingSibling,
    /// `preceding`
    Preceding,
    /// `preceding-sibling`
    PrecedingSibling,
    /// `self`
    SelfAxis,
    /// `attribute`
    Attribute,
    /// `namespace`
    Namespace,
}

impl Axis {
    /// All 13 axes, for exhaustive tests.
    pub const ALL: [Axis; 13] = [
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::Parent,
        Axis::Ancestor,
        Axis::AncestorOrSelf,
        Axis::Following,
        Axis::FollowingSibling,
        Axis::Preceding,
        Axis::PrecedingSibling,
        Axis::SelfAxis,
        Axis::Attribute,
        Axis::Namespace,
    ];

    /// True for the XPath *reverse* axes (context position counts
    /// backwards from the context node).
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::Preceding
                | Axis::PrecedingSibling
        )
    }

    /// The axis name as written in XPath.
    pub fn as_str(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Following => "following",
            Axis::FollowingSibling => "following-sibling",
            Axis::Preceding => "preceding",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
            Axis::Namespace => "namespace",
        }
    }

    /// Parses an axis name (`following-sibling`, ...).
    pub fn parse(s: &str) -> Option<Axis> {
        Axis::ALL.iter().copied().find(|a| a.as_str() == s)
    }

    /// Whether attribute nodes are the *principal node kind* of the axis
    /// (only the `attribute` axis): a bare name test selects attributes
    /// there and elements everywhere else.
    pub fn principal_is_attribute(self) -> bool {
        self == Axis::Attribute
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_thirteen_distinct_axes() {
        assert_eq!(Axis::ALL.len(), 13);
        let mut names: Vec<_> = Axis::ALL.iter().map(|a| a.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn parse_round_trips() {
        for axis in Axis::ALL {
            assert_eq!(Axis::parse(axis.as_str()), Some(axis));
        }
        assert_eq!(Axis::parse("sideways"), None);
    }

    #[test]
    fn reverse_axes_are_exactly_five() {
        let reverse: Vec<_> = Axis::ALL.iter().filter(|a| a.is_reverse()).collect();
        assert_eq!(reverse.len(), 5);
        assert!(Axis::Preceding.is_reverse());
        assert!(!Axis::Following.is_reverse());
        assert!(!Axis::SelfAxis.is_reverse());
    }

    #[test]
    fn principal_node_kind() {
        assert!(Axis::Attribute.principal_is_attribute());
        assert!(!Axis::Child.principal_is_attribute());
    }
}
