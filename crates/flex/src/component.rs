//! Label allocation: sequential element/text labels, attribute labels,
//! and insert-between labels.
//!
//! A *label* is one component of a FLEX key: a non-empty byte string over
//! the alphabet `1..=255`. The allocators here maintain two global
//! invariants that [`label_between`] relies on:
//!
//! * no label ever contains byte `0x00` (it is the flat-key terminator);
//! * no label ever *ends* with byte `0x01` (digit `1` is the headroom
//!   digit reserved for insertions, so `b == a ++ [1]` never occurs and a
//!   label strictly between any two distinct labels always exists).

use std::fmt;

/// Error raised when a label cannot be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelError {
    /// The sibling ordinal exceeds the allocator's capacity
    /// (more than ~2⁶⁰ siblings).
    Overflow,
    /// `label_between` was called with `lo >= hi`.
    NotBetween,
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::Overflow => write!(f, "sibling label space exhausted"),
            LabelError::NotBetween => write!(f, "label_between requires lo < hi"),
        }
    }
}

impl std::error::Error for LabelError {}

/// Number of digits available per position in multi-byte labels
/// (digits `2..=255`).
const RADIX: u64 = 254;
/// Smallest digit used by sequential allocation.
const DIGIT0: u8 = 2;

/// Length groups for sequential element labels: `(first_byte_base,
/// first_byte_count, trailing_digits)`. First bytes increase across groups
/// so longer labels always sort after all shorter ones.
const GROUPS: [(u8, u64, u32); 5] = [
    (0x40, 63, 0), // 1-byte labels: 0x40..=0x7E
    (0x80, 63, 1), // 2-byte labels: 0x80..=0xBE + digit
    (0xC0, 31, 2), // 3-byte labels
    (0xE0, 15, 3), // 4-byte labels
    (0xF0, 7, 4),  // 5-byte labels: capacity 7 * 254^4 ≈ 2.9e10
];

/// Capacity of group `g` in labels.
fn group_capacity(g: usize) -> u64 {
    let (_, count, digits) = GROUPS[g];
    count * RADIX.pow(digits)
}

/// Returns the `i`-th sequential element label (0-based sibling ordinal).
///
/// Labels are strictly increasing in `i` under byte-wise comparison and
/// mutually prefix-free. The first 63 siblings get one-byte labels; the
/// next ~16k two bytes, and so on.
///
/// # Panics
/// Panics if `i` exceeds the total capacity (~2.9 × 10¹⁰ siblings); use
/// [`try_seq_label`] to handle that case.
pub fn seq_label(i: u64) -> Vec<u8> {
    try_seq_label(i).expect("sibling ordinal out of range")
}

/// Fallible variant of [`seq_label`].
pub fn try_seq_label(mut i: u64) -> Result<Vec<u8>, LabelError> {
    for (g, &(base, _count, digits)) in GROUPS.iter().enumerate() {
        let cap = group_capacity(g);
        if i < cap {
            let per_first = RADIX.pow(digits);
            let mut label = Vec::with_capacity(1 + digits as usize);
            label.push(base + (i / per_first) as u8);
            let mut rem = i % per_first;
            // Most-significant digit first keeps byte order == numeric order.
            for d in (0..digits).rev() {
                let p = RADIX.pow(d);
                label.push(DIGIT0 + (rem / p) as u8);
                rem %= p;
            }
            return Ok(label);
        }
        i -= cap;
    }
    Err(LabelError::Overflow)
}

/// Attribute-label groups: first bytes `0x04..` sort *below* every element
/// label (those start at `0x40`), so an element's attributes cluster
/// between the element's own key and its first non-attribute child.
const ATTR_GROUPS: [(u8, u64, u32); 3] = [
    (0x04, 58, 0), // 1-byte: 0x04..=0x3D
    (0x3E, 1, 1),  // 2-byte: 0x3E + digit
    (0x3F, 1, 2),  // 3-byte: 0x3F + 2 digits
];

/// Returns the `i`-th attribute label for an element.
///
/// # Panics
/// Panics past ~65k attributes on one element; use [`try_attr_label`].
pub fn attr_label(i: u64) -> Vec<u8> {
    try_attr_label(i).expect("attribute ordinal out of range")
}

/// Fallible variant of [`attr_label`].
pub fn try_attr_label(mut i: u64) -> Result<Vec<u8>, LabelError> {
    for &(base, count, digits) in ATTR_GROUPS.iter() {
        let per_first = RADIX.pow(digits);
        let cap = count * per_first;
        if i < cap {
            let mut label = Vec::with_capacity(1 + digits as usize);
            label.push(base + (i / per_first) as u8);
            let mut rem = i % per_first;
            for d in (0..digits).rev() {
                let p = RADIX.pow(d);
                label.push(DIGIT0 + (rem / p) as u8);
                rem %= p;
            }
            return Ok(label);
        }
        i -= cap;
    }
    Err(LabelError::Overflow)
}

/// Returns a label strictly between `lo` and `hi` (byte-wise), for
/// inserting a new sibling between two existing ones without relabeling.
///
/// Preconditions (maintained by every allocator in this crate): `lo < hi`,
/// neither contains `0x00`, and `hi != lo ++ [1]`. The result never ends
/// in `0x00` or `0x01`, keeping the invariant alive for future inserts.
pub fn label_between(lo: &[u8], hi: &[u8]) -> Result<Vec<u8>, LabelError> {
    if lo >= hi {
        return Err(LabelError::NotBetween);
    }
    // Find the first position where the labels differ.
    let common = lo.iter().zip(hi.iter()).take_while(|(a, b)| a == b).count();
    if common == lo.len() {
        // `lo` is a strict prefix of `hi`.
        let rest = &hi[common..];
        debug_assert!(!rest.is_empty());
        let mut out = lo.to_vec();
        if rest[0] >= 3 {
            // Room below hi's next byte: take its midpoint, which for
            // rest[0] >= 3 is always in 2..rest[0].
            out.push(rest[0] / 2 + 1);
            debug_assert!(out[common] >= 2 && out[common] < rest[0]);
        } else {
            // rest[0] is 1 or 2: descend below it with the reserved digit 1
            // and terminate with a mid digit. [1, 0x80] < [2] and < [1, x..]
            // is not guaranteed, so recurse on the tail when rest[0] == 1.
            if rest[0] == 2 {
                out.push(1);
                out.push(0x80);
            } else {
                // hi extends lo with digit 1: need tail strictly below
                // rest[1..]; the invariant says rest has more bytes
                // (labels never end in 1).
                debug_assert!(rest.len() >= 2, "label ended in reserved digit 1");
                out.push(1);
                let tail = label_between(&[], &rest[1..])?;
                out.extend_from_slice(&tail);
            }
        }
        Ok(out)
    } else {
        let mut out = lo[..common].to_vec();
        let (a, b) = (lo[common], hi[common]);
        if b - a >= 2 {
            out.push(a + (b - a) / 2);
        } else {
            // Adjacent bytes: keep lo's byte and grow past lo's tail.
            out.push(a);
            out.extend_from_slice(&lo[common + 1..]);
            out.push(0x80);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn seq_labels_strictly_increase() {
        let mut prev = seq_label(0);
        for i in 1..40_000u64 {
            let cur = seq_label(i);
            assert!(prev < cur, "label {i} not increasing: {prev:?} !< {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn seq_labels_cross_group_boundaries() {
        // 1-byte group holds 63 labels.
        assert_eq!(seq_label(62).len(), 1);
        assert_eq!(seq_label(63).len(), 2);
        let two_byte_cap = 63 + 63 * 254;
        assert_eq!(seq_label(two_byte_cap - 1).len(), 2);
        assert_eq!(seq_label(two_byte_cap).len(), 3);
    }

    #[test]
    fn seq_labels_are_prefix_free_near_boundaries() {
        let labels: Vec<_> = (0..2000u64).map(seq_label).collect();
        for w in labels.windows(2) {
            assert!(!w[1].starts_with(&w[0]), "{:?} prefixes {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn labels_never_contain_zero_or_end_in_one() {
        for i in (0..300_000u64).step_by(37) {
            let l = seq_label(i);
            assert!(!l.contains(&0), "{l:?}");
            assert_ne!(*l.last().unwrap(), 1, "{l:?}");
        }
    }

    #[test]
    fn attr_labels_sort_below_element_labels() {
        let a = attr_label(0);
        let e = seq_label(0);
        assert!(a < e);
        let a_last = attr_label(58 + 254 + 254 * 254 - 1);
        assert!(a_last < e, "{a_last:?} vs {e:?}");
    }

    #[test]
    fn attr_labels_strictly_increase() {
        let mut prev = attr_label(0);
        for i in 1..5_000u64 {
            let cur = attr_label(i);
            assert!(prev < cur);
            prev = cur;
        }
    }

    #[test]
    fn allocators_overflow_gracefully() {
        assert_eq!(try_seq_label(u64::MAX), Err(LabelError::Overflow));
        assert_eq!(try_attr_label(u64::MAX), Err(LabelError::Overflow));
    }

    #[test]
    fn between_adjacent_seq_labels() {
        for i in 0..500u64 {
            let lo = seq_label(i);
            let hi = seq_label(i + 1);
            let mid = label_between(&lo, &hi).unwrap();
            assert!(lo < mid && mid < hi, "{lo:?} {mid:?} {hi:?}");
        }
    }

    #[test]
    fn between_is_repeatable_downwards() {
        // Insert 100 labels between two originally adjacent ones.
        let lo = seq_label(5);
        let mut hi = seq_label(6);
        for _ in 0..100 {
            let mid = label_between(&lo, &hi).unwrap();
            assert!(lo < mid && mid < hi);
            hi = mid;
        }
    }

    #[test]
    fn between_is_repeatable_upwards() {
        let mut lo = seq_label(5);
        let hi = seq_label(6);
        for _ in 0..100 {
            let mid = label_between(&lo, &hi).unwrap();
            assert!(lo < mid && mid < hi);
            lo = mid;
        }
    }

    #[test]
    fn between_rejects_unordered_input() {
        assert_eq!(label_between(&[5], &[5]), Err(LabelError::NotBetween));
        assert_eq!(label_between(&[6], &[5]), Err(LabelError::NotBetween));
    }

    #[test]
    fn between_before_first_label() {
        // Insert before the first element label (empty lo prefix is not a
        // valid label, but attr/element boundary gives room).
        let mid = label_between(&attr_label(0), &seq_label(0)).unwrap();
        assert!(attr_label(0) < mid && mid < seq_label(0));
    }

    proptest! {
        #[test]
        fn prop_between_any_two_seq_labels(i in 0u64..100_000, j in 0u64..100_000) {
            prop_assume!(i != j);
            let (lo, hi) = if i < j { (seq_label(i), seq_label(j)) } else { (seq_label(j), seq_label(i)) };
            let mid = label_between(&lo, &hi).unwrap();
            prop_assert!(lo < mid && mid < hi);
            prop_assert!(!mid.contains(&0));
            prop_assert_ne!(*mid.last().unwrap(), 1);
        }

        #[test]
        fn prop_between_nested_inserts(seed in 0u64..1_000, steps in 1usize..40, dir in proptest::collection::vec(any::<bool>(), 40)) {
            let mut lo = seq_label(seed);
            let mut hi = seq_label(seed + 1);
            for &go_up in dir.iter().take(steps) {
                let mid = label_between(&lo, &hi).unwrap();
                prop_assert!(lo < mid && mid < hi);
                prop_assert_ne!(*mid.last().unwrap(), 1);
                if go_up { lo = mid } else { hi = mid }
            }
        }

        #[test]
        fn prop_seq_order_matches_ordinal(i in 0u64..1_000_000, j in 0u64..1_000_000) {
            let (li, lj) = (seq_label(i), seq_label(j));
            prop_assert_eq!(i.cmp(&j), li.cmp(&lj));
        }
    }
}
