//! # vamana-flex
//!
//! Fast Lexicographical Keys (FLEX) — the structural encoding MASS uses for
//! every node of an XML document (Deschler & Rundensteiner, CIKM 2003).
//!
//! A FLEX key is a sequence of *labels*, one per tree level (the paper
//! renders them as `a.d.y.c.a`). The encoding has three properties that the
//! whole VAMANA stack builds on:
//!
//! 1. **Order isomorphism** — comparing two keys byte-wise (in their flat
//!    encoding) is exactly document order, with ancestors ordering before
//!    their descendants.
//! 2. **Key arithmetic** — `parent`, `is_ancestor_of`, and the scan ranges
//!    for every XPath axis (`subtree_range`, `following_range`, ...) are
//!    computed from the key alone, without touching stored data.
//! 3. **Update friendliness** — a new sibling can always be labeled
//!    *between* two existing siblings ([`label_between`]) without
//!    relabeling any other node.
//!
//! ## Flat encoding
//!
//! Each label is a non-empty byte string over the alphabet `1..=255`
//! (byte `0` is the component terminator). Keys are stored flattened:
//! `label₁ 0x00 label₂ 0x00 …`. Because labels never contain `0x00`,
//! plain `memcmp` over flat keys yields document order: a terminator
//! (`0x00`) sorts before any label byte, so an ancestor (whose flat key is
//! a strict prefix) sorts immediately before its subtree.
//!
//! ## Label alphabets
//!
//! * Sequentially allocated **element labels** ([`seq_label`]) use digits
//!   `2..=255` and length-grouped first bytes (`0x40..`, `0x80..`, ...) so
//!   that any count of siblings stays order-correct and prefix-free.
//! * **Attribute labels** ([`attr_label`]) use first bytes `0x04..=0x3F`,
//!   below every element label, so attributes cluster directly after their
//!   owning element and before its element/text children — the MASS layout
//!   that makes attribute lookups a one-seek operation.
//! * Digit `1` is reserved for [`label_between`], which guarantees a free
//!   slot between any two distinct labels produced by this crate.
//!
//! ```
//! use vamana_flex::{FlexKey, seq_label};
//!
//! let root = FlexKey::root().child(&seq_label(0));
//! let name = root.child(&seq_label(0));
//! let email = root.child(&seq_label(1));
//! assert!(name < email);                 // document order
//! assert!(root.is_ancestor_of(&name));
//! assert_eq!(name.parent().unwrap(), root);
//! ```

#![deny(missing_docs)]

pub mod axis;
pub mod component;
pub mod generate;
pub mod key;
pub mod range;

pub use axis::Axis;
pub use component::{attr_label, label_between, seq_label, LabelError};
pub use generate::KeyGenerator;
pub use key::FlexKey;
pub use range::KeyRange;
