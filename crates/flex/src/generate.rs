//! Bulk key generation for document loading.
//!
//! [`KeyGenerator`] assigns FLEX keys to a document walked in pre-order:
//! the loader calls [`KeyGenerator::open_element`] / `close_element` /
//! `attribute` / `leaf` as it traverses, and gets back document-order keys
//! without having to track sibling ordinals itself.

use crate::component::{attr_label, seq_label};
use crate::key::FlexKey;

/// Stateful pre-order key allocator.
#[derive(Debug)]
pub struct KeyGenerator {
    /// Current path; each frame holds (key, next child ordinal, next attr
    /// ordinal).
    stack: Vec<Frame>,
}

#[derive(Debug)]
struct Frame {
    key: FlexKey,
    next_child: u64,
    next_attr: u64,
}

impl Default for KeyGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyGenerator {
    /// A generator positioned at the document node.
    pub fn new() -> Self {
        KeyGenerator {
            stack: vec![Frame {
                key: FlexKey::root(),
                next_child: 0,
                next_attr: 0,
            }],
        }
    }

    /// Key of the node currently open (the document node initially).
    pub fn current(&self) -> &FlexKey {
        &self
            .stack
            .last()
            .expect("document frame always present")
            .key
    }

    /// Current nesting depth (document node = 0).
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    /// Opens a child element/subtree and returns its key. Subsequent calls
    /// allocate under it until [`KeyGenerator::close_element`].
    pub fn open_element(&mut self) -> FlexKey {
        let key = self.alloc_child();
        self.stack.push(Frame {
            key: key.clone(),
            next_child: 0,
            next_attr: 0,
        });
        key
    }

    /// Closes the current element.
    ///
    /// # Panics
    /// Panics if only the document frame remains.
    pub fn close_element(&mut self) {
        assert!(self.stack.len() > 1, "close_element without open_element");
        self.stack.pop();
    }

    /// Allocates a key for a leaf child (text, comment, PI) of the current
    /// element.
    pub fn leaf(&mut self) -> FlexKey {
        self.alloc_child()
    }

    /// Allocates a key for an attribute of the current element. Attribute
    /// keys sort after the element and before all its other children.
    pub fn attribute(&mut self) -> FlexKey {
        let frame = self.stack.last_mut().expect("document frame");
        let label = attr_label(frame.next_attr);
        frame.next_attr += 1;
        frame.key.child(&label)
    }

    fn alloc_child(&mut self) -> FlexKey {
        let frame = self.stack.last_mut().expect("document frame");
        let label = seq_label(frame.next_child);
        frame.next_child += 1;
        frame.key.child(&label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preorder_walk_yields_increasing_keys() {
        let mut g = KeyGenerator::new();
        let mut keys = Vec::new();
        let site = g.open_element();
        keys.push(site);
        for _ in 0..3 {
            let person = g.open_element();
            keys.push(person.clone());
            keys.push(g.attribute()); // id
            let name = g.open_element();
            keys.push(name);
            keys.push(g.leaf()); // text
            g.close_element();
            g.close_element();
        }
        g.close_element();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn attribute_sorts_between_element_and_children() {
        let mut g = KeyGenerator::new();
        let person = g.open_element();
        let id = g.attribute();
        let name = g.open_element();
        g.close_element();
        g.close_element();
        assert!(person < id);
        assert!(id < name);
        assert!(person.is_parent_of(&id));
        assert!(person.is_parent_of(&name));
    }

    #[test]
    fn siblings_after_nested_subtree_still_increase() {
        let mut g = KeyGenerator::new();
        let _root = g.open_element();
        let a = g.open_element();
        let deep = g.open_element();
        g.close_element();
        g.close_element();
        let b = g.open_element();
        g.close_element();
        g.close_element();
        assert!(a < deep && deep < b);
        assert!(a.is_sibling_of(&b));
    }

    #[test]
    fn depth_tracks_stack() {
        let mut g = KeyGenerator::new();
        assert_eq!(g.depth(), 0);
        g.open_element();
        assert_eq!(g.depth(), 1);
        g.open_element();
        assert_eq!(g.depth(), 2);
        g.close_element();
        assert_eq!(g.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "close_element")]
    fn close_at_document_level_panics() {
        KeyGenerator::new().close_element();
    }

    #[test]
    fn current_returns_open_element_key() {
        let mut g = KeyGenerator::new();
        assert!(g.current().is_root());
        let e = g.open_element();
        assert_eq!(g.current(), &e);
    }
}
