//! Flat-key scan ranges for the XPath axes.
//!
//! MASS evaluates axes as bounded scans over the clustered (document-order)
//! index. [`KeyRange`] captures one such scan: a half-open interval over
//! flat key encodings. The constructors here turn a context key into the
//! tightest interval that *contains* the axis result; kind/level filtering
//! (e.g. excluding attribute nodes from `child`) happens in the cursor.

use crate::key::FlexKey;

/// A half-open interval `[lo, hi)` over flat key encodings.
/// `hi == None` means unbounded above (to the end of the document index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower bound (flat encoding).
    pub lo: Vec<u8>,
    /// Exclusive upper bound, or `None` for "end of index".
    pub hi: Option<Vec<u8>>,
}

impl KeyRange {
    /// The full index: every node of every document.
    pub fn all() -> Self {
        KeyRange {
            lo: Vec::new(),
            hi: None,
        }
    }

    /// An empty range.
    pub fn empty() -> Self {
        KeyRange {
            lo: vec![0],
            hi: Some(vec![0]),
        }
    }

    /// True if `flat` falls inside the range.
    pub fn contains(&self, flat: &[u8]) -> bool {
        flat >= self.lo.as_slice() && self.hi.as_ref().is_none_or(|h| flat < h.as_slice())
    }

    /// True if the range can match nothing.
    pub fn is_empty(&self) -> bool {
        self.hi
            .as_ref()
            .is_some_and(|h| h.as_slice() <= self.lo.as_slice())
    }

    /// Descendant-or-self of `ctx`: the whole subtree including `ctx`.
    pub fn subtree(ctx: &FlexKey) -> Self {
        KeyRange {
            lo: ctx.as_flat().to_vec(),
            hi: ctx.subtree_upper(),
        }
    }

    /// Strict descendants of `ctx` (subtree minus the context itself).
    ///
    /// The smallest flat key greater than `ctx` but still inside the
    /// subtree is `ctx`'s flat bytes followed by anything; since labels
    /// start at byte `0x01`, `flat ++ [0x01]` is a safe inclusive lower
    /// bound below every real child (whose label terminator follows).
    pub fn descendants(ctx: &FlexKey) -> Self {
        let mut lo = ctx.as_flat().to_vec();
        lo.push(1);
        KeyRange {
            lo,
            hi: ctx.subtree_upper(),
        }
    }

    /// Everything after `ctx`'s subtree in document order — the
    /// `following` axis (descendants excluded by construction; ancestors
    /// sort before `ctx` so they are excluded too).
    pub fn following(ctx: &FlexKey) -> Self {
        match ctx.subtree_upper() {
            Some(upper) => KeyRange {
                lo: upper,
                hi: None,
            },
            None => KeyRange::empty(), // document node: nothing follows
        }
    }

    /// Everything strictly before `ctx` in document order. This
    /// *over-approximates* the `preceding` axis: ancestors of `ctx` fall in
    /// the interval and must be filtered by the cursor.
    pub fn before(ctx: &FlexKey) -> Self {
        KeyRange {
            lo: Vec::new(),
            hi: Some(ctx.as_flat().to_vec()),
        }
    }

    /// Following siblings of `ctx`: from the end of `ctx`'s subtree to the
    /// end of the parent's subtree. Deeper nodes (nephews) fall inside and
    /// are skipped by the cursor's sibling-jump.
    pub fn following_siblings(ctx: &FlexKey) -> Self {
        let Some(parent) = ctx.parent() else {
            return KeyRange::empty();
        };
        match ctx.subtree_upper() {
            Some(upper) => KeyRange {
                lo: upper,
                hi: if parent.is_root() {
                    None
                } else {
                    parent.subtree_upper()
                },
            },
            None => KeyRange::empty(),
        }
    }

    /// Preceding siblings of `ctx` (over-approximate: contains their
    /// subtrees; the cursor jumps sibling-to-sibling).
    pub fn preceding_siblings(ctx: &FlexKey) -> Self {
        let Some(parent) = ctx.parent() else {
            return KeyRange::empty();
        };
        let mut lo = parent.as_flat().to_vec();
        lo.push(1);
        KeyRange {
            lo,
            hi: Some(ctx.as_flat().to_vec()),
        }
    }

    /// Splits the range into up to `n` contiguous, disjoint sub-ranges
    /// whose concatenation covers it exactly — the key-space proposal
    /// behind morsel-parallel scans. Returns `vec![self]` for `n <= 1`,
    /// empty ranges, and ranges unbounded above (those are partitioned
    /// from the pager's index instead, which knows where the data ends).
    ///
    /// Cut points are synthesized by interpolating between the bounds
    /// viewed as base-256 fractions, so they need not be (and usually are
    /// not) valid flat keys — they are only comparison bounds. Every
    /// interior cut is strictly inside `(lo, hi)`; adjacent sub-ranges
    /// share their boundary (`parts[i].hi == parts[i+1].lo`), the first
    /// starts at `self.lo` and the last ends at `self.hi`, so any key in
    /// the range falls in exactly one part. Fewer than `n` parts come
    /// back when the bounds are too close to fit `n - 1` distinct cuts.
    ///
    /// Even key-space cuts are *not* even data cuts: flat keys cluster
    /// near the low end of the byte space (labels are dense small
    /// values), so callers that care about balance refine the proposal
    /// against the actual key distribution (see
    /// `MassStore::partition_range` in `vamana-mass`).
    pub fn split_even(&self, n: usize) -> Vec<KeyRange> {
        if n <= 1 || self.is_empty() {
            return vec![self.clone()];
        }
        let Some(hi) = self.hi.clone() else {
            return vec![self.clone()];
        };
        let mut cuts: Vec<Vec<u8>> = (1..n)
            .filter_map(|k| interpolate(&self.lo, &hi, k as u64, n as u64))
            .collect();
        cuts.dedup();
        let mut parts = Vec::with_capacity(n);
        let mut lo = self.lo.clone();
        for cut in cuts {
            if cut.as_slice() <= lo.as_slice() || cut.as_slice() >= hi.as_slice() {
                continue;
            }
            parts.push(KeyRange {
                lo: std::mem::replace(&mut lo, cut.clone()),
                hi: Some(cut),
            });
        }
        parts.push(KeyRange { lo, hi: Some(hi) });
        parts
    }

    /// Intersects two ranges.
    pub fn intersect(&self, other: &KeyRange) -> KeyRange {
        let lo = if self.lo >= other.lo {
            self.lo.clone()
        } else {
            other.lo.clone()
        };
        let hi = match (&self.hi, &other.hi) {
            (None, None) => None,
            (Some(h), None) | (None, Some(h)) => Some(h.clone()),
            (Some(a), Some(b)) => Some(if a <= b { a.clone() } else { b.clone() }),
        };
        KeyRange { lo, hi }
    }
}

/// The point `lo + (hi - lo) * k / n`, with both byte strings read as
/// base-256 fractions in `[0, 1)` (digit `i` has weight `256^-(i+1)`;
/// absent digits are zero, matching lexicographic order on byte
/// strings). Returns `None` when `hi <= lo` as fractions or when the
/// result collapses onto `lo` (bounds too close for this precision).
///
/// Two extra digits beyond the longer bound keep the quotient exact
/// enough that `n` up to a few hundred still yields distinct cuts for
/// any bounds differing in their common-length prefix.
fn interpolate(lo: &[u8], hi: &[u8], k: u64, n: u64) -> Option<Vec<u8>> {
    debug_assert!(0 < k && k < n);
    let len = lo.len().max(hi.len()) + 2;
    let digit = |s: &[u8], i: usize| *s.get(i).unwrap_or(&0) as i64;
    // diff = hi - lo (schoolbook subtraction, right to left).
    let mut diff = vec![0u64; len];
    let mut borrow = 0i64;
    for i in (0..len).rev() {
        let mut d = digit(hi, i) - digit(lo, i) - borrow;
        borrow = if d < 0 {
            d += 256;
            1
        } else {
            0
        };
        diff[i] = d as u64;
    }
    if borrow != 0 {
        return None; // hi <= lo as fractions
    }
    // prod = diff * k; the carry off the top is the integer part, which
    // is < k < n because diff < 1.
    let mut carry = 0u64;
    for d in diff.iter_mut().rev() {
        let v = *d * k + carry;
        *d = v % 256;
        carry = v / 256;
    }
    // quot = prod / n by long division, left to right. Each digit is
    // < 256 because the running remainder stays < n.
    let mut rem = carry;
    let mut quot = vec![0u8; len];
    for (q, d) in quot.iter_mut().zip(diff.iter()) {
        let cur = rem * 256 + d;
        *q = (cur / n) as u8;
        rem = cur % n;
    }
    // cut = lo + quot (schoolbook addition). Cannot carry past the
    // integer point: lo + (hi - lo) * k / n < hi < 1.
    let mut cut = vec![0u8; len];
    let mut carry = 0i64;
    for i in (0..len).rev() {
        let v = digit(lo, i) + quot[i] as i64 + carry;
        cut[i] = (v % 256) as u8;
        carry = v / 256;
    }
    if carry != 0 {
        return None;
    }
    // Trailing zero digits don't change the fraction's value but do
    // affect lexicographic comparison ("x" < "x\0"); trim to canonical
    // form so a cut that rounded down to `lo` compares equal to it (and
    // is then discarded by the caller).
    while cut.last() == Some(&0) {
        cut.pop();
    }
    if cut.as_slice() <= lo {
        None
    } else {
        Some(cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::seq_label;
    use proptest::prelude::*;

    fn key(path: &[u64]) -> FlexKey {
        let mut k = FlexKey::root();
        for &i in path {
            k = k.child(&seq_label(i));
        }
        k
    }

    #[test]
    fn subtree_contains_self_and_descendants() {
        let ctx = key(&[0, 1]);
        let r = KeyRange::subtree(&ctx);
        assert!(r.contains(ctx.as_flat()));
        assert!(r.contains(key(&[0, 1, 5]).as_flat()));
        assert!(!r.contains(key(&[0, 2]).as_flat()));
        assert!(!r.contains(key(&[0]).as_flat()));
    }

    #[test]
    fn descendants_excludes_self() {
        let ctx = key(&[0, 1]);
        let r = KeyRange::descendants(&ctx);
        assert!(!r.contains(ctx.as_flat()));
        assert!(r.contains(key(&[0, 1, 0]).as_flat()));
        assert!(r.contains(key(&[0, 1, 0, 0]).as_flat()));
        assert!(!r.contains(key(&[0, 2]).as_flat()));
    }

    #[test]
    fn descendants_of_root_is_everything_but_root() {
        let r = KeyRange::descendants(&FlexKey::root());
        assert!(!r.contains(FlexKey::root().as_flat()));
        assert!(r.contains(key(&[0]).as_flat()));
        assert!(r.contains(key(&[500, 3]).as_flat()));
        assert_eq!(r.hi, None);
    }

    #[test]
    fn following_skips_subtree_and_ancestors() {
        let ctx = key(&[1, 1]);
        let r = KeyRange::following(&ctx);
        assert!(!r.contains(ctx.as_flat()));
        assert!(!r.contains(key(&[1, 1, 9]).as_flat())); // descendant
        assert!(!r.contains(key(&[1]).as_flat())); // ancestor
        assert!(!r.contains(key(&[0, 5]).as_flat())); // preceding
        assert!(r.contains(key(&[1, 2]).as_flat())); // following sibling
        assert!(r.contains(key(&[2]).as_flat())); // parent's sibling
        assert!(r.contains(key(&[1, 2, 0]).as_flat()));
    }

    #[test]
    fn following_of_document_node_is_empty() {
        assert!(KeyRange::following(&FlexKey::root()).is_empty());
    }

    #[test]
    fn before_contains_ancestors_which_cursor_filters() {
        let ctx = key(&[1, 1]);
        let r = KeyRange::before(&ctx);
        assert!(r.contains(key(&[1]).as_flat())); // ancestor — over-approx
        assert!(r.contains(key(&[0, 9]).as_flat())); // true preceding
        assert!(!r.contains(ctx.as_flat()));
        assert!(!r.contains(key(&[1, 2]).as_flat()));
    }

    #[test]
    fn following_siblings_bounded_by_parent() {
        let ctx = key(&[0, 1]);
        let r = KeyRange::following_siblings(&ctx);
        assert!(r.contains(key(&[0, 2]).as_flat()));
        assert!(r.contains(key(&[0, 2, 5]).as_flat())); // nephew, cursor skips
        assert!(!r.contains(key(&[1]).as_flat())); // parent's sibling
        assert!(!r.contains(ctx.as_flat()));
        assert!(!r.contains(key(&[0, 0]).as_flat()));
    }

    #[test]
    fn following_siblings_of_top_level_unbounded() {
        // Children of the document node: range extends to end of index.
        let r = KeyRange::following_siblings(&key(&[0]));
        assert_eq!(r.hi, None);
        assert!(r.contains(key(&[3]).as_flat()));
    }

    #[test]
    fn preceding_siblings_bounded_by_self() {
        let ctx = key(&[0, 2]);
        let r = KeyRange::preceding_siblings(&ctx);
        assert!(r.contains(key(&[0, 0]).as_flat()));
        assert!(r.contains(key(&[0, 1]).as_flat()));
        assert!(r.contains(key(&[0, 1, 4]).as_flat())); // nephew, cursor skips
        assert!(!r.contains(key(&[0]).as_flat())); // parent
        assert!(!r.contains(ctx.as_flat()));
    }

    #[test]
    fn sibling_ranges_of_document_node_are_empty() {
        assert!(KeyRange::following_siblings(&FlexKey::root()).is_empty());
        assert!(KeyRange::preceding_siblings(&FlexKey::root()).is_empty());
    }

    #[test]
    fn intersect_narrows() {
        let a = KeyRange::subtree(&key(&[0]));
        let b = KeyRange::following(&key(&[0, 1]));
        let i = a.intersect(&b);
        assert!(i.contains(key(&[0, 2]).as_flat()));
        assert!(!i.contains(key(&[1]).as_flat())); // outside a
        assert!(!i.contains(key(&[0, 0]).as_flat())); // outside b
    }

    #[test]
    fn all_and_empty() {
        assert!(KeyRange::all().contains(key(&[9, 9]).as_flat()));
        assert!(KeyRange::all().contains(FlexKey::root().as_flat()));
        assert!(KeyRange::empty().is_empty());
        assert!(!KeyRange::all().is_empty());
    }

    #[test]
    fn split_even_degenerate_cases() {
        let r = KeyRange::subtree(&key(&[0]));
        assert_eq!(r.split_even(0), vec![r.clone()]);
        assert_eq!(r.split_even(1), vec![r.clone()]);
        // Unbounded above: left for the pager's index to partition.
        let unbounded = KeyRange::descendants(&FlexKey::root());
        assert_eq!(unbounded.split_even(4), vec![unbounded.clone()]);
        assert_eq!(KeyRange::empty().split_even(4), vec![KeyRange::empty()]);
    }

    #[test]
    fn split_even_partitions_cover_contiguously() {
        let r = KeyRange::subtree(&key(&[0]));
        for n in 2..10 {
            let parts = r.split_even(n);
            assert!(!parts.is_empty() && parts.len() <= n);
            assert_eq!(parts[0].lo, r.lo);
            assert_eq!(parts.last().unwrap().hi, r.hi);
            for w in parts.windows(2) {
                assert_eq!(w[0].hi.as_ref().unwrap(), &w[1].lo);
            }
            for p in &parts {
                assert!(!p.is_empty());
            }
        }
    }

    #[test]
    fn split_even_with_adjacent_bounds_degrades_gracefully() {
        // Bounds one byte apart: nowhere to cut, or very few cuts — the
        // result must still be a valid contiguous cover.
        let lo = key(&[0, 1]).as_flat().to_vec();
        let mut hi = lo.clone();
        *hi.last_mut().unwrap() = 1;
        let r = KeyRange {
            lo: lo.clone(),
            hi: Some(hi.clone()),
        };
        let parts = r.split_even(8);
        assert_eq!(parts[0].lo, lo);
        assert_eq!(parts.last().unwrap().hi, Some(hi));
        for w in parts.windows(2) {
            assert_eq!(w[0].hi.as_ref().unwrap(), &w[1].lo);
        }
    }

    proptest! {
        #[test]
        fn prop_split_even_disjoint_and_order_covering(
            a_path in proptest::collection::vec(0u64..50, 1..4),
            b_path in proptest::collection::vec(0u64..50, 1..4),
            probe_path in proptest::collection::vec(0u64..50, 1..5),
            n in 2usize..9,
        ) {
            let (a, b) = (key(&a_path), key(&b_path));
            let (lo, hi) = if a.as_flat() <= b.as_flat() { (a, b) } else { (b, a) };
            // `[lo, subtree_upper(hi))` is non-empty and bounded.
            let range = KeyRange {
                lo: lo.as_flat().to_vec(),
                hi: hi.subtree_upper(),
            };
            let parts = range.split_even(n);
            // Contiguous cover of the original range, no part empty.
            prop_assert!(!parts.is_empty() && parts.len() <= n);
            prop_assert_eq!(&parts[0].lo, &range.lo);
            prop_assert_eq!(&parts.last().unwrap().hi, &range.hi);
            for w in parts.windows(2) {
                prop_assert_eq!(w[0].hi.as_ref().unwrap(), &w[1].lo);
                prop_assert!(!w[0].is_empty());
            }
            // Any key falls in exactly one part iff it is in the range —
            // the parts are disjoint and cover document order.
            let probe = key(&probe_path);
            let hits = parts.iter().filter(|p| p.contains(probe.as_flat())).count();
            prop_assert_eq!(hits, usize::from(range.contains(probe.as_flat())));
        }

        #[test]
        fn prop_between_siblings_key_lands_in_one_partition(
            parent_path in proptest::collection::vec(0u64..20, 0..3),
            sib in 0u64..100,
            n in 2usize..9,
        ) {
            // A key synthesized *between* two siblings (variable-length
            // label arithmetic) must land in exactly one partition of a
            // range covering both siblings.
            let parent = key(&parent_path);
            let lo_sib = parent.child(&seq_label(sib));
            let hi_sib = parent.child(&seq_label(sib + 1));
            let mid = FlexKey::between_siblings(&lo_sib, &hi_sib).unwrap();
            let range = KeyRange {
                lo: lo_sib.as_flat().to_vec(),
                hi: hi_sib.subtree_upper(),
            };
            prop_assume!(range.contains(mid.as_flat()));
            let parts = range.split_even(n);
            let hits = parts.iter().filter(|p| p.contains(mid.as_flat())).count();
            prop_assert_eq!(hits, 1);
        }

        #[test]
        fn prop_partition_of_document_order(
            ctx_path in proptest::collection::vec(0u64..50, 1..4),
            other_path in proptest::collection::vec(0u64..50, 1..4),
        ) {
            // Every node is in exactly one of: before, subtree, following.
            let ctx = key(&ctx_path);
            let other = key(&other_path);
            let zones = [
                KeyRange::before(&ctx).contains(other.as_flat()),
                KeyRange::subtree(&ctx).contains(other.as_flat()),
                KeyRange::following(&ctx).contains(other.as_flat()),
            ];
            prop_assert_eq!(zones.iter().filter(|z| **z).count(), 1);
        }
    }
}
