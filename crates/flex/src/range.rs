//! Flat-key scan ranges for the XPath axes.
//!
//! MASS evaluates axes as bounded scans over the clustered (document-order)
//! index. [`KeyRange`] captures one such scan: a half-open interval over
//! flat key encodings. The constructors here turn a context key into the
//! tightest interval that *contains* the axis result; kind/level filtering
//! (e.g. excluding attribute nodes from `child`) happens in the cursor.

use crate::key::FlexKey;

/// A half-open interval `[lo, hi)` over flat key encodings.
/// `hi == None` means unbounded above (to the end of the document index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower bound (flat encoding).
    pub lo: Vec<u8>,
    /// Exclusive upper bound, or `None` for "end of index".
    pub hi: Option<Vec<u8>>,
}

impl KeyRange {
    /// The full index: every node of every document.
    pub fn all() -> Self {
        KeyRange {
            lo: Vec::new(),
            hi: None,
        }
    }

    /// An empty range.
    pub fn empty() -> Self {
        KeyRange {
            lo: vec![0],
            hi: Some(vec![0]),
        }
    }

    /// True if `flat` falls inside the range.
    pub fn contains(&self, flat: &[u8]) -> bool {
        flat >= self.lo.as_slice() && self.hi.as_ref().is_none_or(|h| flat < h.as_slice())
    }

    /// True if the range can match nothing.
    pub fn is_empty(&self) -> bool {
        self.hi
            .as_ref()
            .is_some_and(|h| h.as_slice() <= self.lo.as_slice())
    }

    /// Descendant-or-self of `ctx`: the whole subtree including `ctx`.
    pub fn subtree(ctx: &FlexKey) -> Self {
        KeyRange {
            lo: ctx.as_flat().to_vec(),
            hi: ctx.subtree_upper(),
        }
    }

    /// Strict descendants of `ctx` (subtree minus the context itself).
    ///
    /// The smallest flat key greater than `ctx` but still inside the
    /// subtree is `ctx`'s flat bytes followed by anything; since labels
    /// start at byte `0x01`, `flat ++ [0x01]` is a safe inclusive lower
    /// bound below every real child (whose label terminator follows).
    pub fn descendants(ctx: &FlexKey) -> Self {
        let mut lo = ctx.as_flat().to_vec();
        lo.push(1);
        KeyRange {
            lo,
            hi: ctx.subtree_upper(),
        }
    }

    /// Everything after `ctx`'s subtree in document order — the
    /// `following` axis (descendants excluded by construction; ancestors
    /// sort before `ctx` so they are excluded too).
    pub fn following(ctx: &FlexKey) -> Self {
        match ctx.subtree_upper() {
            Some(upper) => KeyRange {
                lo: upper,
                hi: None,
            },
            None => KeyRange::empty(), // document node: nothing follows
        }
    }

    /// Everything strictly before `ctx` in document order. This
    /// *over-approximates* the `preceding` axis: ancestors of `ctx` fall in
    /// the interval and must be filtered by the cursor.
    pub fn before(ctx: &FlexKey) -> Self {
        KeyRange {
            lo: Vec::new(),
            hi: Some(ctx.as_flat().to_vec()),
        }
    }

    /// Following siblings of `ctx`: from the end of `ctx`'s subtree to the
    /// end of the parent's subtree. Deeper nodes (nephews) fall inside and
    /// are skipped by the cursor's sibling-jump.
    pub fn following_siblings(ctx: &FlexKey) -> Self {
        let Some(parent) = ctx.parent() else {
            return KeyRange::empty();
        };
        match ctx.subtree_upper() {
            Some(upper) => KeyRange {
                lo: upper,
                hi: if parent.is_root() {
                    None
                } else {
                    parent.subtree_upper()
                },
            },
            None => KeyRange::empty(),
        }
    }

    /// Preceding siblings of `ctx` (over-approximate: contains their
    /// subtrees; the cursor jumps sibling-to-sibling).
    pub fn preceding_siblings(ctx: &FlexKey) -> Self {
        let Some(parent) = ctx.parent() else {
            return KeyRange::empty();
        };
        let mut lo = parent.as_flat().to_vec();
        lo.push(1);
        KeyRange {
            lo,
            hi: Some(ctx.as_flat().to_vec()),
        }
    }

    /// Intersects two ranges.
    pub fn intersect(&self, other: &KeyRange) -> KeyRange {
        let lo = if self.lo >= other.lo {
            self.lo.clone()
        } else {
            other.lo.clone()
        };
        let hi = match (&self.hi, &other.hi) {
            (None, None) => None,
            (Some(h), None) | (None, Some(h)) => Some(h.clone()),
            (Some(a), Some(b)) => Some(if a <= b { a.clone() } else { b.clone() }),
        };
        KeyRange { lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::seq_label;
    use proptest::prelude::*;

    fn key(path: &[u64]) -> FlexKey {
        let mut k = FlexKey::root();
        for &i in path {
            k = k.child(&seq_label(i));
        }
        k
    }

    #[test]
    fn subtree_contains_self_and_descendants() {
        let ctx = key(&[0, 1]);
        let r = KeyRange::subtree(&ctx);
        assert!(r.contains(ctx.as_flat()));
        assert!(r.contains(key(&[0, 1, 5]).as_flat()));
        assert!(!r.contains(key(&[0, 2]).as_flat()));
        assert!(!r.contains(key(&[0]).as_flat()));
    }

    #[test]
    fn descendants_excludes_self() {
        let ctx = key(&[0, 1]);
        let r = KeyRange::descendants(&ctx);
        assert!(!r.contains(ctx.as_flat()));
        assert!(r.contains(key(&[0, 1, 0]).as_flat()));
        assert!(r.contains(key(&[0, 1, 0, 0]).as_flat()));
        assert!(!r.contains(key(&[0, 2]).as_flat()));
    }

    #[test]
    fn descendants_of_root_is_everything_but_root() {
        let r = KeyRange::descendants(&FlexKey::root());
        assert!(!r.contains(FlexKey::root().as_flat()));
        assert!(r.contains(key(&[0]).as_flat()));
        assert!(r.contains(key(&[500, 3]).as_flat()));
        assert_eq!(r.hi, None);
    }

    #[test]
    fn following_skips_subtree_and_ancestors() {
        let ctx = key(&[1, 1]);
        let r = KeyRange::following(&ctx);
        assert!(!r.contains(ctx.as_flat()));
        assert!(!r.contains(key(&[1, 1, 9]).as_flat())); // descendant
        assert!(!r.contains(key(&[1]).as_flat())); // ancestor
        assert!(!r.contains(key(&[0, 5]).as_flat())); // preceding
        assert!(r.contains(key(&[1, 2]).as_flat())); // following sibling
        assert!(r.contains(key(&[2]).as_flat())); // parent's sibling
        assert!(r.contains(key(&[1, 2, 0]).as_flat()));
    }

    #[test]
    fn following_of_document_node_is_empty() {
        assert!(KeyRange::following(&FlexKey::root()).is_empty());
    }

    #[test]
    fn before_contains_ancestors_which_cursor_filters() {
        let ctx = key(&[1, 1]);
        let r = KeyRange::before(&ctx);
        assert!(r.contains(key(&[1]).as_flat())); // ancestor — over-approx
        assert!(r.contains(key(&[0, 9]).as_flat())); // true preceding
        assert!(!r.contains(ctx.as_flat()));
        assert!(!r.contains(key(&[1, 2]).as_flat()));
    }

    #[test]
    fn following_siblings_bounded_by_parent() {
        let ctx = key(&[0, 1]);
        let r = KeyRange::following_siblings(&ctx);
        assert!(r.contains(key(&[0, 2]).as_flat()));
        assert!(r.contains(key(&[0, 2, 5]).as_flat())); // nephew, cursor skips
        assert!(!r.contains(key(&[1]).as_flat())); // parent's sibling
        assert!(!r.contains(ctx.as_flat()));
        assert!(!r.contains(key(&[0, 0]).as_flat()));
    }

    #[test]
    fn following_siblings_of_top_level_unbounded() {
        // Children of the document node: range extends to end of index.
        let r = KeyRange::following_siblings(&key(&[0]));
        assert_eq!(r.hi, None);
        assert!(r.contains(key(&[3]).as_flat()));
    }

    #[test]
    fn preceding_siblings_bounded_by_self() {
        let ctx = key(&[0, 2]);
        let r = KeyRange::preceding_siblings(&ctx);
        assert!(r.contains(key(&[0, 0]).as_flat()));
        assert!(r.contains(key(&[0, 1]).as_flat()));
        assert!(r.contains(key(&[0, 1, 4]).as_flat())); // nephew, cursor skips
        assert!(!r.contains(key(&[0]).as_flat())); // parent
        assert!(!r.contains(ctx.as_flat()));
    }

    #[test]
    fn sibling_ranges_of_document_node_are_empty() {
        assert!(KeyRange::following_siblings(&FlexKey::root()).is_empty());
        assert!(KeyRange::preceding_siblings(&FlexKey::root()).is_empty());
    }

    #[test]
    fn intersect_narrows() {
        let a = KeyRange::subtree(&key(&[0]));
        let b = KeyRange::following(&key(&[0, 1]));
        let i = a.intersect(&b);
        assert!(i.contains(key(&[0, 2]).as_flat()));
        assert!(!i.contains(key(&[1]).as_flat())); // outside a
        assert!(!i.contains(key(&[0, 0]).as_flat())); // outside b
    }

    #[test]
    fn all_and_empty() {
        assert!(KeyRange::all().contains(key(&[9, 9]).as_flat()));
        assert!(KeyRange::all().contains(FlexKey::root().as_flat()));
        assert!(KeyRange::empty().is_empty());
        assert!(!KeyRange::all().is_empty());
    }

    proptest! {
        #[test]
        fn prop_partition_of_document_order(
            ctx_path in proptest::collection::vec(0u64..50, 1..4),
            other_path in proptest::collection::vec(0u64..50, 1..4),
        ) {
            // Every node is in exactly one of: before, subtree, following.
            let ctx = key(&ctx_path);
            let other = key(&other_path);
            let zones = [
                KeyRange::before(&ctx).contains(other.as_flat()),
                KeyRange::subtree(&ctx).contains(other.as_flat()),
                KeyRange::following(&ctx).contains(other.as_flat()),
            ];
            prop_assert_eq!(zones.iter().filter(|z| **z).count(), 1);
        }
    }
}
