//! The [`FlexKey`] type: a flattened, order-preserving structural key.

use crate::component::{label_between, LabelError};
use std::fmt;

#[derive(Clone)]
enum Repr {
    /// Keys up to 23 bytes live inline — XMark-depth keys never touch
    /// the heap on the execution hot path.
    Inline {
        len: u8,
        buf: [u8; 23],
    },
    Heap(Vec<u8>),
}

/// A FLEX key identifying one node of one document.
///
/// Internally the key is stored in its *flat encoding*: each level's label
/// followed by a `0x00` terminator, inline for keys up to 23 bytes and on
/// the heap beyond. The document node is the empty key. `Ord` on
/// `FlexKey` is document order (ancestors first).
#[derive(Clone)]
pub struct FlexKey {
    repr: Repr,
}

impl Default for FlexKey {
    fn default() -> Self {
        FlexKey::root()
    }
}

impl PartialEq for FlexKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_flat() == other.as_flat()
    }
}

impl Eq for FlexKey {}

impl PartialOrd for FlexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FlexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_flat().cmp(other.as_flat())
    }
}

impl std::hash::Hash for FlexKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_flat().hash(state);
    }
}

impl FlexKey {
    fn from_slice(flat: &[u8]) -> Self {
        if flat.len() <= 23 {
            let mut buf = [0u8; 23];
            buf[..flat.len()].copy_from_slice(flat);
            FlexKey {
                repr: Repr::Inline {
                    len: flat.len() as u8,
                    buf,
                },
            }
        } else {
            FlexKey {
                repr: Repr::Heap(flat.to_vec()),
            }
        }
    }

    /// The key of the document node: the empty key, ancestor of everything.
    pub fn root() -> Self {
        FlexKey {
            repr: Repr::Inline {
                len: 0,
                buf: [0u8; 23],
            },
        }
    }

    /// Rebuilds a key from its flat encoding.
    ///
    /// The bytes must be a well-formed flat key (labels over `1..=255`,
    /// each followed by `0x00`); this is checked in debug builds only.
    pub fn from_flat(flat: Vec<u8>) -> Self {
        debug_assert!(
            flat.is_empty() || flat.last() == Some(&0),
            "flat key must end in terminator"
        );
        if flat.len() <= 23 {
            Self::from_slice(&flat)
        } else {
            FlexKey {
                repr: Repr::Heap(flat),
            }
        }
    }

    /// True when `flat` is a well-formed flat key: a sequence of
    /// non-empty labels over `1..=255`, each terminated by `0x00`.
    pub fn is_valid_flat(flat: &[u8]) -> bool {
        let mut label_len = 0usize;
        for &b in flat {
            if b == 0 {
                if label_len == 0 {
                    return false; // empty label
                }
                label_len = 0;
            } else {
                label_len += 1;
            }
        }
        label_len == 0 // must end on a terminator (or be empty)
    }

    /// The flat encoding (label bytes with `0x00` terminators).
    #[inline]
    pub fn as_flat(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Consumes the key, returning the flat encoding.
    pub fn into_flat(self) -> Vec<u8> {
        match self.repr {
            Repr::Inline { len, buf } => buf[..len as usize].to_vec(),
            Repr::Heap(v) => v,
        }
    }

    /// Number of levels (labels). The document node has level 0, the root
    /// element level 1.
    pub fn level(&self) -> usize {
        bytecount_zero(self.as_flat())
    }

    /// True for the document node.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.as_flat().is_empty()
    }

    /// Returns the key extended by one child label.
    pub fn child(&self, label: &[u8]) -> FlexKey {
        debug_assert!(!label.is_empty() && !label.contains(&0));
        let me = self.as_flat();
        let total = me.len() + label.len() + 1;
        if total <= 23 {
            let mut buf = [0u8; 23];
            buf[..me.len()].copy_from_slice(me);
            buf[me.len()..me.len() + label.len()].copy_from_slice(label);
            // terminator byte is already 0
            return FlexKey {
                repr: Repr::Inline {
                    len: total as u8,
                    buf,
                },
            };
        }
        let mut flat = Vec::with_capacity(total);
        flat.extend_from_slice(me);
        flat.extend_from_slice(label);
        flat.push(0);
        FlexKey {
            repr: Repr::Heap(flat),
        }
    }

    /// Parent key, or `None` for the document node.
    pub fn parent(&self) -> Option<FlexKey> {
        let flat = self.as_flat();
        if flat.is_empty() {
            return None;
        }
        // Drop the final label: find the terminator before it.
        let cut = flat[..flat.len() - 1]
            .iter()
            .rposition(|&b| b == 0)
            .map(|p| p + 1)
            .unwrap_or(0);
        Some(Self::from_slice(&flat[..cut]))
    }

    /// The last label of the key (its position among siblings), or `None`
    /// for the document node.
    pub fn last_label(&self) -> Option<&[u8]> {
        let flat = self.as_flat();
        if flat.is_empty() {
            return None;
        }
        let cut = flat[..flat.len() - 1]
            .iter()
            .rposition(|&b| b == 0)
            .map(|p| p + 1)
            .unwrap_or(0);
        Some(&flat[cut..flat.len() - 1])
    }

    /// Ancestor key `n` levels up (`ancestor(0)` is the key itself).
    pub fn ancestor(&self, n: usize) -> Option<FlexKey> {
        let mut k = self.clone();
        for _ in 0..n {
            k = k.parent()?;
        }
        Some(k)
    }

    /// True if `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &FlexKey) -> bool {
        let (a, b) = (self.as_flat(), other.as_flat());
        b.len() > a.len() && b.starts_with(a)
    }

    /// True if `self` is `other` or an ancestor of it.
    pub fn is_ancestor_or_self_of(&self, other: &FlexKey) -> bool {
        other.as_flat().starts_with(self.as_flat())
    }

    /// True if `self` is the parent of `other`.
    pub fn is_parent_of(&self, other: &FlexKey) -> bool {
        self.is_ancestor_of(other) && other.level() == self.level() + 1
    }

    /// True if both keys share a parent (the document node counts).
    pub fn is_sibling_of(&self, other: &FlexKey) -> bool {
        !self.is_root() && !other.is_root() && self.parent() == other.parent()
    }

    /// Iterator over the labels of the key, outermost first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        LabelIter {
            rest: self.as_flat(),
        }
    }

    /// The exclusive upper bound of this key's subtree in flat encoding:
    /// the smallest flat key greater than every descendant-or-self key.
    ///
    /// All descendants of `k` have `k`'s flat bytes as a strict prefix, so
    /// bumping the final terminator from `0x00` to `0x01` yields the
    /// tightest exclusive bound. For the document node this is `None`
    /// (every key is a descendant).
    pub fn subtree_upper(&self) -> Option<Vec<u8>> {
        let flat = self.as_flat();
        if flat.is_empty() {
            return None;
        }
        let mut upper = flat.to_vec();
        *upper.last_mut().expect("non-empty") = 1;
        Some(upper)
    }

    /// Key for a new node inserted between two existing siblings.
    pub fn between_siblings(lo: &FlexKey, hi: &FlexKey) -> Result<FlexKey, LabelError> {
        let parent = lo.parent().ok_or(LabelError::NotBetween)?;
        if hi.parent().as_ref() != Some(&parent) {
            return Err(LabelError::NotBetween);
        }
        let label = label_between(
            lo.last_label().ok_or(LabelError::NotBetween)?,
            hi.last_label().ok_or(LabelError::NotBetween)?,
        )?;
        Ok(parent.child(&label))
    }
}

fn bytecount_zero(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| b == 0).count()
}

struct LabelIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.rest.is_empty() {
            return None;
        }
        let end = self
            .rest
            .iter()
            .position(|&b| b == 0)
            .expect("terminated label");
        let label = &self.rest[..end];
        self.rest = &self.rest[end + 1..];
        Some(label)
    }
}

/// Renders a key in the paper's dotted style: single in-range bytes map to
/// letters (`0x40` → `a`), everything else to hex.
fn fmt_key(key: &FlexKey, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if key.is_root() {
        return write!(f, "(/)");
    }
    let mut first = true;
    for label in key.labels() {
        if !first {
            write!(f, ".")?;
        }
        first = false;
        if label.len() == 1 && (0x40..0x5A).contains(&label[0]) {
            write!(f, "{}", (b'a' + (label[0] - 0x40)) as char)?;
        } else {
            for b in label {
                write!(f, "{b:02x}")?;
            }
        }
    }
    Ok(())
}

impl fmt::Debug for FlexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_key(self, f)
    }
}

impl fmt::Display for FlexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_key(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{attr_label, seq_label};
    use proptest::prelude::*;

    fn key(path: &[u64]) -> FlexKey {
        let mut k = FlexKey::root();
        for &i in path {
            k = k.child(&seq_label(i));
        }
        k
    }

    #[test]
    fn document_order_matches_preorder() {
        // site > person(0) > name, email ; person(1)
        let site = key(&[0]);
        let p0 = key(&[0, 0]);
        let name = key(&[0, 0, 0]);
        let email = key(&[0, 0, 1]);
        let p1 = key(&[0, 1]);
        let mut keys = vec![
            p1.clone(),
            email.clone(),
            site.clone(),
            name.clone(),
            p0.clone(),
        ];
        keys.sort();
        assert_eq!(keys, vec![site, p0, name, email, p1]);
    }

    #[test]
    fn root_is_before_everything() {
        assert!(FlexKey::root() < key(&[0]));
        assert!(FlexKey::root().is_ancestor_of(&key(&[5, 3])));
    }

    #[test]
    fn parent_round_trip() {
        let k = key(&[3, 1, 4, 1]);
        assert_eq!(k.parent().unwrap(), key(&[3, 1, 4]));
        assert_eq!(k.parent().unwrap().parent().unwrap(), key(&[3, 1]));
        assert_eq!(key(&[0]).parent().unwrap(), FlexKey::root());
        assert_eq!(FlexKey::root().parent(), None);
    }

    #[test]
    fn level_counts_labels() {
        assert_eq!(FlexKey::root().level(), 0);
        assert_eq!(key(&[0]).level(), 1);
        assert_eq!(key(&[0, 100, 2]).level(), 3);
    }

    #[test]
    fn ancestry_predicates() {
        let a = key(&[0, 1]);
        let d = key(&[0, 1, 2, 3]);
        assert!(a.is_ancestor_of(&d));
        assert!(!d.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(a.is_ancestor_or_self_of(&a));
        assert!(a.is_parent_of(&key(&[0, 1, 7])));
        assert!(!a.is_parent_of(&d));
    }

    #[test]
    fn sibling_predicate() {
        assert!(key(&[0, 1]).is_sibling_of(&key(&[0, 9])));
        assert!(!key(&[0, 1]).is_sibling_of(&key(&[1, 1])));
        assert!(!FlexKey::root().is_sibling_of(&key(&[0])));
    }

    #[test]
    fn subtree_upper_bounds_subtree_tightly() {
        let k = key(&[0, 1]);
        let upper = k.subtree_upper().unwrap();
        // Every descendant sorts below the bound...
        assert!(key(&[0, 1, 0]).as_flat() < upper.as_slice());
        assert!(key(&[0, 1, 999]).as_flat() < upper.as_slice());
        assert!(key(&[0, 1, 5, 5, 5]).as_flat() < upper.as_slice());
        // ...and the following node sorts at/above it.
        assert!(key(&[0, 2]).as_flat() >= upper.as_slice());
        // The bound is tight: no flat key fits between the last descendant
        // pattern and it.
        assert!(k.as_flat() < upper.as_slice());
        assert_eq!(FlexKey::root().subtree_upper(), None);
    }

    #[test]
    fn attribute_keys_sort_before_children() {
        let elem = key(&[0, 4]);
        let attr = elem.child(&attr_label(0));
        let child = elem.child(&seq_label(0));
        assert!(elem < attr);
        assert!(attr < child);
        assert!(attr.as_flat() < elem.subtree_upper().unwrap().as_slice());
    }

    #[test]
    fn labels_iterator_round_trips() {
        let k = key(&[3, 64, 70000]);
        let labels: Vec<Vec<u8>> = k.labels().map(|l| l.to_vec()).collect();
        assert_eq!(labels.len(), 3);
        let mut rebuilt = FlexKey::root();
        for l in &labels {
            rebuilt = rebuilt.child(l);
        }
        assert_eq!(rebuilt, k);
    }

    #[test]
    fn between_siblings_inserts_in_order() {
        let lo = key(&[0, 3]);
        let hi = key(&[0, 4]);
        let mid = FlexKey::between_siblings(&lo, &hi).unwrap();
        assert!(lo < mid && mid < hi);
        assert_eq!(mid.parent(), lo.parent());
        // And the inserted node's subtree stays between them too.
        let mid_child = mid.child(&seq_label(0));
        assert!(lo < mid_child && mid_child < hi);
    }

    #[test]
    fn between_siblings_rejects_non_siblings() {
        assert!(FlexKey::between_siblings(&key(&[0, 1]), &key(&[1, 0])).is_err());
        assert!(FlexKey::between_siblings(&FlexKey::root(), &key(&[0])).is_err());
    }

    #[test]
    fn display_uses_dotted_letters() {
        let k = key(&[0, 3, 24]);
        assert_eq!(format!("{k}"), "a.d.y");
        assert_eq!(format!("{}", FlexKey::root()), "(/)");
    }

    #[test]
    fn from_flat_round_trip() {
        let k = key(&[1, 2, 3]);
        let flat = k.as_flat().to_vec();
        assert_eq!(FlexKey::from_flat(flat), k);
    }

    #[test]
    fn last_label_matches_allocation() {
        let k = key(&[7, 9]);
        assert_eq!(k.last_label().unwrap(), seq_label(9).as_slice());
        assert_eq!(FlexKey::root().last_label(), None);
    }

    proptest! {
        #[test]
        fn prop_order_isomorphic_to_path_order(
            a in proptest::collection::vec(0u64..500, 1..6),
            b in proptest::collection::vec(0u64..500, 1..6),
        ) {
            // Pre-order on paths: lexicographic with prefix-first.
            let ka = key(&a);
            let kb = key(&b);
            let path_cmp = a.cmp(&b);
            prop_assert_eq!(ka.cmp(&kb), path_cmp);
        }

        #[test]
        fn prop_parent_of_child_is_identity(
            path in proptest::collection::vec(0u64..100_000, 0..5),
            label in 0u64..100_000,
        ) {
            let k = key(&path);
            let c = k.child(&seq_label(label));
            prop_assert_eq!(c.parent().unwrap(), k.clone());
            prop_assert!(k.is_parent_of(&c));
            prop_assert_eq!(c.level(), k.level() + 1);
        }

        #[test]
        fn prop_subtree_upper_separates(
            path in proptest::collection::vec(0u64..1000, 1..5),
            tail in proptest::collection::vec(0u64..1000, 0..4),
            sib in 0u64..1000,
        ) {
            let k = key(&path);
            let upper = k.subtree_upper().unwrap();
            // A descendant built from any tail is below the bound.
            let mut d = k.clone();
            for &t in &tail { d = d.child(&seq_label(t)); }
            prop_assert!(d.as_flat() < upper.as_slice() || tail.is_empty());
            // A following sibling of any ancestor level is at/above it.
            if let Some(p) = k.parent() {
                let last = path[path.len() - 1];
                let next = p.child(&seq_label(last + 1 + sib));
                prop_assert!(next.as_flat() >= upper.as_slice());
            }
        }
    }
}
